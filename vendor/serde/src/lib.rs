//! Minimal, dependency-free stand-in for `serde`.
//!
//! The workspace annotates id and model types with
//! `#[derive(Serialize, Deserialize)]` for forward compatibility, but all
//! actual persistence goes through the hand-rolled binary codecs
//! (`octopus-graph::codec`, `octopus-data::store`). This crate re-exports
//! no-op derives so those annotations compile without crates.io access; the
//! marker traits exist so generic bounds keep working if introduced later.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the stand-in).
pub trait SerializeMarker {}

/// Marker counterpart of `serde::Deserialize` (no methods in the stand-in).
pub trait DeserializeMarker {}
