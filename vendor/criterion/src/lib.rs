//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Call-compatible with the subset the bench suite uses (`criterion_group!`
//! / `criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `measurement_time`, `BenchmarkId`,
//! `black_box`, `Bencher::iter`). Instead of criterion's statistical
//! machinery it runs a warmup pass plus `sample_size` timed samples and
//! prints min/median/mean per benchmark — enough to compare configurations
//! offline (e.g. the 1-thread vs N-thread offline-build pipeline).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`: one untimed warmup call, then `sample_size` timed
    /// samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(full_id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {full_id:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "bench {full_id:<50} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({} samples)",
        b.samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for call compatibility; the stand-in always runs exactly
    /// `sample_size` samples regardless of target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for call compatibility; the stand-in always does exactly
    /// one untimed warmup call per benchmark.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
    }

    /// End the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Default number of timed samples per benchmark.
    const DEFAULT_SAMPLE_SIZE: usize = 10;

    /// Set the default sample size for benchmarks registered directly on
    /// the harness.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            Self::DEFAULT_SAMPLE_SIZE
        } else {
            self.sample_size
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a single closure.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(id, self.effective_sample_size(), f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        let mut ran = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
