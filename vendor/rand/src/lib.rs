//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the API subset the workspace uses: [`Rng`]
//! (`random`, `random_range`, `random_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::SmallRng`] (xoshiro256++, the same family upstream `SmallRng`
//! uses on 64-bit targets). It is *not* a drop-in replacement for the full
//! crate: distributions, thread-local RNGs, and fill APIs are omitted, and
//! streams differ from upstream — only in-repo determinism is guaranteed.

/// Types that can be sampled uniformly from an RNG's raw 64-bit output.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // top 53 bits → uniform double in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges an RNG can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Unbiased uniform draw from `[0, span)` via Lemire-style rejection.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // rejection zone keeps the draw exactly uniform
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T` (`f64`/`f32` in `[0, 1)`, full-width
    /// integers, fair `bool`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructing generators from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast xoshiro256++ generator (the algorithm upstream
    /// `SmallRng` uses on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                *slot = super::splitmix64(&mut sm);
            }
            // avoid the all-zero state (unreachable via splitmix, but cheap)
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=8);
            assert!((5..=8).contains(&w));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        // all values of a small range show up
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
