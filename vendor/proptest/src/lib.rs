//! Minimal, dependency-free stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` headers);
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, integer and
//!   float range strategies, tuple strategies, [`strategy::Just`],
//!   [`collection::vec`], `num::<int>::ANY`, and a small `[class]{m,n}`
//!   regex-string strategy;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream: generation is derandomized per test (seeded
//! from the test's module path, so failures reproduce exactly), there is
//! **no shrinking** (the failing inputs are printed as generated), and no
//! persistence files. Case counts honor `ProptestConfig::with_cases`.

pub mod test_runner {
    //! Test execution: configuration, deterministic RNG, failure reporting.

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Per-block configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // smaller than upstream's 256: offline CI favors fast suites
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generation RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
        base: u64,
    }

    impl TestRng {
        /// Root RNG for a named test; the name fixes the stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
                base: h,
            }
        }

        /// Independent RNG for case `case` of this test.
        pub fn derive(&self, case: u32) -> TestRng {
            let seed = self
                .base
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .rotate_left(17);
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
                base: seed,
            }
        }
    }

    impl Rng for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Prints the generated inputs if the test body panics (drop-flag
    /// reporter; proptest would shrink here, the stand-in just reports).
    pub struct FailureReporter {
        details: Option<String>,
    }

    impl FailureReporter {
        /// Arm a reporter for one case.
        pub fn new(test: &str, case: u32, inputs: String) -> Self {
            FailureReporter {
                details: Some(format!(
                    "proptest case failed: {test} (case {case})\n  inputs: {inputs}"
                )),
            }
        }
    }

    impl Drop for FailureReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Some(d) = self.details.take() {
                    eprintln!("{d}");
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from the strategy it selects
        /// (dependent strategies).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        O: Debug,
        F: Fn(B::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.random::<f64>()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            // closed upper end: scale a [0,1) draw by the next-up trick is
            // overkill for tests; include the end via a tiny acceptance draw
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * (rng.next_u64() as f64 / u64::MAX as f64)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Tiny regex-subset string strategy: literals, `[a-z0-9_]`-style
    /// classes (ranges and single chars), and `{m}` / `{m,n}` quantifiers
    /// on the preceding atom.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0usize;
            while i < chars.len() {
                // parse one atom: a char class or a literal
                let alphabet: Vec<char> = if chars[i] == '[' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed class in pattern {self:?}"));
                    let mut alpha = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "bad range in pattern {self:?}");
                            alpha.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            alpha.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    alpha
                } else {
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                assert!(!alphabet.is_empty(), "empty class in pattern {self:?}");
                // parse an optional quantifier
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed quantifier in pattern {self:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("quantifier lower bound"),
                            n.trim().parse::<usize>().expect("quantifier upper bound"),
                        ),
                        None => {
                            let m = body.trim().parse::<usize>().expect("quantifier count");
                            (m, m)
                        }
                    }
                } else {
                    (1, 1)
                };
                let count = if lo == hi {
                    lo
                } else {
                    rng.random_range(lo..=hi)
                };
                for _ in 0..count {
                    out.push(alphabet[rng.random_range(0..alphabet.len())]);
                }
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive-lower, exclusive-upper element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Full-width numeric strategies (`proptest::num::u64::ANY`-style).

    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;
                use rand::Rng;

                /// Strategy yielding uniform full-width values.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Any value of the type, uniformly.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.random::<$t>()
                    }
                }
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property (no shrinking in the stand-in, so this is a
/// plain `assert!` whose failure triggers the input report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __root =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = __root.derive(__case);
                    let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                    let __reporter = $crate::test_runner::FailureReporter::new(
                        stringify!($name),
                        __case,
                        format!("{:?}", __vals),
                    );
                    let ( $($arg,)+ ) = __vals;
                    { $body }
                    drop(__reporter);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u32..100, n))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z]{1,2}") {
            prop_assert!(!s.is_empty() && s.len() <= 2);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn assume_skips_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test() {
        let root = crate::test_runner::TestRng::for_test("module::demo");
        let strat = crate::collection::vec(0u64..1000, 2..6);
        let a: Vec<Vec<u64>> = (0..5)
            .map(|c| strat.generate(&mut root.derive(c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..5)
            .map(|c| strat.generate(&mut root.derive(c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn exact_size_vec() {
        let root = crate::test_runner::TestRng::for_test("module::exact");
        let strat = crate::collection::vec(crate::num::u32::ANY, 4usize);
        assert_eq!(strat.generate(&mut root.derive(0)).len(), 4);
    }
}
