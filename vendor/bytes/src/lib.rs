//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace codecs use: [`Buf`] with
//! little-endian `get_*` readers, [`BufMut`] with `put_*` writers, an
//! immutable [`Bytes`] buffer, and a growable [`BytesMut`] builder. Unlike
//! upstream there is no reference-counted zero-copy splitting — `Bytes`
//! owns a plain `Vec<u8>` — but the read/write API is call-compatible.

use std::ops::Deref;

/// Sequential reader over a byte buffer (object-safe subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out of the buffer.
    ///
    /// # Panics
    /// Panics if the buffer holds fewer than `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Sequential writer into a byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Append `cnt` copies of `val` (alignment padding, zero fills).
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        // 16-byte chunks keep the common small-padding case allocation-free
        let chunk = [val; 16];
        let mut left = cnt;
        while left > 0 {
            let n = left.min(chunk.len());
            self.put_slice(&chunk[..n]);
            left -= n;
        }
    }
}

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
    /// Read cursor for the `Buf` impl.
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap an owned vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes {
            data: std::sync::Arc::new(data),
            pos: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unread bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    /// Preallocate room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"end");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"end");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let raw = [1u8, 2, 3, 4];
        let mut s: &[u8] = &raw;
        assert_eq!(s.remaining(), 4);
        assert_eq!(s.get_u8(), 1);
        s.advance(1);
        assert_eq!(s.chunk(), &[3, 4]);
    }

    #[test]
    fn dyn_buf_is_usable() {
        let raw = [5u8, 0, 0, 0];
        let mut s: &[u8] = &raw;
        let b: &mut dyn Buf = &mut s;
        assert_eq!(b.get_u32_le(), 5);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut s: &[u8] = &[1u8];
        let _ = s.get_u32_le();
    }

    #[test]
    fn bytes_indexing_and_to_vec() {
        let b = Bytes::from_vec(vec![1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
    }
}
