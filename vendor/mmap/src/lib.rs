//! Minimal file-backed **read-only** memory mapping.
//!
//! The OCTOPUS artifact cache opens its OCTA v4 files through this crate so
//! engine startup touches only the pages a query actually reads, and
//! serving replicas opening the same artifact share one page-cache copy.
//! The build environment has no crates.io access, so this is a vendored
//! stand-in for the usual `memmap2`-style crate, reduced to exactly what
//! the cache needs:
//!
//! * [`Mmap::map_file`] — map a whole file read-only (`PROT_READ`,
//!   `MAP_PRIVATE`);
//! * a **`Read` fallback** — on non-Unix platforms, for empty files (a
//!   zero-length `mmap` is an error), or when forced via
//!   [`FORCE_FALLBACK_ENV`], the file is read into an owned buffer behind
//!   the same API, so every caller and test can exercise both paths;
//! * `Deref<Target = [u8]>` — callers see a plain byte slice either way.
//!
//! The mapping is private and read-only: the kernel may drop clean pages
//! under memory pressure and re-fault them from the file, which is exactly
//! the shared-page-cache behavior the serving layer wants. A file mutated
//! *in place* while mapped can change bytes under the reader — the artifact
//! cache never does that (files are written to a temp name and atomically
//! renamed into place; an unlinked mapping stays valid on Unix).

#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

/// Setting this environment variable (to any value) forces
/// [`Mmap::map_file`] onto the owned `Read` fallback — used by tests to
/// cover the fallback path on platforms where real mapping succeeds.
pub const FORCE_FALLBACK_ENV: &str = "OCTOPUS_MMAP_FORCE_FALLBACK";

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

enum Inner {
    /// A live kernel mapping; unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// The `Read` fallback: the whole file in an owned buffer.
    Owned(Vec<u8>),
}

/// A read-only view of a file's bytes — memory-mapped when possible, an
/// owned buffer otherwise. Dereferences to `&[u8]`.
pub struct Mmap {
    inner: Inner,
}

// The mapping is immutable for its whole lifetime (PROT_READ, private), so
// sharing the raw pointer across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `path` read-only. Falls back to reading the file into memory on
    /// non-Unix platforms, for empty files, when the kernel refuses the
    /// mapping, or when [`FORCE_FALLBACK_ENV`] is set.
    pub fn map_file(path: &Path) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len > 0 && std::env::var_os(FORCE_FALLBACK_ENV).is_none() {
            if let Some(map) = Self::try_map(&file, len) {
                return Ok(map);
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Owned(buf),
        })
    }

    #[cfg(unix)]
    fn try_map(file: &File, len: usize) -> Option<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return None;
        }
        Some(Mmap {
            inner: Inner::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    #[cfg(not(unix))]
    fn try_map(_file: &File, _len: usize) -> Option<Mmap> {
        None
    }

    /// Whether this view is a live kernel mapping (`false` on the `Read`
    /// fallback). Telemetry only — the byte contents are identical.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Owned(_) => false,
        }
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned(v) => v,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // a failed munmap leaks the mapping; nothing actionable here
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("mmap-test-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("basic", b"OCTA mapped bytes");
        let map = Mmap::map_file(&path).unwrap();
        assert_eq!(&map[..], b"OCTA mapped bytes");
        assert_eq!(map.as_ref(), b"OCTA mapped bytes");
        #[cfg(unix)]
        assert!(map.is_mapped(), "unix should take the real mmap path");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_uses_fallback() {
        let path = temp_file("empty", b"");
        let map = Mmap::map_file(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "zero-length mappings are not attempted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("mmap-test-definitely-missing");
        assert!(Mmap::map_file(&path).is_err());
    }

    #[test]
    fn mapping_survives_unlink() {
        // the artifact pruner may delete a file other processes still map;
        // on unix the pages stay valid until unmapped
        let path = temp_file("unlink", b"still here after unlink");
        let map = Mmap::map_file(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&map[..], b"still here after unlink");
    }
}
