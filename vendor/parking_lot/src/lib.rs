//! Minimal, dependency-free stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the `parking_lot` calling convention
//! the workspace relies on: `lock()` / `read()` / `write()` return guards
//! directly (no poisoning `Result`). A poisoned std lock is recovered by
//! taking the inner guard, matching `parking_lot`'s poison-free semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
