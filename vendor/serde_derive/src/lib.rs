//! No-op `Serialize` / `Deserialize` derives for the offline `serde`
//! stand-in. The workspace only *annotates* types for future wire formats —
//! nothing serializes through serde yet — so the derives expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
