//! Minimal, dependency-free stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the subset of rayon the workspace uses. Since the
//! work-stealing rework, parallel operations run on a **persistent,
//! lazily started worker pool** with chunk-claiming load balancing (see
//! `pool`'s module docs) instead of per-call `std::thread::scope`
//! fan-out with static chunks:
//!
//! * [`join`] — run two closures, potentially on two threads;
//! * [`prelude`] — `par_iter()` on slices and `into_par_iter()` on integer
//!   ranges, with order-preserving `map`/`collect`/`sum`/`for_each`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — scoped thread-count
//!   override, so `RAYON_NUM_THREADS=1` vs default comparisons work;
//! * [`current_num_threads`].
//!
//! Thread-count resolution order: innermost `install` override, then the
//! `RAYON_NUM_THREADS` environment variable (read **once** per process and
//! cached), then `std::thread::available_parallelism()`. Every combinator
//! assembles results in input order — each work unit writes its own output
//! slot, whatever thread claims it — so results never depend on the thread
//! count or on scheduling: the property the offline-build determinism
//! tests pin down. A panic in any work unit is caught, the operation runs
//! to completion, and the first panic payload is re-raised on the calling
//! thread; the pool survives.

mod pool;

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Scoped thread-count override installed by [`ThreadPool::install`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `RAYON_NUM_THREADS`, parsed once per process.
///
/// `current_num_threads()` sits on every parallel operation's hot path
/// (`join` and every drive consult it), so the environment is read and
/// parsed a single time; an `install` override still takes precedence over
/// the cached value at every call.
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()?
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
    })
}

/// The number of threads parallel operations currently fan out to.
pub fn current_num_threads() -> usize {
    OVERRIDE
        .with(Cell::get)
        .or_else(env_threads)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Run `f` with the thread-count override set to `n` (propagating into
/// pool workers that help with parallel operations posted by `f`).
fn with_override<R>(n: Option<usize>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(n));
    let _restore = Restore(prev);
    f()
}

/// Run `a` and `b`, on two threads when the effective thread count allows,
/// and return both results.
///
/// `b` is posted to the worker pool while `a` runs on the calling thread;
/// if no worker is free by the time `a` finishes, the caller claims `b`
/// and runs it inline — `join` never deadlocks waiting for a busy pool.
/// If either closure panics, both still run to completion before the
/// panic resumes on the caller (`a`'s payload wins when both panic).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    use std::cell::UnsafeCell;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let inherited = OVERRIDE.with(Cell::get);

    /// Single-unit job context: the closure to run and its result slot.
    /// Exactly one participant claims the unit, so the cells are never
    /// accessed concurrently.
    struct JoinCtx<B, RB> {
        f: UnsafeCell<Option<B>>,
        out: UnsafeCell<Option<RB>>,
    }
    unsafe fn run_b<B: FnOnce() -> RB, RB>(ctx: *const (), _lo: usize, _hi: usize) {
        let ctx = unsafe { &*(ctx as *const JoinCtx<B, RB>) };
        let f = unsafe { (*ctx.f.get()).take() }.expect("join unit claimed once");
        let rb = f();
        unsafe { *ctx.out.get() = Some(rb) };
    }

    let ctx = JoinCtx::<B, RB> {
        f: UnsafeCell::new(Some(b)),
        out: UnsafeCell::new(None),
    };
    // Safety: `ctx` lives on this stack frame until `finish` returns below
    // (a panicking `a` is caught first), and `run_b` is only invoked for
    // the single unit by its single claimant.
    let job = unsafe {
        pool::JobCore::new(
            &ctx as *const JoinCtx<B, RB> as *const (),
            run_b::<B, RB>,
            1,
            2,
            inherited,
        )
    };
    pool::post(&job);
    // `a` must not unwind past the posted job — a worker may hold pointers
    // into this frame — so catch, drain the job, then resume.
    let ra = catch_unwind(AssertUnwindSafe(a));
    let b_panic = pool::finish(&job);
    let ra = match ra {
        Ok(ra) => ra,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    if let Some(payload) = b_panic {
        std::panic::resume_unwind(payload);
    }
    let rb = unsafe { (*ctx.out.get()).take() }.expect("join unit executed");
    (ra, rb)
}

/// Builder for a scoped thread-count "pool".
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Pin the thread count (0 means "use the default resolution").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Finish building. Never fails in the stand-in (the signature matches
    /// rayon for call-site compatibility).
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override posing as a thread pool.
///
/// Unlike real rayon there is no per-pool thread set: every `ThreadPool`
/// shares the one global worker pool, and `install` only pins how many
/// threads (caller + helpers) each parallel operation inside it may use.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count in effect.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.num_threads {
            Some(n) => with_override(Some(n), f),
            None => f(),
        }
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

pub mod iter {
    //! Order-preserving indexed parallel iterators.

    use super::{pool, OVERRIDE};
    use std::cell::Cell;

    /// An indexed parallel computation: `len` independent work units whose
    /// results are always assembled in index order, independent of the
    /// thread count.
    pub trait ParallelIterator: Sized + Sync {
        /// Per-unit result type.
        type Item: Send;

        /// Number of work units.
        fn pi_len(&self) -> usize;

        /// Evaluate work unit `i`.
        fn pi_get(&self, i: usize) -> Self::Item;

        /// Transform every unit's result.
        fn map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: Send,
            F: Fn(Self::Item) -> O + Sync,
        {
            Map { base: self, f }
        }

        /// Execute all units and collect results in index order.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_ordered_vec(drive(&self))
        }

        /// Execute all units and sum the results.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            drive(&self).into_iter().sum()
        }

        /// Execute all units, then apply `f` to each result in index order.
        fn for_each<F: Fn(Self::Item)>(self, f: F) {
            drive(&self).into_iter().for_each(f);
        }
    }

    /// Execute the work units of `it` on the shared worker pool, returning
    /// results in index order.
    ///
    /// Units are claimed dynamically (adaptive chunks off a shared atomic
    /// cursor — see `pool`) by the calling thread plus up to
    /// `current_num_threads() - 1` pool workers, so skewed per-unit costs
    /// load-balance instead of idling statically assigned threads. Each
    /// unit writes its own output slot, so the assembled result is
    /// bit-identical to the sequential evaluation regardless of which
    /// thread ran what. A unit panic is re-raised here after all claimed
    /// units settle.
    fn drive<I: ParallelIterator>(it: &I) -> Vec<I::Item> {
        let n = it.pi_len();
        let threads = super::current_num_threads().min(n).max(1);
        if threads <= 1 {
            return (0..n).map(|i| it.pi_get(i)).collect();
        }
        let inherited = OVERRIDE.with(Cell::get);

        struct DriveCtx<'a, I: ParallelIterator> {
            it: &'a I,
            out: *mut Option<I::Item>,
        }
        unsafe fn run_units<I: ParallelIterator>(ctx: *const (), lo: usize, hi: usize) {
            let ctx = unsafe { &*(ctx as *const DriveCtx<'_, I>) };
            for i in lo..hi {
                let v = ctx.it.pi_get(i);
                unsafe { *ctx.out.add(i) = Some(v) };
            }
        }

        let mut out: Vec<Option<I::Item>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let ctx = DriveCtx {
            it,
            out: out.as_mut_ptr(),
        };
        // Safety: `ctx`, `out`, and `it` outlive `finish`; participants
        // write disjoint `out` slots for the unit indices they claimed,
        // and the pool orders those writes before `finish` returns.
        let job = unsafe {
            pool::JobCore::new(
                &ctx as *const DriveCtx<'_, I> as *const (),
                run_units::<I>,
                n,
                threads,
                inherited,
            )
        };
        pool::post(&job);
        if let Some(payload) = pool::finish(&job) {
            std::panic::resume_unwind(payload);
        }
        out.into_iter()
            .map(|slot| slot.expect("every unit executed"))
            .collect()
    }

    /// Collection types buildable from ordered parallel results.
    pub trait FromParallelIterator<T> {
        /// Assemble from results already in index order.
        fn from_ordered_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(v: Vec<T>) -> Self {
            v
        }
    }

    impl<A, B> FromParallelIterator<(A, B)> for (Vec<A>, Vec<B>) {
        fn from_ordered_vec(v: Vec<(A, B)>) -> Self {
            v.into_iter().unzip()
        }
    }

    /// `map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        O: Send,
        F: Fn(B::Item) -> O + Sync,
    {
        type Item = O;

        fn pi_len(&self) -> usize {
            self.base.pi_len()
        }

        fn pi_get(&self, i: usize) -> O {
            (self.f)(self.base.pi_get(i))
        }
    }

    /// Parallel view of a slice.
    pub struct ParSlice<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
        type Item = &'a T;

        fn pi_len(&self) -> usize {
            self.slice.len()
        }

        fn pi_get(&self, i: usize) -> &'a T {
            &self.slice[i]
        }
    }

    /// Parallel view of an integer range.
    pub struct ParRange<T> {
        start: T,
        len: usize,
    }

    /// Borrowing entry point: `items.par_iter()`.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowing parallel iterator type.
        type Iter: ParallelIterator;

        /// Iterate the collection's elements by reference, in parallel.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = ParSlice<'a, T>;

        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    /// Consuming entry point: `range.into_par_iter()`.
    pub trait IntoParallelIterator {
        /// The produced parallel iterator type.
        type Iter: ParallelIterator;

        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    macro_rules! impl_range_par_iter {
        ($($t:ty),*) => {$(
            impl ParallelIterator for ParRange<$t> {
                type Item = $t;

                fn pi_len(&self) -> usize {
                    self.len
                }

                fn pi_get(&self, i: usize) -> $t {
                    // wrapping: for a range ending at <$t>::MAX the plain sum
                    // `start + len` overflows even though every unit value
                    // `start + i` (i < len) is representable
                    self.start.wrapping_add(i as $t)
                }
            }

            impl IntoParallelIterator for core::ops::Range<$t> {
                type Iter = ParRange<$t>;

                fn into_par_iter(self) -> ParRange<$t> {
                    let len = if self.end > self.start {
                        (self.end - self.start) as usize
                    } else {
                        0
                    };
                    ParRange { start: self.start, len }
                }
            }
        )*};
    }
    impl_range_par_iter!(u32, u64, usize);
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_par_iter_matches_sequential() {
        let squares: Vec<u64> = (0u64..257).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[16], 256);
        let total: u64 = (1u64..=100).sum();
        let par_total: u64 = (1u64..101).into_par_iter().map(|x| x).sum();
        assert_eq!(par_total, total);
    }

    #[test]
    fn range_par_iter_is_correct_at_the_type_boundary() {
        // ranges butting against MAX must not overflow `start + i` (debug
        // builds would abort); every unit value itself is representable
        let vals: Vec<u32> = (u32::MAX - 1..u32::MAX).into_par_iter().collect();
        assert_eq!(vals, vec![u32::MAX - 1]);
        let vals: Vec<u64> = (u64::MAX - 3..u64::MAX).into_par_iter().collect();
        assert_eq!(vals, vec![u64::MAX - 3, u64::MAX - 2, u64::MAX - 1]);
        let hi: Vec<usize> = (usize::MAX - 2..usize::MAX)
            .into_par_iter()
            .map(|x| usize::MAX - x)
            .collect();
        assert_eq!(hi, vec![2, 1]);
        // empty and inverted ranges stay empty
        assert_eq!(
            (u32::MAX..u32::MAX).into_par_iter().collect::<Vec<_>>(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            // nested parallel work still runs (sequentially) and stays ordered
            let v: Vec<usize> = (0usize..64).into_par_iter().map(|x| x + 1).collect();
            assert_eq!(v[0], 1);
            assert_eq!(v[63], 64);
            let (a, b) = join(current_num_threads, current_num_threads);
            assert_eq!((a, b), (1, 1));
        });
    }

    #[test]
    fn override_propagates_into_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            let counts: Vec<usize> = (0usize..32)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect();
            assert!(counts.iter().all(|&c| c == 3), "{counts:?}");
        });
    }

    #[test]
    fn same_output_for_any_thread_count() {
        let seq = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let par = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let f = || -> Vec<u64> {
            (0u64..500)
                .into_par_iter()
                .map(|x| x.wrapping_mul(x))
                .collect()
        };
        assert_eq!(seq.install(f), par.install(f));
    }

    #[test]
    fn env_is_read_once_and_install_still_wins() {
        // prime the cache with whatever the process environment says now
        let cached = current_num_threads();
        let previous = std::env::var("RAYON_NUM_THREADS").ok();
        // a later env change must NOT leak into the cached resolution...
        std::env::set_var("RAYON_NUM_THREADS", "1234");
        assert_eq!(
            current_num_threads(),
            cached,
            "RAYON_NUM_THREADS must be read once per process"
        );
        // ...while an install override still beats the cached env value
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 5));
        assert_eq!(current_num_threads(), cached, "override must not stick");
        match previous {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }
}
