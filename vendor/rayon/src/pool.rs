//! The persistent work-claiming executor behind the stand-in's parallel
//! operations.
//!
//! ## Design
//!
//! One lazily started, process-lifetime pool of worker threads serves every
//! [`crate::join`] and every `ParallelIterator` drive. A parallel operation
//! is posted as a [`JobCore`]: `len` independent work units behind a shared
//! atomic claim cursor. Whoever participates — the posting thread always
//! does, plus up to `max_participants - 1` pool workers — repeatedly claims
//! an adaptively sized chunk of unit indices and executes it, so a unit
//! that turns out to be 100× the others simply occupies one participant
//! while the rest drain the remaining units. This is the "chunk-claiming
//! atomic-counter queue" flavour of work stealing: there is no per-worker
//! deque to steal from because units are never pre-assigned in the first
//! place.
//!
//! ## Why there is no scheduling deadlock
//!
//! The posting thread participates until the claim cursor is exhausted and
//! only then blocks, so every job can be fully executed by its own poster
//! even when zero workers are free. Nested parallelism (a unit that posts
//! its own job) therefore always makes progress: waits form a DAG along the
//! nesting structure and every leaf job drains through its poster.
//!
//! ## Memory safety
//!
//! A job's context is a raw pointer into the posting thread's stack. The
//! poster never returns before `done == len` (observed under the `finished`
//! mutex), and a participant only dereferences the context for unit indices
//! it claimed below `len`, so the pointee is always alive when touched.
//! Workers that race a completed job see an exhausted cursor and touch
//! nothing but the heap-allocated, reference-counted [`JobCore`] itself.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool growth. `install(n)` may request any `n`; concurrency
/// above this bound degrades gracefully to fewer helpers.
const MAX_WORKERS: usize = 256;

/// Claim-size divisor: a claim takes `remaining / (participants * LAG)`
/// units (at least one), so early claims are large — amortizing the atomic
/// traffic — while the tail is claimed unit-by-unit, which is what
/// load-balances adversarially skewed unit costs.
const CHUNK_LAG: usize = 4;

/// One posted parallel operation: `len` work units behind a claim cursor.
pub(crate) struct JobCore {
    /// Claim cursor; units `>= len` do not exist.
    next: AtomicUsize,
    /// Number of work units.
    len: usize,
    /// Units whose execution has been attempted (completed or panicked).
    done: AtomicUsize,
    /// Threads that joined the job (the poster counts as one). Guarded by
    /// the pool mutex on the worker side.
    participants: AtomicUsize,
    /// Effective thread count of the posting scope: poster + helpers.
    max_participants: usize,
    /// Thread-count override of the posting scope, re-installed in every
    /// helping worker so `current_num_threads()` and nested parallel ops
    /// resolve exactly as they would on the poster.
    inherited: Option<usize>,
    /// Type-erased context (points into the poster's stack).
    ctx: *const (),
    /// Executes units `lo..hi` against `ctx`.
    run: unsafe fn(*const (), usize, usize),
    /// First panic payload raised by a unit.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Completion flag + signal (`done == len`).
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

// Safety: `ctx` is only dereferenced through `run` for claimed unit
// indices, and the poster keeps the pointee alive until `done == len`
// (see the module docs). Everything else is atomics and sync primitives.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Build a job over `len` units.
    ///
    /// # Safety
    ///
    /// `ctx` must stay valid until [`finish`] returns on the posting
    /// thread, and `run(ctx, lo, hi)` must be safe for any `lo..hi` within
    /// `0..len`, including concurrently for disjoint ranges.
    pub(crate) unsafe fn new(
        ctx: *const (),
        run: unsafe fn(*const (), usize, usize),
        len: usize,
        max_participants: usize,
        inherited: Option<usize>,
    ) -> Arc<JobCore> {
        debug_assert!(len > 0, "posting an empty job would never complete");
        debug_assert!(max_participants >= 2, "single-threaded ops stay inline");
        Arc::new(JobCore {
            next: AtomicUsize::new(0),
            len,
            done: AtomicUsize::new(0),
            participants: AtomicUsize::new(1),
            max_participants,
            inherited,
            ctx,
            run,
            panic: Mutex::new(None),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        })
    }

    /// Claim the next chunk of units; returns an empty range when the
    /// cursor is exhausted.
    fn claim(&self) -> (usize, usize) {
        loop {
            let cur = self.next.load(Ordering::Relaxed);
            if cur >= self.len {
                return (cur, cur);
            }
            let remaining = self.len - cur;
            let take = (remaining / (self.max_participants * CHUNK_LAG)).max(1);
            if self
                .next
                .compare_exchange_weak(cur, cur + take, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return (cur, cur + take);
            }
        }
    }

    /// Participate: claim and execute chunks until the cursor is exhausted.
    /// Unit panics are caught and recorded (first wins); the chunk's units
    /// still count as attempted so completion is always reached.
    fn work(&self) {
        loop {
            let (lo, hi) = self.claim();
            if lo >= hi {
                return;
            }
            if let Err(payload) =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self.ctx, lo, hi) }))
            {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            if self.done.fetch_add(hi - lo, Ordering::AcqRel) + (hi - lo) == self.len {
                *self.finished.lock().unwrap() = true;
                self.finished_cv.notify_all();
            }
        }
    }

    /// Whether the claim cursor still has units (a racy hint for workers).
    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.len
    }
}

/// The process-global pool: a registry of active jobs plus worker threads
/// that sleep when the registry is drained.
struct Pool {
    shared: Mutex<Registry>,
    work_cv: Condvar,
}

#[derive(Default)]
struct Registry {
    /// Active jobs; a job is removed by its poster after completion.
    jobs: Vec<Arc<JobCore>>,
    /// Worker threads spawned so far (they never exit).
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Mutex::new(Registry::default()),
        work_cv: Condvar::new(),
    })
}

/// Register `job`, growing the pool toward `max_participants - 1` helpers,
/// and wake sleeping workers. The caller must follow up with [`finish`].
pub(crate) fn post(job: &Arc<JobCore>) {
    let p = pool();
    {
        let mut reg = p.shared.lock().unwrap();
        let want = job.max_participants.saturating_sub(1).min(MAX_WORKERS);
        while reg.workers < want {
            reg.workers += 1;
            spawn_worker();
        }
        reg.jobs.push(Arc::clone(job));
    }
    p.work_cv.notify_all();
}

/// Participate in `job` until its cursor is exhausted, wait for every
/// claimed unit to finish, and deregister it. Returns the recorded unit
/// panic, if any, instead of unwinding — the caller decides when it is
/// safe to resume it.
#[must_use = "a recorded unit panic must be propagated"]
pub(crate) fn finish(job: &Arc<JobCore>) -> Option<Box<dyn Any + Send + 'static>> {
    job.work();
    let mut fin = job.finished.lock().unwrap();
    while !*fin {
        fin = job.finished_cv.wait(fin).unwrap();
    }
    drop(fin);
    let p = pool();
    let mut reg = p.shared.lock().unwrap();
    reg.jobs.retain(|j| !Arc::ptr_eq(j, job));
    drop(reg);
    job.panic.lock().unwrap().take()
}

/// Pick a job a worker can still help with: units left to claim and a free
/// participant slot. Runs under the registry lock, so the participant
/// increment cannot oversubscribe.
fn pick(reg: &mut Registry) -> Option<Arc<JobCore>> {
    for job in &reg.jobs {
        if job.has_work() && job.participants.load(Ordering::Relaxed) < job.max_participants {
            job.participants.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(job));
        }
    }
    None
}

fn spawn_worker() {
    std::thread::Builder::new()
        .name("rayon-standin-worker".into())
        .spawn(|| {
            let p = pool();
            let mut reg = p.shared.lock().unwrap();
            loop {
                if let Some(job) = pick(&mut reg) {
                    drop(reg);
                    crate::with_override(job.inherited, || job.work());
                    reg = p.shared.lock().unwrap();
                } else {
                    reg = p.work_cv.wait(reg).unwrap();
                }
            }
        })
        .expect("spawn rayon stand-in pool worker");
}
