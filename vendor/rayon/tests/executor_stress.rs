//! Executor stress suite: adversarially skewed unit costs, nested
//! parallelism, and panic propagation, each pinned bit-identical to the
//! 1-thread evaluation.
//!
//! The offline pipeline leans on exactly these properties — hub-rooted
//! PIKS worlds dwarf leaf-rooted ones, delta rebuilds interleave expensive
//! rebuilt worlds with no-op reused slots, and stages nest `join` inside
//! `par_iter` — so the suite runs at 1, 2, and 8 threads regardless of the
//! host's CPU count or the `RAYON_NUM_THREADS` environment (an `install`
//! override beats both). CI additionally repeats the whole suite to let
//! scheduling races surface here rather than in a production delta
//! rebuild.

use rayon::prelude::*;
use rayon::{join, ThreadPool, ThreadPoolBuilder};

/// The thread counts every property is pinned across.
fn pools() -> Vec<(usize, ThreadPool)> {
    [1usize, 2, 8]
        .into_iter()
        .map(|n| (n, ThreadPoolBuilder::new().num_threads(n).build().unwrap()))
        .collect()
}

/// Deterministic CPU burn: an FNV-ish hash chain of `iters` steps.
fn churn(seed: u64, iters: u64) -> u64 {
    let mut h = seed ^ 0xCBF2_9CE4_8422_2325;
    for i in 0..iters {
        h ^= i;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h = h.rotate_left(17);
    }
    h
}

#[test]
fn skewed_unit_costs_are_bit_identical_across_thread_counts() {
    // one unit is ~100× the rest: a static chunker strands it in one
    // chunk; the claiming executor must both load-balance it and keep the
    // assembled output independent of who ran what
    let run = || -> Vec<u64> {
        (0u64..192)
            .into_par_iter()
            .map(|i| {
                let iters = if i == 13 { 200_000 } else { 2_000 };
                churn(i, iters)
            })
            .collect()
    };
    let reference: Vec<u64> = (0u64..192)
        .map(|i| churn(i, if i == 13 { 200_000 } else { 2_000 }))
        .collect();
    for (n, pool) in pools() {
        assert_eq!(pool.install(run), reference, "{n}-thread run diverged");
    }
}

#[test]
fn delta_shaped_skew_no_op_slots_between_heavy_rebuilds() {
    // the delta-rebuild cost profile: most units are (reused-world) no-ops,
    // a sparse few are expensive rebuilds
    let run = || -> Vec<u64> {
        (0u64..512)
            .into_par_iter()
            .map(|i| if i % 97 == 0 { churn(i, 60_000) } else { i })
            .collect()
    };
    let reference: Vec<u64> = (0u64..512)
        .map(|i| if i % 97 == 0 { churn(i, 60_000) } else { i })
        .collect();
    for (n, pool) in pools() {
        assert_eq!(pool.install(run), reference, "{n}-thread run diverged");
    }
}

fn join_fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        let (a, b) = join(|| join_fib(n - 1), || join_fib(n - 2));
        a + b
    }
}

#[test]
fn nested_join_inside_par_iter() {
    // every unit fans out recursively through the same pool the outer
    // drive runs on; posters always participate, so this cannot deadlock
    // even with zero free workers
    let run = || -> Vec<u64> {
        (0u64..32)
            .into_par_iter()
            .map(|i| join_fib(10 + (i % 3)))
            .collect()
    };
    let reference: Vec<u64> = (0u64..32).map(|i| join_fib(10 + (i % 3))).collect();
    for (n, pool) in pools() {
        assert_eq!(pool.install(run), reference, "{n}-thread run diverged");
    }
}

#[test]
fn nested_par_iter_inside_par_iter() {
    let run = || -> Vec<u64> {
        (0u64..24)
            .into_par_iter()
            .map(|i| {
                (0u64..200)
                    .into_par_iter()
                    .map(|j| churn(i * 1000 + j, 50) % 1_000_003)
                    .sum()
            })
            .collect()
    };
    let reference = {
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        single.install(run)
    };
    for (n, pool) in pools() {
        assert_eq!(pool.install(run), reference, "{n}-thread run diverged");
    }
}

#[test]
fn panic_in_one_unit_propagates_and_the_pool_survives() {
    for (n, pool) in pools() {
        let caught = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0u64..100)
                    .into_par_iter()
                    .map(|i| {
                        if i == 37 {
                            panic!("unit 37 exploded");
                        }
                        churn(i, 500)
                    })
                    .collect::<Vec<u64>>()
            })
        });
        let payload = caught.expect_err("the unit panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().map_or("", |s| s));
        assert!(msg.contains("unit 37 exploded"), "{n} threads: got {msg:?}");
        // the pool must keep serving after a unit panic
        let v: Vec<u64> = pool.install(|| (0u64..64).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(v, (1u64..=64).collect::<Vec<_>>(), "{n}-thread aftermath");
    }
}

#[test]
fn panic_in_either_join_arm_propagates() {
    for (n, pool) in pools() {
        let left = std::panic::catch_unwind(|| {
            pool.install(|| join(|| panic!("left arm"), || churn(1, 100)))
        });
        assert!(left.is_err(), "{n} threads: left-arm panic swallowed");
        let right = std::panic::catch_unwind(|| {
            pool.install(|| join(|| churn(1, 100), || panic!("right arm")))
        });
        assert!(right.is_err(), "{n} threads: right-arm panic swallowed");
        let (a, b) = pool.install(|| join(|| 40, || 2));
        assert_eq!(a + b, 42, "{n}-thread join aftermath");
    }
}

#[test]
fn concurrent_drives_from_many_os_threads_stay_isolated() {
    // several OS threads race jobs of different widths through the one
    // global registry; each must see exactly its own ordered results
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(1 + (t as usize % 3) * 3)
                    .build()
                    .unwrap();
                for round in 0..20u64 {
                    let base = t * 1_000_000 + round * 1_000;
                    let got: Vec<u64> = pool.install(|| {
                        (0u64..150)
                            .into_par_iter()
                            .map(|i| churn(base + i, 200))
                            .collect()
                    });
                    let want: Vec<u64> = (0u64..150).map(|i| churn(base + i, 200)).collect();
                    assert_eq!(got, want, "thread {t} round {round}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
}
