//! Cross-crate property tests: invariants that only hold when the whole
//! pipeline (generator → model → engine) is wired correctly.

use octopus::core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus::core::kim::BoundKind;
use octopus::data::CitationConfig;
use octopus::TopicDistribution;
use proptest::prelude::*;

fn tiny_engine(seed: u64, kim: KimEngineChoice) -> Octopus {
    let net = CitationConfig {
        authors: 50,
        papers: 120,
        num_topics: 3,
        words_per_topic: 8,
        seed,
        ..Default::default()
    }
    .generate();
    Octopus::new(
        net.graph,
        net.model,
        OctopusConfig {
            kim,
            piks_index_size: 256,
            mis_rr_per_topic: 800,
            k_max: 8,
            ..Default::default()
        },
    )
    .expect("engine builds")
}

proptest! {
    // engine construction is expensive; keep case counts low
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeds are always distinct and spread grows monotonically with k.
    #[test]
    fn seeds_distinct_and_spread_monotone(seed in 1u64..50, k in 2usize..6) {
        let engine = tiny_engine(seed, KimEngineChoice::BestEffort(BoundKind::Neighborhood));
        let gamma = TopicDistribution::uniform(3);
        let small = engine.find_influencers_gamma(&gamma, k - 1).unwrap();
        let large = engine.find_influencers_gamma(&gamma, k).unwrap();
        let mut ids = large.seeds.clone();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), large.seeds.len(), "duplicate seeds");
        prop_assert!(large.spread >= small.spread - 1e-9);
        // greedy prefix property: the engines extend rather than reshuffle
        prop_assert_eq!(&small.seeds[..], &large.seeds[..k - 1]);
    }

    /// The same query always returns the same answer (determinism end to
    /// end, including the sampled index structures).
    #[test]
    fn queries_are_deterministic(seed in 1u64..30) {
        let engine = tiny_engine(seed, KimEngineChoice::BestEffort(BoundKind::Precomputation));
        let gamma = TopicDistribution::new(vec![0.6, 0.3, 0.1]).unwrap();
        let a = engine.find_influencers_gamma(&gamma, 3).unwrap();
        let b = engine.find_influencers_gamma(&gamma, 3).unwrap();
        prop_assert_eq!(a.seeds, b.seeds);
        prop_assert_eq!(a.spread, b.spread);
    }

    /// Autocomplete returns only true prefixes, ranked by non-increasing
    /// score.
    #[test]
    fn autocomplete_invariants(seed in 1u64..30, prefix in "[a-z]{1,2}") {
        let engine = tiny_engine(seed, KimEngineChoice::Mis);
        let hits = engine.autocomplete(&prefix, 10);
        for w in hits.windows(2) {
            prop_assert!(w[0].2 >= w[1].2, "scores must be sorted");
        }
        for (_, name, _) in &hits {
            prop_assert!(name.starts_with(&prefix));
        }
    }

    /// Keyword suggestion spread never exceeds the user's best possible
    /// spread over single keywords times a growth factor, and consistency
    /// stays in [0,1].
    #[test]
    fn suggestion_sanity(seed in 1u64..20) {
        let engine = tiny_engine(seed, KimEngineChoice::Mis);
        // top db researcher always exists in these nets
        let ans = engine.find_influencers("data mining", 1).unwrap();
        let sugg = engine.suggest_keywords_for(ans.seeds[0].node, 2).unwrap();
        prop_assert!((0.0..=1.0).contains(&sugg.result.consistency));
        prop_assert!(sugg.result.spread >= 0.0);
        prop_assert!(sugg.result.keywords.len() <= 2);
        let s: f64 = sugg.result.gamma.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9, "gamma stays on the simplex");
    }
}
