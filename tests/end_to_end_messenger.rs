//! End-to-end integration on the QQ-like messenger network: the viral
//! marketing deployment scenario of §III.

use octopus::core::engine::{Octopus, OctopusConfig};
use octopus::data::MessengerConfig;
use octopus::KeywordId;
use std::collections::HashMap;

fn net() -> octopus::data::SyntheticNetwork {
    MessengerConfig {
        users: 250,
        links_per_user: 4,
        items: 400,
        num_topics: 5,
        words_per_topic: 10,
        seed: 77,
        ..Default::default()
    }
    .generate()
}

#[test]
fn game_campaign_targets_game_influencers() {
    let n = net();
    let engine = Octopus::new(
        n.graph.clone(),
        n.model.clone(),
        OctopusConfig {
            piks_index_size: 512,
            ..Default::default()
        },
    )
    .expect("engine builds");
    let ans = engine.find_influencers("game", 5).expect("campaign query");
    assert_eq!(ans.seeds.len(), 5);
    assert_eq!(
        ans.gamma.dominant_topic(),
        0,
        "'game' maps to the games topic"
    );
    // re-score with MC: the push list must clearly beat 5 random users
    let probs = n.graph.materialize(ans.gamma.as_slice()).expect("dims");
    let seeds: Vec<octopus::NodeId> = ans.seeds.iter().map(|s| s.node).collect();
    let push = octopus::cascade::estimate_spread(&n.graph, &probs, &seeds, 3000, 1);
    let random: Vec<octopus::NodeId> = (100..105).map(octopus::NodeId).collect();
    let rand_spread = octopus::cascade::estimate_spread(&n.graph, &probs, &random, 3000, 1);
    assert!(
        push > rand_spread * 1.5,
        "campaign reach {push:.1} must beat random {rand_spread:.1}"
    );
}

#[test]
fn food_influencer_gets_food_keywords() {
    let n = net();
    let mut user_keywords: HashMap<octopus::NodeId, Vec<KeywordId>> = HashMap::new();
    for item in n.log.items() {
        let e = user_keywords.entry(item.origin).or_default();
        for &w in &item.keywords {
            if !e.contains(&w) {
                e.push(w);
            }
        }
    }
    let engine = Octopus::new(
        n.graph.clone(),
        n.model.clone(),
        OctopusConfig {
            piks_index_size: 512,
            ..Default::default()
        },
    )
    .expect("engine builds")
    .with_user_keywords(user_keywords);

    // find the top food influencer, then ask for their selling points
    let ans = engine
        .find_influencers("gum strawberry", 1)
        .expect("food query");
    let sugg = engine
        .suggest_keywords_for(ans.seeds[0].node, 2)
        .expect("suggestion");
    assert_eq!(sugg.result.keywords.len(), 2);
    assert!(sugg.result.spread >= 1.0);
    // radar must expose the product categories as axes
    assert_eq!(sugg.radar.axes.len(), 5);
}

#[test]
fn campaign_engine_restarts_from_cache() {
    // deployment story: the marketing engine restarts nightly; the offline
    // phase must come back from disk, not be re-run, and the push lists
    // must not change across the restart
    let n = net();
    let config = OctopusConfig {
        piks_index_size: 512,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("octopus_e2e_messenger_restart");
    std::fs::remove_dir_all(&dir).ok();

    let first = Octopus::open_or_build(n.graph.clone(), n.model.clone(), config.clone(), &dir)
        .expect("cold start builds");
    assert!(!first.system_report().cache_hit);
    let push_before: Vec<octopus::NodeId> = first
        .find_influencers("game", 5)
        .expect("campaign query")
        .seeds
        .iter()
        .map(|s| s.node)
        .collect();
    drop(first);

    let second = Octopus::open_or_build(n.graph.clone(), n.model.clone(), config, &dir)
        .expect("restart opens");
    assert!(
        second.system_report().cache_hit,
        "restart on an unchanged network must hit"
    );
    let push_after: Vec<octopus::NodeId> = second
        .find_influencers("game", 5)
        .expect("campaign query")
        .seeds
        .iter()
        .map(|s| s.node)
        .collect();
    assert_eq!(push_before, push_after, "push list must survive a restart");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_word_product_phrases_resolve() {
    let n = net();
    let (ids, unknown) = n.model.vocab().resolve_query("flight deal bubble tea");
    assert_eq!(
        ids.len(),
        2,
        "two product phrases must resolve, got {ids:?}/{unknown:?}"
    );
    assert!(unknown.is_empty());
}

#[test]
fn reciprocal_edges_let_influence_flow_back() {
    let n = net();
    // pick any reciprocal pair and verify both directions carry probability
    let g = &n.graph;
    let mut checked = false;
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).unwrap();
        if let Some(back) = g.find_edge(v, u) {
            assert!(g.edge_prob_max(e) > 0.0);
            assert!(g.edge_prob_max(back) > 0.0);
            checked = true;
            break;
        }
    }
    assert!(checked, "messenger graph must contain reciprocal pairs");
}
