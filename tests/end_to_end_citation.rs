//! End-to-end integration: citation network → engine → all three scenarios,
//! plus the full learn-from-log pipeline (generate → EM → query) that
//! mirrors the paper's §II-B data flow.

use octopus::core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus::core::kim::BoundKind;
use octopus::core::paths::ExploreDirection;
use octopus::data::{CitationConfig, EmOptions, TicEm};
use octopus::KeywordId;
use std::collections::HashMap;

fn small_net() -> octopus::data::SyntheticNetwork {
    CitationConfig {
        authors: 120,
        papers: 360,
        num_topics: 4,
        words_per_topic: 10,
        seed: 99,
        ..Default::default()
    }
    .generate()
}

fn engine_config() -> OctopusConfig {
    OctopusConfig {
        piks_index_size: 512,
        mis_rr_per_topic: 1500,
        k_max: 10,
        ..Default::default()
    }
}

#[test]
fn all_three_scenarios_on_ground_truth_model() {
    let net = small_net();
    let mut user_keywords: HashMap<octopus::NodeId, Vec<KeywordId>> = HashMap::new();
    for item in net.log.items() {
        let e = user_keywords.entry(item.origin).or_default();
        for &w in &item.keywords {
            if !e.contains(&w) {
                e.push(w);
            }
        }
    }
    let engine = Octopus::new(net.graph.clone(), net.model.clone(), engine_config())
        .expect("engine builds")
        .with_user_keywords(user_keywords);

    // Scenario 1
    let ans = engine
        .find_influencers("data mining", 5)
        .expect("kim query");
    assert_eq!(ans.seeds.len(), 5);
    assert!(ans.result.spread >= 5.0, "spread at least the seed count");
    assert_eq!(ans.gamma.dominant_topic(), 0, "db query maps to topic 0");
    // seeds are distinct
    let mut ids: Vec<_> = ans.seeds.iter().map(|s| s.node).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 5);

    // Scenario 2 on the top influencer
    let target = ans.seeds[0].name.clone();
    let sugg = engine.suggest_keywords(&target, 2).expect("piks query");
    assert_eq!(sugg.words.len(), 2);
    assert!(sugg.result.spread >= 1.0);
    assert!(sugg.result.consistency > 0.0);

    // Scenario 3 both directions
    let fwd = engine
        .explore_paths(&target, ExploreDirection::Influences, Some("data mining"))
        .expect("path query");
    assert!(fwd.reached >= 1);
    assert!(fwd.d3_json.contains(&target));
    let back = engine
        .explore_paths(&target, ExploreDirection::InfluencedBy, None)
        .expect("reverse path query");
    assert_eq!(back.root_name, target);
}

#[test]
fn learned_model_supports_the_same_queries() {
    // generate → EM learn → build engine on the LEARNED model (not the
    // planted one) → queries still work and the learned graph is faithful
    // enough that a db-keyword query lands on the db topic's subgraph.
    let net = small_net();
    let em = TicEm::new(EmOptions {
        num_topics: 4,
        max_iters: 15,
        ..Default::default()
    });
    let fit = em.fit(
        &net.log,
        net.model.vocab().clone(),
        net.graph.names().to_vec(),
    );
    assert!(fit.graph.edge_count() > 0);
    let engine = Octopus::new(fit.graph, fit.model, engine_config()).expect("engine builds");
    let ans = engine
        .find_influencers("data mining", 3)
        .expect("query on learned model");
    assert_eq!(ans.seeds.len(), 3);
    let sugg = engine
        .suggest_keywords_for(ans.seeds[0].node, 2)
        .expect("piks on learned");
    assert_eq!(sugg.result.keywords.len(), 2);
}

#[test]
fn engines_agree_on_quality_within_tolerance() {
    // all engines' seed sets, re-scored by one Monte-Carlo referee, should
    // be within 25% of the naive baseline
    let net = small_net();
    let gamma = net.model.infer_str("data mining").expect("query resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims fine");
    let referee = |seeds: &[octopus::NodeId]| {
        octopus::cascade::estimate_spread(&net.graph, &probs, seeds, 4000, 123)
    };
    let mut spreads: HashMap<&str, f64> = HashMap::new();
    for (label, kim) in [
        ("naive", KimEngineChoice::Naive),
        ("mis", KimEngineChoice::Mis),
        ("pb", KimEngineChoice::BestEffort(BoundKind::Precomputation)),
        ("nb", KimEngineChoice::BestEffort(BoundKind::Neighborhood)),
        ("lg", KimEngineChoice::BestEffort(BoundKind::LocalGraph)),
        (
            "ts",
            KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 8,
                direct_eps: 0.05,
            },
        ),
    ] {
        let cfg = OctopusConfig {
            kim,
            ..engine_config()
        };
        let engine =
            Octopus::new(net.graph.clone(), net.model.clone(), cfg).expect("engine builds");
        let res = engine.find_influencers_gamma(&gamma, 5).expect("query");
        assert_eq!(res.seeds.len(), 5, "{label} returned too few seeds");
        spreads.insert(label, referee(&res.seeds));
    }
    let naive = spreads["naive"];
    for (label, s) in &spreads {
        assert!(
            *s >= 0.75 * naive,
            "{label} quality {s:.1} too far below naive {naive:.1} ({spreads:?})"
        );
    }
}

#[test]
fn autocomplete_matches_graph_names() {
    let net = small_net();
    let engine =
        Octopus::new(net.graph.clone(), net.model.clone(), engine_config()).expect("builds");
    // every completion must resolve back to the right node
    for (node, name, _) in engine.autocomplete("a", 20) {
        assert_eq!(net.graph.node_by_name(&name), Some(node));
    }
}

#[test]
fn graph_codec_round_trips_generated_networks() {
    let net = small_net();
    let bytes = octopus::graph::codec::encode(&net.graph);
    let decoded = octopus::graph::codec::decode(bytes).expect("decodes");
    assert_eq!(net.graph, decoded);
    // and the decoded graph is fully queryable
    let engine = Octopus::new(decoded, net.model.clone(), engine_config()).expect("builds");
    assert!(engine.find_influencers("data mining", 2).is_ok());
}

#[test]
fn engine_serves_concurrent_queries() {
    // The facade is `&self` throughout; the query cache is internally
    // synchronized — so one engine must serve parallel query threads (the
    // "online system" deployment mode).
    let net = small_net();
    let engine =
        Octopus::new(net.graph.clone(), net.model.clone(), engine_config()).expect("engine builds");
    let queries = ["data mining", "neural network", "clustering", "data mining"];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for q in queries {
            let engine = &engine;
            handles.push(scope.spawn(move || {
                let ans = engine.find_influencers(q, 5).expect("query succeeds");
                assert_eq!(ans.seeds.len(), 5);
                ans.seeds[0].node
            }));
        }
        let firsts: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // identical queries agree even across threads
        assert_eq!(firsts[0], firsts[3]);
    });
    // the repeated "data mining" query may or may not have hit the cache
    // depending on scheduling, but the cache must be consistent
    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, 4);
}

/// Answers an engine must reproduce exactly after a restart: one query per
/// artifact-dependent service.
fn probe(engine: &Octopus) -> (Vec<octopus::NodeId>, f64, Vec<String>, String) {
    let kim = engine.find_influencers("data mining", 5).expect("kim");
    let sugg = engine
        .suggest_keywords_for(kim.seeds[0].node, 2)
        .expect("piks");
    let paths = engine
        .explore_paths(
            &kim.seeds[0].name,
            ExploreDirection::Influences,
            Some("data mining"),
        )
        .expect("paths");
    (
        kim.seeds.iter().map(|s| s.node).collect(),
        kim.result.spread,
        sugg.words.clone(),
        paths.d3_json,
    )
}

#[test]
fn restart_reopens_from_cache_with_identical_answers() {
    use octopus::core::offline::persist::{
        STAGE_ARTIFACT_DECODE, STAGE_ARTIFACT_MAP, STAGE_ARTIFACT_STORE, STAGE_ARTIFACT_VALIDATE,
    };
    let net = small_net();
    let config = engine_config();
    let dir = std::env::temp_dir().join("octopus_e2e_citation_restart");
    std::fs::remove_dir_all(&dir).ok();

    // cold start: full build, cache written
    let first = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("cold start builds");
    let report = first.system_report();
    assert!(!report.cache_hit, "empty cache dir must miss");
    assert_eq!(
        report.stage_timings.last().map(|t| t.stage),
        Some(STAGE_ARTIFACT_STORE),
        "fresh build must persist its artifacts"
    );
    let before = probe(&first);
    drop(first);

    // restart: the whole offline phase is replaced by one load
    let second = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("restart opens");
    let report = second.system_report();
    assert!(report.cache_hit, "unchanged dataset must hit");
    let stages: Vec<&str> = report.stage_timings.iter().map(|t| t.stage).collect();
    assert_eq!(
        stages,
        vec![
            STAGE_ARTIFACT_MAP,
            STAGE_ARTIFACT_VALIDATE,
            STAGE_ARTIFACT_DECODE,
        ],
        "a hit performs zero offline stage builds"
    );
    assert_eq!(probe(&second), before, "restart must answer identically");
    drop(second);

    // a different dataset (same shape, different generator seed) must NOT
    // reuse the cache
    let other = CitationConfig {
        authors: 120,
        papers: 360,
        num_topics: 4,
        words_per_topic: 10,
        seed: 100,
        ..Default::default()
    }
    .generate();
    let perturbed = Octopus::open_or_build(other.graph, other.model, config, &dir).unwrap();
    assert!(
        !perturbed.system_report().cache_hit,
        "a changed graph must rebuild, not reuse"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_or_stale_cache_degrades_to_rebuild() {
    let net = small_net();
    let config = engine_config();
    let dir = std::env::temp_dir().join("octopus_e2e_citation_corrupt");
    std::fs::remove_dir_all(&dir).ok();

    let fresh = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("cold start builds");
    let before = probe(&fresh);
    drop(fresh);

    let cache_file = || {
        std::fs::read_dir(&dir)
            .expect("cache dir exists")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "octa"))
            .expect("one cache file written")
    };

    // flip a byte deep in the payload: checksum catches it, engine rebuilds
    let path = cache_file();
    let mut raw = std::fs::read(&path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x55;
    std::fs::write(&path, &raw).unwrap();
    let engine = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("corrupt cache must not fail construction");
    assert!(
        !engine.system_report().cache_hit,
        "corrupt file must degrade to a rebuild"
    );
    assert_eq!(probe(&engine), before, "rebuild must answer identically");
    drop(engine);

    // the rebuild rewrote a clean file — now stamp a stale codec version
    let path = cache_file();
    let mut raw = std::fs::read(&path).unwrap();
    raw[4] = 0xFE;
    raw[5] = 0xFF;
    std::fs::write(&path, &raw).unwrap();
    let engine = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("stale version must not fail construction");
    assert!(
        !engine.system_report().cache_hit,
        "stale version must degrade to a rebuild"
    );
    assert_eq!(probe(&engine), before);
    drop(engine);

    // truncate mid-file (simulated torn write left behind by a crash)
    let path = cache_file();
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..raw.len() / 3]).unwrap();
    let engine = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config, &dir)
        .expect("truncated cache must not fail construction");
    assert!(!engine.system_report().cache_hit);
    assert_eq!(probe(&engine), before);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delta_restart_reuses_unchanged_stages_with_identical_answers() {
    // the dynamic-network story: a deployed engine's graph drifts by a few
    // edges (a warm EM refit nudging weights); reopening must NOT pay a
    // full offline build — unchanged stages and untouched PIKS worlds
    // reload, only the invalidated work reruns, and the partially rebuilt
    // engine answers every probe exactly like a from-scratch build
    use octopus::graph::delta;
    let net = small_net();
    let config = engine_config();
    let dir = std::env::temp_dir().join("octopus_e2e_citation_delta");
    std::fs::remove_dir_all(&dir).ok();

    let first = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("cold start builds");
    assert!(!first.system_report().cache_hit);
    drop(first);

    // perturb k=3 edge weights, spread across the edge range
    let m = net.graph.edge_count() as u32;
    let victims: Vec<octopus::EdgeId> = [m / 7, m / 2, m - 3]
        .into_iter()
        .map(octopus::EdgeId)
        .collect();
    let perturbed = delta::nudge_weights(&net.graph, &victims, 0.05).expect("delta applies");

    let reopened =
        Octopus::open_or_build(perturbed.clone(), net.model.clone(), config.clone(), &dir)
            .expect("delta reopen");
    let report = reopened.system_report();
    assert!(!report.cache_hit, "a delta is a partial, not a full, hit");
    let reuse_of = |stage: &str| {
        report
            .stage_reuse
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("stage {stage} missing"))
            .clone()
    };
    // the trie never read the weights: full per-stage hit
    assert!(
        reuse_of("autocomplete").is_full(),
        "autocomplete must survive a weight delta: {:?}",
        report.stage_reuse
    );
    // PIKS reuses every world whose BFS footprint missed the nudged edges
    let piks = reuse_of("piks-worlds");
    assert!(
        piks.reused > 0,
        "a 3-edge delta must leave most worlds reusable: {piks:?}"
    );
    assert!(piks.reused < piks.total, "touched worlds must rebuild");
    // the probability-reading stages correctly rebuilt
    assert_eq!(reuse_of("spread-cap").reused, 0);
    // the partial rebuild answers exactly like a cache-less engine
    let fresh =
        Octopus::new(perturbed.clone(), net.model.clone(), config.clone()).expect("fresh engine");
    assert_eq!(
        probe(&reopened),
        probe(&fresh),
        "delta reopen must be exact"
    );
    drop(reopened);

    // and the merged write-back makes the next identical open a full hit
    let again = Octopus::open_or_build(perturbed, net.model.clone(), config, &dir).unwrap();
    let report = again.system_report();
    assert!(report.cache_hit, "unchanged re-reopen must fully hit");
    assert!(report.stage_reuse.iter().all(|s| s.is_full()));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_em_pipeline_for_evolving_logs() {
    // dynamic-stream story: learn once, new actions arrive, refit warm
    use octopus::data::{EmOptions, TicEm};
    let net = small_net();
    let em = TicEm::new(EmOptions {
        num_topics: 4,
        max_iters: 30,
        ..Default::default()
    });
    let first = em.fit(
        &net.log,
        net.model.vocab().clone(),
        net.graph.names().to_vec(),
    );
    let refit = em.fit_warm(
        &net.log,
        net.model.vocab().clone(),
        net.graph.names().to_vec(),
        &first,
    );
    assert!(refit.iterations <= first.iterations);
    // the refit model still serves queries
    let engine = Octopus::new(refit.graph, refit.model, engine_config()).expect("builds");
    assert!(engine.find_influencers("data mining", 3).is_ok());
}
