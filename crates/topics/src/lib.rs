//! # octopus-topics
//!
//! The keyword/topic layer of OCTOPUS (§II-B of the paper).
//!
//! OCTOPUS's usability feature is that end-users type *keywords*, never raw
//! topic distributions. This crate provides the machinery that makes that
//! possible:
//!
//! * [`TopicDistribution`] — a validated point `γ` on the `Z`-simplex, the
//!   "item" of the TIC model;
//! * [`Vocabulary`] — interned keyword strings with stable [`KeywordId`]s;
//! * [`TopicModel`] — the word–topic distributions `p(w|z)` with topic priors
//!   `p(z)`, and the **Bayesian keyword→topic inference**
//!   `γ_z(W) ∝ p(z)·Π_{w∈W} p(w|z)` that turns a keyword query into the
//!   topic distribution used for influence computation;
//! * [`radar`] — the `p(z|w)` "radar diagram" vectors the OCTOPUS UI shows to
//!   explain a keyword (Scenario 2);
//! * [`consistency`] — topic-consistency scoring of keyword sets, used by the
//!   personalized keyword suggestion to ensure "the suggested keywords are
//!   consistent in topics".
//!
//! ```
//! use octopus_topics::{TopicModel, Vocabulary};
//!
//! let mut vocab = Vocabulary::new();
//! let w_db = vocab.intern("database");
//! let w_ml = vocab.intern("learning");
//! // 2 topics: topic 0 is "databases", topic 1 is "ML".
//! let model = TopicModel::from_rows(
//!     vocab,
//!     vec![vec![0.9, 0.1], vec![0.1, 0.9]], // p(w|z) per topic
//!     vec![0.5, 0.5],                       // p(z)
//! ).unwrap();
//! let gamma = model.infer(&[w_db]).unwrap();
//! assert!(gamma[0] > 0.8); // "database" maps to topic 0
//! let gamma = model.infer(&[w_db, w_ml]).unwrap();
//! assert!((gamma[0] - 0.5).abs() < 1e-9); // balanced query
//! ```

#![warn(missing_docs)]

pub mod consistency;
pub mod dist;
pub mod error;
pub mod model;
pub mod radar;
pub mod related;
pub mod vocab;

pub use dist::TopicDistribution;
pub use error::TopicError;
pub use model::TopicModel;
pub use vocab::{KeywordId, Vocabulary};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, TopicError>;
