//! Topic-consistency scoring for keyword sets.
//!
//! The personalized influential keyword suggestion (§II-D) requires that
//! "the suggested keywords are consistent in topics" — a set like
//! `{"clustering", "xylitol"}` may have high combined influence numerically
//! but is meaningless as a selling point. We quantify consistency two ways
//! and expose a combined predicate used by `octopus-core::piks`.

use crate::model::TopicModel;
use crate::vocab::KeywordId;
use crate::Result;

/// Consistency from the *joint posterior*: `1 − H(γ(W)) / ln Z`, where `H`
/// is Shannon entropy. 1 means the set maps to a single topic; 0 means the
/// posterior is uniform.
pub fn posterior_consistency(model: &TopicModel, ws: &[KeywordId]) -> Result<f64> {
    let gamma = model.infer(ws)?;
    let z = model.num_topics() as f64;
    if z <= 1.0 {
        return Ok(1.0);
    }
    Ok(1.0 - gamma.entropy() / z.ln())
}

/// Consistency from *pairwise agreement*: mean cosine similarity between the
/// `p(z|w)` vectors of all keyword pairs. 1 for singletons.
pub fn pairwise_consistency(model: &TopicModel, ws: &[KeywordId]) -> Result<f64> {
    if ws.len() <= 1 {
        // validate the id anyway
        if let Some(&w) = ws.first() {
            model.keyword_topics(w)?;
        }
        return Ok(1.0);
    }
    let posts: Vec<_> = ws
        .iter()
        .map(|&w| model.keyword_topics(w))
        .collect::<Result<Vec<_>>>()?;
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..posts.len() {
        for j in (i + 1)..posts.len() {
            total += posts[i].cosine(&posts[j]);
            count += 1;
        }
    }
    Ok(total / count as f64)
}

/// Combined predicate: a keyword set is *topically consistent* when both the
/// joint posterior is peaked and the keywords pairwise agree.
///
/// `min_posterior` and `min_pairwise` are thresholds in `[0, 1]`; OCTOPUS
/// defaults (see `octopus-core`) are 0.5 and 0.5.
pub fn is_consistent(
    model: &TopicModel,
    ws: &[KeywordId],
    min_posterior: f64,
    min_pairwise: f64,
) -> Result<bool> {
    Ok(posterior_consistency(model, ws)? >= min_posterior
        && pairwise_consistency(model, ws)? >= min_pairwise)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn model() -> TopicModel {
        let mut v = Vocabulary::new();
        v.intern("btree"); // topic 0
        v.intern("sql"); // topic 0
        v.intern("neuron"); // topic 1
        v.intern("shared"); // both
        TopicModel::from_rows(
            v,
            vec![vec![0.45, 0.45, 0.0, 0.1], vec![0.0, 0.0, 0.9, 0.1]],
            vec![0.5, 0.5],
        )
        .unwrap()
    }

    fn ids(m: &TopicModel, words: &[&str]) -> Vec<KeywordId> {
        words.iter().map(|w| m.vocab().get(w).unwrap()).collect()
    }

    #[test]
    fn same_topic_set_is_consistent() {
        let m = model();
        let set = ids(&m, &["btree", "sql"]);
        assert!(posterior_consistency(&m, &set).unwrap() > 0.9);
        assert!(pairwise_consistency(&m, &set).unwrap() > 0.99);
        assert!(is_consistent(&m, &set, 0.5, 0.5).unwrap());
    }

    #[test]
    fn cross_topic_set_is_inconsistent() {
        let m = model();
        let set = ids(&m, &["btree", "neuron"]);
        assert!(pairwise_consistency(&m, &set).unwrap() < 0.2);
        assert!(!is_consistent(&m, &set, 0.5, 0.5).unwrap());
    }

    #[test]
    fn singleton_is_fully_consistent() {
        let m = model();
        let set = ids(&m, &["btree"]);
        assert_eq!(pairwise_consistency(&m, &set).unwrap(), 1.0);
        assert!(posterior_consistency(&m, &set).unwrap() > 0.9);
    }

    #[test]
    fn shared_keyword_lowers_posterior_consistency() {
        let m = model();
        let focused = posterior_consistency(&m, &ids(&m, &["btree"])).unwrap();
        let vague = posterior_consistency(&m, &ids(&m, &["shared"])).unwrap();
        assert!(vague < focused);
        assert!(
            vague < 0.1,
            "an evenly-shared word has near-uniform posterior"
        );
    }

    #[test]
    fn unknown_keyword_propagates_error() {
        let m = model();
        assert!(posterior_consistency(&m, &[KeywordId(99)]).is_err());
        assert!(pairwise_consistency(&m, &[KeywordId(99)]).is_err());
        assert!(pairwise_consistency(&m, &[KeywordId(99), KeywordId(0)]).is_err());
    }

    #[test]
    fn empty_set_errors() {
        let m = model();
        assert!(posterior_consistency(&m, &[]).is_err());
        // pairwise defines singleton/empty as trivially 1.0 only when ids valid
        assert_eq!(pairwise_consistency(&m, &[]).unwrap(), 1.0);
    }
}
