//! Keyword vocabulary: string interning with stable ids.

use crate::error::TopicError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned keyword.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The id as a `usize` index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for KeywordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl From<usize> for KeywordId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        KeywordId(v as u32)
    }
}

/// An interning keyword vocabulary.
///
/// Keywords are normalized to lowercase with surrounding whitespace trimmed,
/// mirroring how OCTOPUS extracts "distinct keywords from paper titles"
/// (§II-B) — "Data Mining" and "data mining" are the same keyword.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, KeywordId>,
}

impl Vocabulary {
    /// Longest keyword phrase (in whitespace tokens) considered by
    /// [`Vocabulary::resolve_query`].
    pub const MAX_PHRASE_TOKENS: usize = 4;

    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalization applied to every keyword before interning/lookup.
    pub fn normalize(word: &str) -> String {
        word.trim().to_lowercase()
    }

    /// Intern `word`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, word: &str) -> KeywordId {
        let norm = Self::normalize(word);
        if let Some(&id) = self.index.get(&norm) {
            return id;
        }
        let id = KeywordId(self.words.len() as u32);
        self.index.insert(norm.clone(), id);
        self.words.push(norm);
        id
    }

    /// Look up a keyword without interning.
    pub fn get(&self, word: &str) -> Option<KeywordId> {
        self.index.get(&Self::normalize(word)).copied()
    }

    /// Look up a keyword, erroring with the original string when missing.
    pub fn require(&self, word: &str) -> Result<KeywordId> {
        self.get(word)
            .ok_or_else(|| TopicError::UnknownKeywordStr(word.to_string()))
    }

    /// The string for an id.
    pub fn word(&self, id: KeywordId) -> Result<&str> {
        self.words
            .get(id.index())
            .map(String::as_str)
            .ok_or(TopicError::UnknownKeyword(id.0))
    }

    /// Number of interned keywords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterate `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (KeywordId(i as u32), w.as_str()))
    }

    /// Ids of all keywords starting with `prefix` (normalized), in id order.
    /// Backs the UI auto-completion for keyword inputs.
    pub fn prefix_matches(&self, prefix: &str) -> Vec<KeywordId> {
        let p = Self::normalize(prefix);
        self.iter()
            .filter(|(_, w)| w.starts_with(&p))
            .map(|(id, _)| id)
            .collect()
    }

    /// Resolve a keyword query string into ids with greedy longest-phrase
    /// matching (keywords may be multi-word phrases like `"data mining"`):
    /// at each token position the longest interned phrase of up to
    /// [`Vocabulary::MAX_PHRASE_TOKENS`] tokens wins. Unmatched tokens are
    /// returned in `unknown`. Duplicates are dropped.
    pub fn resolve_query(&self, query: &str) -> (Vec<KeywordId>, Vec<String>) {
        let tokens: Vec<&str> = query.split_whitespace().collect();
        let mut resolved = Vec::new();
        let mut unknown = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            let mut matched = None;
            let max_len = Self::MAX_PHRASE_TOKENS.min(tokens.len() - i);
            for len in (1..=max_len).rev() {
                let phrase = tokens[i..i + len].join(" ");
                if let Some(id) = self.get(&phrase) {
                    matched = Some((id, len));
                    break;
                }
            }
            match matched {
                Some((id, len)) => {
                    if !resolved.contains(&id) {
                        resolved.push(id);
                    }
                    i += len;
                }
                None => {
                    unknown.push(tokens[i].to_string());
                    i += 1;
                }
            }
        }
        (resolved, unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_normalizing() {
        let mut v = Vocabulary::new();
        let a = v.intern("Data Mining");
        let b = v.intern("  data mining ");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.word(a).unwrap(), "data mining");
    }

    #[test]
    fn lookup_and_require() {
        let mut v = Vocabulary::new();
        v.intern("clustering");
        assert!(v.get("CLUSTERING").is_some());
        assert!(v.get("nonexistent").is_none());
        assert!(matches!(
            v.require("nope"),
            Err(TopicError::UnknownKeywordStr(_))
        ));
    }

    #[test]
    fn word_of_unknown_id_errors() {
        let v = Vocabulary::new();
        assert!(v.word(KeywordId(4)).is_err());
    }

    #[test]
    fn prefix_matching() {
        let mut v = Vocabulary::new();
        v.intern("data mining");
        v.intern("data cleaning");
        v.intern("machine learning");
        let hits = v.prefix_matches("Data");
        assert_eq!(hits.len(), 2);
        assert!(v.prefix_matches("zzz").is_empty());
    }

    #[test]
    fn resolve_query_dedups_and_reports_unknown() {
        let mut v = Vocabulary::new();
        let dm = v.intern("data");
        v.intern("mining");
        let (ids, unknown) = v.resolve_query("data data mining warphole");
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], dm);
        assert_eq!(unknown, vec!["warphole".to_string()]);
    }

    #[test]
    fn resolve_query_prefers_longest_phrase() {
        let mut v = Vocabulary::new();
        let dm = v.intern("data mining");
        let d = v.intern("data");
        v.intern("mining");
        let (ids, unknown) = v.resolve_query("Data Mining");
        assert_eq!(ids, vec![dm], "phrase must beat its word parts");
        assert!(unknown.is_empty());
        let (ids, _) = v.resolve_query("data cleaning");
        assert_eq!(ids, vec![d], "falls back to single word");
    }

    #[test]
    fn resolve_query_matches_phrases_at_any_position() {
        let mut v = Vocabulary::new();
        let im = v.intern("influence maximization");
        let sn = v.intern("social network");
        let (ids, unknown) =
            v.resolve_query("scalable influence maximization on social network data");
        assert_eq!(ids, vec![im, sn]);
        assert_eq!(
            unknown,
            vec!["scalable".to_string(), "on".to_string(), "data".to_string()]
        );
    }

    #[test]
    fn iteration_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("b");
        v.intern("a");
        let words: Vec<_> = v.iter().map(|(_, w)| w).collect();
        assert_eq!(words, vec!["b", "a"]);
    }
}
