//! Radar-diagram data for keyword interpretation (OCTOPUS Scenario 2).
//!
//! When a user selects a suggested keyword, the OCTOPUS UI "shows the
//! distribution over topics … for example, 'EM algorithm' is very related to
//! AI and machine learning, while also relevant to multimedia and HCI". This
//! module computes exactly that data: labeled `p(z|w)` axes ready for a
//! front-end radar/spider chart.

use crate::model::TopicModel;
use crate::vocab::KeywordId;
use crate::Result;

/// One radar chart: topic labels (axes) and the keyword-set's mass per axis.
#[derive(Debug, Clone, PartialEq)]
pub struct RadarChart {
    /// The keyword(s) the chart explains, as display strings.
    pub keywords: Vec<String>,
    /// Axis labels, one per topic.
    pub axes: Vec<String>,
    /// `p(z|W)` per axis, sums to 1.
    pub values: Vec<f64>,
}

impl RadarChart {
    /// The axes sorted by descending value — handy for textual rendering.
    pub fn ranked_axes(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self
            .axes
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        v
    }

    /// Render a compact ASCII version (one bar per axis) for terminal demos.
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        let maxw = self.axes.iter().map(String::len).max().unwrap_or(0);
        for (axis, &val) in self.axes.iter().zip(&self.values) {
            let bars = (val * 40.0).round() as usize;
            out.push_str(&format!(
                "{axis:>maxw$} | {}{:.3}\n",
                "█".repeat(bars).to_string() + " ",
                val
            ));
        }
        out
    }
}

/// Radar chart for a single keyword: `p(z|w)`.
pub fn keyword_radar(model: &TopicModel, w: KeywordId) -> Result<RadarChart> {
    let post = model.keyword_topics(w)?;
    Ok(RadarChart {
        keywords: vec![model.vocab().word(w)?.to_string()],
        axes: (0..model.num_topics()).map(|z| model.label(z)).collect(),
        values: post.into_vec(),
    })
}

/// Radar chart for a keyword set: `p(z|W)` via Bayesian inference.
pub fn keyword_set_radar(model: &TopicModel, ws: &[KeywordId]) -> Result<RadarChart> {
    let post = model.infer(ws)?;
    let mut keywords = Vec::with_capacity(ws.len());
    for &w in ws {
        keywords.push(model.vocab().word(w)?.to_string());
    }
    Ok(RadarChart {
        keywords,
        axes: (0..model.num_topics()).map(|z| model.label(z)).collect(),
        values: post.into_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn model() -> TopicModel {
        let mut v = Vocabulary::new();
        v.intern("em algorithm");
        v.intern("sql");
        TopicModel::from_rows(
            v,
            vec![vec![0.7, 0.05], vec![0.05, 0.9], vec![0.25, 0.05]],
            vec![1.0, 1.0, 1.0],
        )
        .unwrap()
        .with_labels(vec!["AI".into(), "DB".into(), "HCI".into()])
        .unwrap()
    }

    #[test]
    fn radar_axes_and_mass() {
        let m = model();
        let w = m.vocab().get("em algorithm").unwrap();
        let chart = keyword_radar(&m, w).unwrap();
        assert_eq!(chart.axes, vec!["AI", "DB", "HCI"]);
        assert_eq!(chart.keywords, vec!["em algorithm"]);
        let s: f64 = chart.values.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        // "EM algorithm" dominated by AI, with HCI second — the paper's example shape.
        let ranked = chart.ranked_axes();
        assert_eq!(ranked[0].0, "AI");
        assert_eq!(ranked[1].0, "HCI");
    }

    #[test]
    fn set_radar_combines_keywords() {
        let m = model();
        let a = m.vocab().get("em algorithm").unwrap();
        let b = m.vocab().get("sql").unwrap();
        let chart = keyword_set_radar(&m, &[a, b]).unwrap();
        assert_eq!(chart.keywords.len(), 2);
        let s: f64 = chart.values.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ascii_rendering_contains_axes() {
        let m = model();
        let w = m.vocab().get("sql").unwrap();
        let chart = keyword_radar(&m, w).unwrap();
        let text = chart.ascii();
        assert!(text.contains("DB"));
        assert!(text.lines().count() == 3);
    }
}
