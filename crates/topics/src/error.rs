//! Error type for the topic layer.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum TopicError {
    /// A distribution did not lie on the probability simplex.
    NotADistribution {
        /// Human-readable reason.
        reason: String,
    },
    /// A keyword id referenced a word that is not in the vocabulary.
    UnknownKeyword(u32),
    /// A keyword string was not found in the vocabulary.
    UnknownKeywordStr(String),
    /// Model matrices had inconsistent shapes.
    ShapeMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        got: usize,
    },
    /// An empty keyword set was supplied where at least one is required.
    EmptyKeywordSet,
}

impl fmt::Display for TopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicError::NotADistribution { reason } => {
                write!(f, "not a probability distribution: {reason}")
            }
            TopicError::UnknownKeyword(id) => write!(f, "unknown keyword id {id}"),
            TopicError::UnknownKeywordStr(w) => write!(f, "unknown keyword {w:?}"),
            TopicError::ShapeMismatch {
                what,
                expected,
                got,
            } => {
                write!(
                    f,
                    "shape mismatch in {what}: expected {expected}, got {got}"
                )
            }
            TopicError::EmptyKeywordSet => write!(f, "keyword set must be non-empty"),
        }
    }
}

impl std::error::Error for TopicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(TopicError::UnknownKeyword(3).to_string().contains('3'));
        assert!(TopicError::EmptyKeywordSet
            .to_string()
            .contains("non-empty"));
        let e = TopicError::ShapeMismatch {
            what: "p(w|z)",
            expected: 5,
            got: 2,
        };
        assert!(e.to_string().contains("p(w|z)"));
    }
}
