//! The word–topic model: `p(w|z)` distributions, topic priors, and the
//! Bayesian keyword→topic inference of OCTOPUS §II-B.

use crate::dist::TopicDistribution;
use crate::error::TopicError;
use crate::vocab::{KeywordId, Vocabulary};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Probability floor used when a keyword has zero mass under a topic, so a
/// single out-of-topic keyword cannot annihilate a whole topic's posterior.
/// This mirrors the Laplace smoothing applied during EM learning.
const SMOOTHING_FLOOR: f64 = 1e-9;

/// A learned topic model: keyword distributions `p(w|z)` per topic plus topic
/// priors `p(z)`.
///
/// Given a keyword set `W`, [`TopicModel::infer`] computes the topic
/// distribution captured by `W` using the Bayes rule
///
/// ```text
/// γ_z(W)  ∝  p(z) · Π_{w ∈ W} p(w|z)
/// ```
///
/// (the "Bayesian formula (see \[6\])" of §II-B), evaluated in log-space for
/// numerical stability. The resulting `γ` feeds the topic-aware IC model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicModel {
    vocab: Vocabulary,
    num_topics: usize,
    /// Row-major `p(w|z)`: entry for topic `z`, word `w` is `pwz[z * V + w]`.
    pwz: Vec<f64>,
    /// Topic priors `p(z)`.
    prior: Vec<f64>,
    /// Optional human-readable topic labels (for the radar diagram axes).
    labels: Vec<String>,
}

impl TopicModel {
    /// Build from per-topic keyword-probability rows.
    ///
    /// `rows[z][w]` is (proportional to) `p(w|z)`; rows are normalized here.
    /// `prior` is normalized too, so counts may be passed directly.
    pub fn from_rows(vocab: Vocabulary, rows: Vec<Vec<f64>>, prior: Vec<f64>) -> Result<Self> {
        let z = rows.len();
        if z == 0 {
            return Err(TopicError::ShapeMismatch {
                what: "p(w|z) rows",
                expected: 1,
                got: 0,
            });
        }
        if prior.len() != z {
            return Err(TopicError::ShapeMismatch {
                what: "p(z) prior",
                expected: z,
                got: prior.len(),
            });
        }
        let v = vocab.len();
        let mut pwz = Vec::with_capacity(z * v);
        for row in &rows {
            if row.len() != v {
                return Err(TopicError::ShapeMismatch {
                    what: "p(w|z) row width",
                    expected: v,
                    got: row.len(),
                });
            }
            let mut sum = 0.0;
            for &p in row {
                if !p.is_finite() || p < 0.0 {
                    return Err(TopicError::NotADistribution {
                        reason: format!("p(w|z) entry {p} is negative or non-finite"),
                    });
                }
                sum += p;
            }
            if sum <= 0.0 {
                return Err(TopicError::NotADistribution {
                    reason: "a p(w|z) row is all zeros".into(),
                });
            }
            for &p in row {
                pwz.push(p / sum);
            }
        }
        let prior = TopicDistribution::from_weights(prior)?.into_vec();
        Ok(TopicModel {
            vocab,
            num_topics: z,
            pwz,
            prior,
            labels: Vec::new(),
        })
    }

    /// Attach human-readable topic labels (radar axes). Length must be `Z`.
    pub fn with_labels(mut self, labels: Vec<String>) -> Result<Self> {
        if labels.len() != self.num_topics {
            return Err(TopicError::ShapeMismatch {
                what: "topic labels",
                expected: self.num_topics,
                got: labels.len(),
            });
        }
        self.labels = labels;
        Ok(self)
    }

    /// Number of topics `Z`.
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// The vocabulary this model is defined over.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Topic label, or a generated `"topic-z"` fallback.
    pub fn label(&self, z: usize) -> String {
        self.labels
            .get(z)
            .cloned()
            .unwrap_or_else(|| format!("topic-{z}"))
    }

    /// `p(w|z)`.
    #[inline]
    pub fn p_word_given_topic(&self, w: KeywordId, z: usize) -> f64 {
        self.pwz[z * self.vocab.len() + w.index()]
    }

    /// Topic prior `p(z)`.
    #[inline]
    pub fn topic_prior(&self, z: usize) -> f64 {
        self.prior[z]
    }

    /// Bayesian inference of the topic distribution captured by keyword set
    /// `W` (order-insensitive): `γ_z ∝ p(z)·Π_{w∈W} p(w|z)`.
    ///
    /// Zero `p(w|z)` entries are floored at a tiny smoothing constant so an
    /// out-of-vocabulary-for-topic word dampens rather than annihilates a
    /// topic.
    pub fn infer(&self, keywords: &[KeywordId]) -> Result<TopicDistribution> {
        if keywords.is_empty() {
            return Err(TopicError::EmptyKeywordSet);
        }
        for &w in keywords {
            if w.index() >= self.vocab.len() {
                return Err(TopicError::UnknownKeyword(w.0));
            }
        }
        let mut log_post = vec![0.0f64; self.num_topics];
        for (z, lp) in log_post.iter_mut().enumerate() {
            *lp = self.prior[z].max(SMOOTHING_FLOOR).ln();
            for &w in keywords {
                *lp += self.p_word_given_topic(w, z).max(SMOOTHING_FLOOR).ln();
            }
        }
        // Softmax in log-space.
        let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = log_post.iter().map(|&lp| (lp - max).exp()).collect();
        TopicDistribution::from_weights(weights)
    }

    /// Convenience: infer from a whitespace-separated keyword string.
    /// Unknown words are ignored; errors if none resolve.
    pub fn infer_str(&self, query: &str) -> Result<TopicDistribution> {
        let (ids, _unknown) = self.vocab.resolve_query(query);
        self.infer(&ids)
    }

    /// Posterior topic distribution of a single keyword, `p(z|w) ∝
    /// p(w|z)p(z)` — the radar-diagram vector of Scenario 2.
    pub fn keyword_topics(&self, w: KeywordId) -> Result<TopicDistribution> {
        self.infer(&[w])
    }

    /// The `n` highest-probability keywords of topic `z`.
    pub fn top_keywords(&self, z: usize, n: usize) -> Vec<(KeywordId, f64)> {
        let v = self.vocab.len();
        let row = &self.pwz[z * v..(z + 1) * v];
        let mut idx: Vec<(KeywordId, f64)> = row
            .iter()
            .enumerate()
            .map(|(w, &p)| (KeywordId(w as u32), p))
            .collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        idx.truncate(n);
        idx
    }

    /// Keywords whose dominant topic is `z`, with their `p(z|w)` mass —
    /// candidate pool for personalized keyword suggestion.
    pub fn keywords_dominated_by(&self, z: usize) -> Vec<(KeywordId, f64)> {
        let mut out = Vec::new();
        for (id, _) in self.vocab.iter() {
            if let Ok(post) = self.keyword_topics(id) {
                if post.dominant_topic() == z {
                    out.push((id, post[z]));
                }
            }
        }
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Marginal keyword probability `p(w) = Σ_z p(w|z)p(z)`.
    pub fn keyword_marginal(&self, w: KeywordId) -> f64 {
        (0..self.num_topics)
            .map(|z| self.p_word_given_topic(w, z) * self.prior[z])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> TopicModel {
        let mut v = Vocabulary::new();
        v.intern("database"); // w0
        v.intern("index"); // w1
        v.intern("neural"); // w2
        v.intern("learning"); // w3
        v.intern("generic"); // w4 (shared)
        TopicModel::from_rows(
            v,
            vec![
                vec![0.4, 0.35, 0.0, 0.05, 0.2], // topic 0: databases
                vec![0.0, 0.05, 0.4, 0.35, 0.2], // topic 1: ML
            ],
            vec![0.5, 0.5],
        )
        .unwrap()
    }

    #[test]
    fn shape_validation() {
        let mut v = Vocabulary::new();
        v.intern("a");
        assert!(TopicModel::from_rows(v.clone(), vec![], vec![]).is_err());
        assert!(TopicModel::from_rows(v.clone(), vec![vec![1.0, 2.0]], vec![1.0]).is_err());
        assert!(TopicModel::from_rows(v.clone(), vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(TopicModel::from_rows(v.clone(), vec![vec![0.0]], vec![1.0]).is_err());
        assert!(TopicModel::from_rows(v, vec![vec![2.0]], vec![1.0]).is_ok()); // normalized
    }

    #[test]
    fn rows_are_normalized() {
        let m = small_model();
        for z in 0..2 {
            let sum: f64 = (0..5).map(|w| m.p_word_given_topic(KeywordId(w), z)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inference_matches_hand_computation() {
        let m = small_model();
        let db = m.vocab().get("database").unwrap();
        let gamma = m.infer(&[db]).unwrap();
        // p(z0|db) = 0.5*0.4 / (0.5*0.4 + 0.5*~0) ≈ 1
        assert!(gamma[0] > 0.99);

        let generic = m.vocab().get("generic").unwrap();
        let gamma = m.infer(&[generic]).unwrap();
        assert!((gamma[0] - 0.5).abs() < 1e-9, "shared word splits evenly");
    }

    #[test]
    fn multi_keyword_inference_sharpens() {
        let m = small_model();
        let idx = m.vocab().get("index").unwrap();
        let db = m.vocab().get("database").unwrap();
        let single = m.infer(&[idx]).unwrap();
        let double = m.infer(&[idx, db]).unwrap();
        assert!(double[0] > single[0], "two db words sharper than one");
        assert!(double.entropy() < single.entropy());
    }

    #[test]
    fn inference_is_order_insensitive() {
        let m = small_model();
        let a = m.vocab().get("index").unwrap();
        let b = m.vocab().get("learning").unwrap();
        let g1 = m.infer(&[a, b]).unwrap();
        let g2 = m.infer(&[b, a]).unwrap();
        for z in 0..2 {
            assert!((g1[z] - g2[z]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_prob_word_dampens_but_not_annihilates() {
        let m = small_model();
        let neural = m.vocab().get("neural").unwrap();
        let db = m.vocab().get("database").unwrap();
        // "neural" has p=0 under topic 0, "database" p=0 under topic 1:
        // smoothing keeps the posterior finite.
        let gamma = m.infer(&[neural, db]).unwrap();
        assert!(gamma[0].is_finite() && gamma[1].is_finite());
        let s: f64 = gamma.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_unknown_keywords_error() {
        let m = small_model();
        assert!(matches!(m.infer(&[]), Err(TopicError::EmptyKeywordSet)));
        assert!(matches!(
            m.infer(&[KeywordId(99)]),
            Err(TopicError::UnknownKeyword(99))
        ));
    }

    #[test]
    fn infer_str_ignores_unknown_words() {
        let m = small_model();
        let g = m.infer_str("database qwerty").unwrap();
        assert!(g[0] > 0.99);
        assert!(m.infer_str("qwerty asdf").is_err());
    }

    #[test]
    fn top_keywords_ranked() {
        let m = small_model();
        let top = m.top_keywords(0, 2);
        assert_eq!(m.vocab().word(top[0].0).unwrap(), "database");
        assert_eq!(m.vocab().word(top[1].0).unwrap(), "index");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn keywords_dominated_by_topic() {
        let m = small_model();
        let dom0 = m.keywords_dominated_by(0);
        let words: Vec<_> = dom0
            .iter()
            .map(|&(w, _)| m.vocab().word(w).unwrap())
            .collect();
        assert!(words.contains(&"database"));
        assert!(words.contains(&"index"));
        assert!(!words.contains(&"neural"));
    }

    #[test]
    fn labels_and_marginals() {
        let m = small_model()
            .with_labels(vec!["DB".into(), "ML".into()])
            .unwrap();
        assert_eq!(m.label(0), "DB");
        assert_eq!(m.label(5), "topic-5");
        let w = m.vocab().get("generic").unwrap();
        assert!((m.keyword_marginal(w) - 0.2).abs() < 1e-12);
        assert!(small_model().with_labels(vec!["x".into()]).is_err());
    }

    #[test]
    fn skewed_prior_shifts_posterior() {
        let mut v = Vocabulary::new();
        v.intern("shared");
        let m = TopicModel::from_rows(v, vec![vec![1.0], vec![1.0]], vec![0.9, 0.1]).unwrap();
        let g = m.infer(&[KeywordId(0)]).unwrap();
        assert!((g[0] - 0.9).abs() < 1e-9);
    }
}
