//! Validated topic distributions (`γ` vectors on the `Z`-simplex).

use crate::error::TopicError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::ops::{Deref, Index};

/// A point on the probability simplex over `Z` topics — the paper's item
/// distribution `γ = {γ₁ … γ_Z}` (§II-B).
///
/// Invariants enforced at construction: every entry is finite and
/// non-negative, and entries sum to 1 within `1e-6` (after which the vector
/// is renormalized exactly). `TopicDistribution` derefs to `[f64]` so it can
/// be passed straight to [`octopus_graph::TopicGraph::edge_prob`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicDistribution(Vec<f64>);

impl TopicDistribution {
    /// Build from a vector that must already be (approximately) normalized.
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(TopicError::NotADistribution {
                reason: "empty vector".into(),
            });
        }
        let mut sum = 0.0;
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(TopicError::NotADistribution {
                    reason: format!("entry {p} is negative or non-finite"),
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(TopicError::NotADistribution {
                reason: format!("entries sum to {sum}, expected 1"),
            });
        }
        let mut d = TopicDistribution(probs);
        d.renormalize(sum);
        Ok(d)
    }

    /// Build from arbitrary non-negative weights by normalizing them.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(TopicError::NotADistribution {
                reason: "empty vector".into(),
            });
        }
        let mut sum = 0.0;
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(TopicError::NotADistribution {
                    reason: format!("weight {w} is negative or non-finite"),
                });
            }
            sum += w;
        }
        if sum <= 0.0 {
            return Err(TopicError::NotADistribution {
                reason: "all weights are zero".into(),
            });
        }
        let mut d = TopicDistribution(weights);
        d.renormalize(sum);
        Ok(d)
    }

    /// Build from entries that are **already exactly normalized** — the
    /// codec path. Validates like [`TopicDistribution::new`] but skips the
    /// final renormalization division, so values decoded from a binary
    /// payload reconstruct **bit-identically** (renormalizing a stored
    /// vector whose sum is 1±1ulp would drift every entry by an ulp and
    /// break artifact-cache determinism).
    pub fn from_normalized(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(TopicError::NotADistribution {
                reason: "empty vector".into(),
            });
        }
        let mut sum = 0.0;
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(TopicError::NotADistribution {
                    reason: format!("entry {p} is negative or non-finite"),
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(TopicError::NotADistribution {
                reason: format!("entries sum to {sum}, expected 1"),
            });
        }
        Ok(TopicDistribution(probs))
    }

    fn renormalize(&mut self, sum: f64) {
        for p in &mut self.0 {
            *p /= sum;
        }
    }

    /// The uniform distribution over `z` topics.
    pub fn uniform(z: usize) -> Self {
        assert!(z > 0, "need at least one topic");
        TopicDistribution(vec![1.0 / z as f64; z])
    }

    /// The pure (corner) distribution with all mass on `topic`.
    pub fn pure(z: usize, topic: usize) -> Self {
        assert!(topic < z, "topic out of range");
        let mut v = vec![0.0; z];
        v[topic] = 1.0;
        TopicDistribution(v)
    }

    /// Number of topics.
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.0.len()
    }

    /// Underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.0
    }

    /// The topic with the largest mass (ties → lowest id).
    pub fn dominant_topic(&self) -> usize {
        let mut best = 0;
        for (i, &p) in self.0.iter().enumerate() {
            if p > self.0[best] {
                best = i;
            }
        }
        best
    }

    /// Shannon entropy in nats. Zero for pure distributions; `ln Z` for the
    /// uniform one. Used as the topic-consistency measure of keyword sets.
    pub fn entropy(&self) -> f64 {
        self.0
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }

    /// L1 distance to another distribution of the same dimension.
    ///
    /// This is the metric the topic-sample KIM algorithm uses to find the
    /// nearest precomputed sample (spread is Lipschitz in `γ` under L1).
    pub fn l1_distance(&self, other: &TopicDistribution) -> f64 {
        assert_eq!(self.num_topics(), other.num_topics(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Cosine similarity to another distribution (1 for identical rays).
    pub fn cosine(&self, other: &TopicDistribution) -> f64 {
        assert_eq!(self.num_topics(), other.num_topics(), "dimension mismatch");
        let dot: f64 = self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum();
        let na: f64 = self.0.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nb: f64 = other.0.iter().map(|b| b * b).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Convex mixture `a·self + (1-a)·other` — stays on the simplex.
    pub fn mix(&self, other: &TopicDistribution, a: f64) -> TopicDistribution {
        assert_eq!(self.num_topics(), other.num_topics(), "dimension mismatch");
        assert!((0.0..=1.0).contains(&a), "mixing weight must be in [0,1]");
        TopicDistribution(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(x, y)| a * x + (1.0 - a) * y)
                .collect(),
        )
    }

    /// Topics carrying at least `threshold` mass, sorted by descending mass.
    pub fn support(&self, threshold: f64) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .0
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, p)| p >= threshold)
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }
}

impl Deref for TopicDistribution {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl Index<usize> for TopicDistribution {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl AsRef<[f64]> for TopicDistribution {
    #[inline]
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(TopicDistribution::new(vec![]).is_err());
        assert!(TopicDistribution::new(vec![0.5, 0.6]).is_err());
        assert!(TopicDistribution::new(vec![-0.1, 1.1]).is_err());
        assert!(TopicDistribution::new(vec![f64::NAN, 1.0]).is_err());
        assert!(TopicDistribution::new(vec![0.25, 0.75]).is_ok());
    }

    #[test]
    fn from_weights_normalizes() {
        let d = TopicDistribution::from_weights(vec![1.0, 3.0]).unwrap();
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.75).abs() < 1e-12);
        assert!(TopicDistribution::from_weights(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn uniform_and_pure() {
        let u = TopicDistribution::uniform(4);
        assert!((u[2] - 0.25).abs() < 1e-12);
        let p = TopicDistribution::pure(3, 1);
        assert_eq!(p.as_slice(), &[0.0, 1.0, 0.0]);
        assert_eq!(p.dominant_topic(), 1);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(TopicDistribution::pure(5, 0).entropy(), 0.0);
        let u = TopicDistribution::uniform(8);
        assert!((u.entropy() - (8f64).ln()).abs() < 1e-12);
        // entropy is maximized by uniform
        let d = TopicDistribution::new(vec![0.7, 0.1, 0.1, 0.1]).unwrap();
        assert!(d.entropy() < TopicDistribution::uniform(4).entropy());
    }

    #[test]
    fn distances() {
        let a = TopicDistribution::pure(2, 0);
        let b = TopicDistribution::pure(2, 1);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12);
        assert!(a.cosine(&b).abs() < 1e-12);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    fn mix_stays_on_simplex() {
        let a = TopicDistribution::pure(3, 0);
        let b = TopicDistribution::uniform(3);
        let m = a.mix(&b, 0.5);
        let s: f64 = m.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((m[0] - (0.5 + 0.5 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn support_sorted() {
        let d = TopicDistribution::new(vec![0.1, 0.6, 0.05, 0.25]).unwrap();
        let s = d.support(0.1);
        assert_eq!(s.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1, 3, 0]);
    }

    #[test]
    fn near_normalized_inputs_are_snapped() {
        let d = TopicDistribution::new(vec![0.5000001, 0.4999999]).unwrap();
        let s: f64 = d.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn l1_dimension_mismatch_panics() {
        let a = TopicDistribution::uniform(2);
        let b = TopicDistribution::uniform(3);
        let _ = a.l1_distance(&b);
    }
}
