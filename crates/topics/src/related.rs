//! Related-keyword discovery.
//!
//! The OCTOPUS UI suggests keywords as the user types (Scenario 2 shows a
//! pool of suggestions per researcher). Beyond per-user pools, the natural
//! model-level notion is *topical relatedness*: two keywords are related
//! when their topic posteriors `p(z|w)` point the same way. This module
//! ranks neighbors by posterior cosine, weighted by salience (`p(w|z)` mass)
//! so that rare-but-on-topic words do not dominate.

use crate::model::TopicModel;
use crate::vocab::KeywordId;
use crate::Result;

/// One related keyword with its relatedness score.
#[derive(Debug, Clone, PartialEq)]
pub struct Related {
    /// The related keyword.
    pub keyword: KeywordId,
    /// Cosine of the topic posteriors, damped by salience (`∈ [0, 1]`).
    pub score: f64,
}

/// The `k` keywords most related to `w` (excluding `w` itself).
///
/// `score(w') = cos(p(z|w), p(z|w')) · salience(w')` where salience is
/// `p(w'|ẑ)` normalized by the topic's top keyword — so generic low-mass
/// words rank below the topic's signature terms.
pub fn related_keywords(model: &TopicModel, w: KeywordId, k: usize) -> Result<Vec<Related>> {
    let anchor = model.keyword_topics(w)?;
    let zstar = anchor.dominant_topic();
    let top_mass = model
        .top_keywords(zstar, 1)
        .first()
        .map(|&(_, p)| p)
        .unwrap_or(1.0)
        .max(1e-12);
    let mut out: Vec<Related> = Vec::new();
    for (cand, _) in model.vocab().iter() {
        if cand == w {
            continue;
        }
        let post = model.keyword_topics(cand)?;
        let cos = anchor.cosine(&post);
        let salience = (model.p_word_given_topic(cand, zstar) / top_mass).min(1.0);
        out.push(Related {
            keyword: cand,
            score: cos * salience,
        });
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.keyword.cmp(&b.keyword))
    });
    out.truncate(k);
    Ok(out)
}

/// Expand a query keyword set with its most related terms (deduplicated,
/// original keywords first) — "did you also mean" support for the UI.
pub fn expand_query(model: &TopicModel, ws: &[KeywordId], extra: usize) -> Result<Vec<KeywordId>> {
    let mut result: Vec<KeywordId> = ws.to_vec();
    let mut candidates: Vec<Related> = Vec::new();
    for &w in ws {
        candidates.extend(related_keywords(model, w, extra + ws.len())?);
    }
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.keyword.cmp(&b.keyword))
    });
    for c in candidates {
        if result.len() >= ws.len() + extra {
            break;
        }
        if !result.contains(&c.keyword) {
            result.push(c.keyword);
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn model() -> TopicModel {
        let mut v = Vocabulary::new();
        v.intern("sql"); // w0: db signature
        v.intern("btree"); // w1: db
        v.intern("join"); // w2: db, lower mass
        v.intern("neuron"); // w3: ml
        v.intern("tensor"); // w4: ml
        TopicModel::from_rows(
            v,
            vec![vec![0.5, 0.3, 0.2, 0.0, 0.0], vec![0.0, 0.0, 0.0, 0.6, 0.4]],
            vec![0.5, 0.5],
        )
        .unwrap()
    }

    fn word(m: &TopicModel, id: KeywordId) -> String {
        m.vocab().word(id).unwrap().to_string()
    }

    #[test]
    fn related_stays_in_topic() {
        let m = model();
        let sql = m.vocab().get("sql").unwrap();
        let rel = related_keywords(&m, sql, 2).unwrap();
        let names: Vec<String> = rel.iter().map(|r| word(&m, r.keyword)).collect();
        assert_eq!(names, vec!["btree", "join"], "db words relate to db words");
        assert!(
            rel[0].score > rel[1].score,
            "higher-mass neighbor ranks first"
        );
    }

    #[test]
    fn cross_topic_words_score_near_zero() {
        let m = model();
        let sql = m.vocab().get("sql").unwrap();
        let rel = related_keywords(&m, sql, 10).unwrap();
        let neuron_score = rel
            .iter()
            .find(|r| word(&m, r.keyword) == "neuron")
            .map(|r| r.score)
            .unwrap();
        assert!(
            neuron_score < 1e-6,
            "orthogonal topics ⇒ ~0 score, got {neuron_score}"
        );
    }

    #[test]
    fn expand_query_appends_related_without_duplicates() {
        let m = model();
        let sql = m.vocab().get("sql").unwrap();
        let btree = m.vocab().get("btree").unwrap();
        let expanded = expand_query(&m, &[sql, btree], 1).unwrap();
        assert_eq!(expanded.len(), 3);
        assert_eq!(expanded[0], sql);
        assert_eq!(expanded[1], btree);
        assert_eq!(word(&m, expanded[2]), "join");
    }

    #[test]
    fn unknown_keyword_errors() {
        let m = model();
        assert!(related_keywords(&m, KeywordId(99), 3).is_err());
    }

    #[test]
    fn k_zero_is_empty() {
        let m = model();
        let sql = m.vocab().get("sql").unwrap();
        assert!(related_keywords(&m, sql, 0).unwrap().is_empty());
    }
}
