//! Property tests for the topic layer: simplex invariants, Bayes-rule laws,
//! and consistency-score bounds.

use octopus_topics::{consistency, dist::TopicDistribution, KeywordId, TopicModel, Vocabulary};
use proptest::prelude::*;

/// Strategy: a random topic model with V words and Z topics.
fn arb_model() -> impl Strategy<Value = TopicModel> {
    (2usize..6, 2usize..8).prop_flat_map(|(z, v)| {
        let rows = proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, v), z);
        let prior = proptest::collection::vec(0.01f64..1.0, z);
        (rows, prior).prop_map(move |(rows, prior)| {
            let mut vocab = Vocabulary::new();
            for i in 0..v {
                vocab.intern(&format!("word{i}"));
            }
            TopicModel::from_rows(vocab, rows, prior).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inference always yields a valid simplex point.
    #[test]
    fn inference_on_simplex(model in arb_model(), picks in proptest::collection::vec(0usize..6, 1..4)) {
        let ws: Vec<KeywordId> = picks
            .iter()
            .map(|&i| KeywordId((i % model.vocab_size()) as u32))
            .collect();
        let gamma = model.infer(&ws).unwrap();
        let s: f64 = gamma.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        prop_assert!(gamma.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Single-keyword inference is exactly `p(z|w) ∝ p(w|z)p(z)`.
    #[test]
    fn single_keyword_bayes_rule(model in arb_model(), wi in 0usize..6) {
        let w = KeywordId((wi % model.vocab_size()) as u32);
        let gamma = model.infer(&[w]).unwrap();
        let z_count = model.num_topics();
        let mut expect: Vec<f64> =
            (0..z_count).map(|z| model.p_word_given_topic(w, z) * model.topic_prior(z)).collect();
        let s: f64 = expect.iter().sum();
        for e in expect.iter_mut() { *e /= s; }
        for z in 0..z_count {
            prop_assert!((gamma[z] - expect[z]).abs() < 1e-6,
                "z={z}: got {}, expected {}", gamma[z], expect[z]);
        }
    }

    /// Repeating a keyword monotonically shifts posterior mass toward the
    /// topic(s) maximizing `p(w|z)` (entropy itself is *not* monotone when
    /// the prior disagrees with the likelihood, so we assert the correct
    /// law: mass on the argmax topic never decreases with repetitions).
    #[test]
    fn repetition_concentrates_on_likelihood_argmax(
        model in arb_model(), wi in 0usize..6, k in 1usize..4,
    ) {
        let w = KeywordId((wi % model.vocab_size()) as u32);
        let zstar = (0..model.num_topics())
            .max_by(|&a, &b| {
                model.p_word_given_topic(w, a)
                    .partial_cmp(&model.p_word_given_topic(w, b))
                    .unwrap()
            })
            .unwrap();
        let once = model.infer(&vec![w; k]).unwrap();
        let more = model.infer(&vec![w; k + 1]).unwrap();
        prop_assert!(more[zstar] >= once[zstar] - 1e-9);
    }

    /// Keyword marginals sum to 1 across the vocabulary.
    #[test]
    fn marginals_sum_to_one(model in arb_model()) {
        let total: f64 = (0..model.vocab_size())
            .map(|w| model.keyword_marginal(KeywordId(w as u32)))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Consistency scores stay in [0, 1].
    #[test]
    fn consistency_bounds(model in arb_model(), picks in proptest::collection::vec(0usize..6, 1..5)) {
        let ws: Vec<KeywordId> = picks
            .iter()
            .map(|&i| KeywordId((i % model.vocab_size()) as u32))
            .collect();
        let pc = consistency::posterior_consistency(&model, &ws).unwrap();
        let pw = consistency::pairwise_consistency(&model, &ws).unwrap();
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&pc), "posterior {pc}");
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&pw), "pairwise {pw}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// TopicDistribution::from_weights always normalizes; mix stays on the
    /// simplex; l1/cosine satisfy metric-ish sanity bounds.
    #[test]
    fn distribution_ops(
        w1 in proptest::collection::vec(0.001f64..10.0, 2..8),
        a in 0.0f64..=1.0,
    ) {
        let z = w1.len();
        let d1 = TopicDistribution::from_weights(w1).unwrap();
        let d2 = TopicDistribution::uniform(z);
        let m = d1.mix(&d2, a);
        let s: f64 = m.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        let l1 = d1.l1_distance(&d2);
        prop_assert!((0.0..=2.0 + 1e-9).contains(&l1));
        let cos = d1.cosine(&d2);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&cos));
        prop_assert!(d1.entropy() <= (z as f64).ln() + 1e-9);
        // mixing toward d2 never increases l1 distance to d2
        prop_assert!(m.l1_distance(&d2) <= l1 + 1e-9);
    }
}
