//! Epoch-swap correctness of the serving layer (`octopus_core::serve`).
//!
//! The contract under test: readers racing a swap observe exactly the old
//! or the new epoch (never a blend, never an error), every epoch answers
//! bit-identically to a fresh engine built from that epoch's graph, a
//! coalesced delta batch is equivalent to applying its deltas one by one,
//! and a failing batch leaves the old epoch serving. CI runs this suite
//! at `RAYON_NUM_THREADS` 1 and 8 and repeats it in the serving soak job,
//! mirroring the executor flakiness sweep.

use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::serve::{OctopusService, Operator};
use octopus_graph::delta::GraphDelta;
use octopus_graph::{EdgeId, GraphBuilder, NodeId, TopicGraph};
use octopus_topics::{TopicModel, Vocabulary};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

/// Small two-topic network, cheap enough to rebuild several times per
/// test: two hubs with followers plus a few cross links so nudges and
/// removals have something to bite on.
fn fixture() -> (TopicGraph, TopicModel, OctopusConfig) {
    let mut b = GraphBuilder::new(2);
    let han = b.add_node("jiawei han");
    let jordan = b.add_node("michael jordan");
    for i in 0..5 {
        let v = b.add_node(format!("db-follower-{i}"));
        b.add_edge(han, v, &[(0, 0.7)]).unwrap();
    }
    for i in 0..4 {
        let v = b.add_node(format!("ml-follower-{i}"));
        b.add_edge(jordan, v, &[(1, 0.7)]).unwrap();
    }
    b.add_edge(han, jordan, &[(0, 0.3), (1, 0.1)]).unwrap();
    let g = b.build().unwrap();
    let mut vocab = Vocabulary::new();
    vocab.intern("data mining");
    vocab.intern("frequent patterns");
    vocab.intern("em algorithm");
    vocab.intern("graphical models");
    let model = TopicModel::from_rows(
        vocab,
        vec![vec![0.5, 0.4, 0.05, 0.05], vec![0.05, 0.05, 0.5, 0.4]],
        vec![0.5, 0.5],
    )
    .unwrap()
    .with_labels(vec!["databases".into(), "machine learning".into()])
    .unwrap();
    let config = OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 96,
        mis_rr_per_topic: 400,
        k_max: 3,
        ..Default::default()
    };
    (g, model, config)
}

/// The bitwise signature of one engine's answers to a fixed probe set —
/// two engines with equal signatures answered every probe identically.
#[derive(Debug, Clone, PartialEq)]
struct ProbeSignature {
    seeds: Vec<NodeId>,
    spread: f64,
    suggest_words: Vec<String>,
    suggest_spread: f64,
    completions: Vec<(NodeId, String, f64)>,
    path_reached: usize,
}

fn probe(engine: &Octopus) -> ProbeSignature {
    let kim = engine.find_influencers("data mining", 2).unwrap();
    let sugg = engine.suggest_keywords("jiawei han", 2).unwrap();
    let paths = engine
        .explore_paths(
            "jiawei han",
            octopus_core::paths::ExploreDirection::Influences,
            Some("data mining"),
        )
        .unwrap();
    ProbeSignature {
        seeds: kim.seeds.iter().map(|s| s.node).collect(),
        spread: kim.result.spread,
        suggest_words: sugg.words,
        suggest_spread: sugg.result.spread,
        completions: engine.autocomplete("db-", 10),
        path_reached: paths.reached,
    }
}

/// Probe through a serve session, also returning the epochs that served.
fn probe_session(service: &OctopusService) -> (ProbeSignature, Vec<u64>) {
    let mut session = service.session();
    let kim = session.find_influencers("data mining", 2).unwrap();
    let sugg = session.suggest_keywords("jiawei han", 2).unwrap();
    let paths = session
        .explore_paths(
            "jiawei han",
            octopus_core::paths::ExploreDirection::Influences,
            Some("data mining"),
        )
        .unwrap();
    let comp = session.autocomplete("db-", 10);
    let epochs = vec![kim.epoch, sugg.epoch, paths.epoch, comp.epoch];
    (
        ProbeSignature {
            seeds: kim.value.seeds.iter().map(|s| s.node).collect(),
            spread: kim.value.result.spread,
            suggest_words: sugg.value.words,
            suggest_spread: sugg.value.result.spread,
            completions: comp.value,
            path_reached: paths.value.reached,
        },
        epochs,
    )
}

#[test]
fn epoch_zero_matches_a_fresh_engine() {
    let (g, model, config) = fixture();
    let fresh = Octopus::new(g.clone(), model.clone(), config.clone()).unwrap();
    let service = OctopusService::new(Octopus::new(g, model, config).unwrap());
    let (sig, epochs) = probe_session(&service);
    assert_eq!(sig, probe(&fresh));
    assert!(epochs.iter().all(|&e| e == 0), "all served by epoch 0");
    let stats = service.stats();
    assert_eq!(stats.current_epoch, 0);
    assert_eq!(stats.epochs_swapped, 0);
    assert_eq!(stats.queries_served, 4);
}

#[test]
fn swapped_epochs_answer_bit_identically_to_fresh_engines() {
    let (g0, model, config) = fixture();
    let service =
        OctopusService::new(Octopus::new(g0.clone(), model.clone(), config.clone()).unwrap());

    // pre-swap answers match a fresh engine on g0
    let (before, _) = probe_session(&service);
    assert_eq!(
        before,
        probe(&Octopus::new(g0.clone(), model.clone(), config.clone()).unwrap())
    );

    // swap: nudge two edges and rename a follower
    let batch = vec![
        GraphDelta::NudgeWeights {
            edges: vec![EdgeId(0), EdgeId(3)],
            delta: 0.1,
        },
        GraphDelta::RenameNode {
            node: NodeId(2),
            name: "db-star".into(),
        },
    ];
    service.submit_all(batch.clone());
    let report = service.apply_pending().unwrap().expect("batch was pending");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.deltas_applied, 2);

    // post-swap answers match a fresh engine on the delta'd graph
    let g1 = octopus_graph::delta::apply_all(&g0, &batch).unwrap();
    let fresh1 = Octopus::new(g1, model, config).unwrap();
    let (after, epochs) = probe_session(&service);
    assert_eq!(after, probe(&fresh1));
    assert!(epochs.iter().all(|&e| e == 1), "all served by epoch 1");
    // the rename is visible through the swapped trie
    assert!(service
        .session()
        .autocomplete("db-star", 1)
        .value
        .iter()
        .any(|(_, name, _)| name == "db-star"));
    assert_eq!(service.stats().epochs_swapped, 1);
}

#[test]
fn coalesced_batch_is_equivalent_to_one_by_one_application() {
    let (g, model, config) = fixture();
    let batch = vec![
        GraphDelta::NudgeWeights {
            edges: vec![EdgeId(1)],
            delta: 0.05,
        },
        GraphDelta::InsertEdge {
            src: NodeId(3),
            dst: NodeId(7),
            probs: vec![(0, 0.4)],
        },
        GraphDelta::RenameNode {
            node: NodeId(4),
            name: "renamed-follower".into(),
        },
    ];

    let coalesced =
        OctopusService::new(Octopus::new(g.clone(), model.clone(), config.clone()).unwrap());
    coalesced.submit_all(batch.clone());
    coalesced.apply_pending().unwrap().expect("pending batch");

    let one_by_one = OctopusService::new(Octopus::new(g, model, config).unwrap());
    for d in batch {
        one_by_one.submit(d);
        one_by_one.apply_pending().unwrap().expect("pending delta");
    }

    // one swap vs three, identical final graphs and answers
    assert_eq!(coalesced.stats().epochs_swapped, 1);
    assert_eq!(one_by_one.stats().epochs_swapped, 3);
    assert_eq!(coalesced.stats().deltas_applied, 3);
    assert_eq!(one_by_one.stats().deltas_applied, 3);
    assert_eq!(
        coalesced.snapshot().engine().graph(),
        one_by_one.snapshot().engine().graph()
    );
    assert_eq!(probe_session(&coalesced).0, probe_session(&one_by_one).0);
}

#[test]
fn failed_batch_keeps_the_old_epoch_serving() {
    let (g, model, config) = fixture();
    let service = OctopusService::new(Octopus::new(g, model, config).unwrap());
    let (before, _) = probe_session(&service);

    service.submit_all(vec![
        GraphDelta::RenameNode {
            node: NodeId(2),
            name: "would-have-applied".into(),
        },
        GraphDelta::RemoveEdge { edge: EdgeId(9999) },
    ]);
    assert!(service.apply_pending().is_err(), "bad batch must fail");

    let stats = service.stats();
    assert_eq!(stats.current_epoch, 0, "old epoch keeps serving");
    assert_eq!(stats.epochs_swapped, 0);
    assert_eq!(stats.batches_failed, 1);
    assert_eq!(
        stats.pending_deltas, 2,
        "the failed batch is re-queued for retry, not lost"
    );
    // answers unchanged — the partial rename never leaked
    assert_eq!(probe_session(&service).0, before);

    // a deterministically bad batch fails every retry and is dropped
    // after MAX_BATCH_RETRIES consecutive attempts, surfacing as a
    // terminal failure — it never wedges the queue head forever
    for attempt in 2..=octopus_core::serve::MAX_BATCH_RETRIES {
        assert!(
            service.apply_pending().is_err(),
            "retry {attempt} must fail too"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.batches_failed, octopus_core::serve::MAX_BATCH_RETRIES);
    assert_eq!(stats.terminal_failures, 1, "the batch was dropped for good");
    assert_eq!(stats.pending_deltas, 0);

    // and the service still accepts good batches afterwards
    service.submit(GraphDelta::NudgeWeights {
        edges: vec![EdgeId(0)],
        delta: 0.05,
    });
    assert!(service.apply_pending().unwrap().is_some());
    assert_eq!(service.stats().current_epoch, 1);
}

#[test]
fn transiently_failing_batch_is_eventually_applied() {
    let (g, model, config) = fixture();
    let service =
        OctopusService::new(Octopus::new(g.clone(), model.clone(), config.clone()).unwrap());
    let batch = vec![GraphDelta::RenameNode {
        node: NodeId(2),
        name: "survived-the-outage".into(),
    }];
    service.submit_all(batch.clone());

    // two transient rebuild failures (an unwritable cache volume, say):
    // each failed flush re-queues the batch at the front
    service.fail_next_rebuilds(2);
    for attempt in 1..=2 {
        assert!(service.apply_pending().is_err(), "attempt {attempt} fails");
        let stats = service.stats();
        assert_eq!(stats.pending_deltas, 1, "the batch stays queued");
        assert_eq!(stats.terminal_failures, 0);
        assert_eq!(stats.current_epoch, 0);
    }

    // deltas submitted during the outage queue BEHIND the re-queued
    // batch, preserving submission order
    service.submit(GraphDelta::NudgeWeights {
        edges: vec![EdgeId(0)],
        delta: 0.05,
    });

    // the outage ends: the third attempt applies the whole queue
    let report = service.apply_pending().unwrap().expect("pending deltas");
    assert_eq!(report.deltas_applied, 2, "retried batch + later delta");
    let stats = service.stats();
    assert_eq!(stats.current_epoch, 1);
    assert_eq!(stats.batches_failed, 2);
    assert_eq!(stats.terminal_failures, 0);
    assert_eq!(stats.deltas_applied, 2);
    assert_eq!(stats.pending_deltas, 0);

    // the transiently failing batch really landed — and the final graph
    // is exactly base + rename + nudge
    assert!(service
        .session()
        .autocomplete("survived", 1)
        .value
        .iter()
        .any(|(_, name, _)| name == "survived-the-outage"));
    let expected = octopus_graph::delta::apply_all(
        &g,
        &[
            batch[0].clone(),
            GraphDelta::NudgeWeights {
                edges: vec![EdgeId(0)],
                delta: 0.05,
            },
        ],
    )
    .unwrap();
    assert_eq!(service.snapshot().engine().graph(), &expected);
}

#[test]
fn flush_with_empty_queue_is_a_no_op() {
    let (g, model, config) = fixture();
    let service = OctopusService::new(Octopus::new(g, model, config).unwrap());
    assert!(service.apply_pending().unwrap().is_none());
    assert_eq!(service.stats().epochs_swapped, 0);
}

#[test]
fn rebuild_through_cache_dir_reuses_unaffected_stages() {
    let (g, model, config) = fixture();
    let dir = std::env::temp_dir().join(format!("octopus-serve-reuse-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // epoch 0 built through the cache so its artifacts are on disk
    let engine = Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir).unwrap();
    let service = OctopusService::with_cache_dir(engine, &dir);

    // a rename invalidates only the name-reading stages
    service.submit(GraphDelta::RenameNode {
        node: NodeId(0),
        name: "renamed-hub".into(),
    });
    let report = service.apply_pending().unwrap().expect("pending delta");
    let reused: Vec<&str> = report
        .stage_reuse
        .iter()
        .filter(|s| s.is_full())
        .map(|s| s.stage)
        .collect();
    for stage in ["spread-cap", "mis-tables", "piks-worlds"] {
        assert!(
            reused.contains(&stage),
            "a rename must not rebuild {stage}: reused {reused:?}"
        );
    }
    assert!(
        !reused.contains(&"autocomplete"),
        "the trie reads names and must rebuild"
    );
    // the incrementally rebuilt epoch still answers like a fresh engine
    let g1 = octopus_graph::delta::apply_all(
        &g,
        &[GraphDelta::RenameNode {
            node: NodeId(0),
            name: "renamed-hub".into(),
        }],
    )
    .unwrap();
    let fresh = Octopus::new(g1.clone(), model.clone(), config.clone()).unwrap();
    let a = service
        .session()
        .find_influencers("data mining", 2)
        .unwrap();
    let b = fresh.find_influencers("data mining", 2).unwrap();
    assert_eq!(
        a.value.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
        b.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
    );
    assert_eq!(a.value.result.spread, b.result.spread);

    // a topic-1-confined nudge (jordan → ml-follower-0 carries only a
    // topic-1 entry): the swap report's weight stages show the per-topic
    // split — topic 0's cap/MIS units reused, topic 1's rebuilt
    let nudge = GraphDelta::NudgeWeights {
        edges: vec![g1.find_edge(NodeId(1), NodeId(7)).unwrap()],
        delta: 0.05,
    };
    assert_eq!(
        nudge
            .touched_topics(&g1)
            .unwrap()
            .into_iter()
            .collect::<Vec<_>>(),
        vec![1],
        "the nudged edge must be topic-1-confined"
    );
    service.submit(nudge.clone());
    let report = service.apply_pending().unwrap().expect("pending nudge");
    for stage in ["spread-cap", "mis-tables"] {
        let s = report
            .stage_reuse
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("stage {stage} missing from swap report"));
        assert_eq!(
            (s.reused, s.total),
            (1, 2),
            "a topic-confined nudge must reuse the untouched topic's {stage} unit: {s:?}"
        );
    }
    assert!(
        report
            .stage_reuse
            .iter()
            .any(|s| s.stage == "autocomplete" && s.is_full()),
        "a nudge never rebuilds the trie"
    );
    // and the per-topic partial rebuild still answers like a fresh engine
    let g2 = nudge.apply(&g1).unwrap();
    let fresh = Octopus::new(g2, model, config).unwrap();
    let a = service
        .session()
        .find_influencers("em algorithm", 2)
        .unwrap();
    let b = fresh.find_influencers("em algorithm", 2).unwrap();
    assert_eq!(
        a.value.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
        b.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
    );
    assert_eq!(a.value.result.spread, b.result.spread);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn user_keyword_overrides_survive_the_swap() {
    let (g, model, config) = fixture();
    let mut map = std::collections::HashMap::new();
    map.insert(NodeId(0), vec![octopus_topics::KeywordId(1)]);
    let engine = Octopus::new(g, model, config)
        .unwrap()
        .with_user_keywords(map);
    let service = OctopusService::new(engine);
    let before = service.session().suggest_keywords("jiawei han", 1).unwrap();
    assert_eq!(before.value.words, vec!["frequent patterns"]);

    service.submit(GraphDelta::NudgeWeights {
        edges: vec![EdgeId(0)],
        delta: 0.05,
    });
    service.apply_pending().unwrap().expect("pending delta");
    let after = service.session().suggest_keywords("jiawei han", 1).unwrap();
    assert_eq!(
        after.value.words,
        vec!["frequent patterns"],
        "the override must ride along onto epoch 1"
    );
    assert_eq!(after.epoch, 1);
}

/// The heart of the serving contract: concurrent readers racing epoch
/// swaps observe exactly an old-or-new epoch — every answer matches the
/// reference engine for the epoch id it was stamped with, and no query
/// errors or blocks past the test's own runtime.
#[test]
fn readers_racing_swaps_observe_exactly_old_or_new() {
    const SWAPS: usize = 3;
    const READERS: usize = 4;
    let (g0, model, config) = fixture();

    // the swap sequence and per-epoch reference signatures, precomputed
    let deltas: Vec<GraphDelta> = (0..SWAPS)
        .map(|i| GraphDelta::NudgeWeights {
            edges: vec![EdgeId(i as u32)],
            delta: 0.1,
        })
        .collect();
    let mut graphs = vec![g0.clone()];
    for d in &deltas {
        graphs.push(d.apply(graphs.last().unwrap()).unwrap());
    }
    let references: Vec<ProbeSignature> = graphs
        .iter()
        .map(|g| probe(&Octopus::new(g.clone(), model.clone(), config.clone()).unwrap()))
        .collect();

    let service = OctopusService::new(Octopus::new(g0, model, config).unwrap());
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            readers.push(s.spawn(|| {
                let mut session = service.session();
                let mut checked = 0u64;
                while !done.load(SeqCst) || checked == 0 {
                    let kim = session.find_influencers("data mining", 2).unwrap();
                    let reference = &references[kim.epoch as usize];
                    assert_eq!(
                        kim.value.seeds.iter().map(|x| x.node).collect::<Vec<_>>(),
                        reference.seeds,
                        "epoch {} must answer exactly like its fresh engine",
                        kim.epoch
                    );
                    assert_eq!(kim.value.result.spread, reference.spread);
                    let comp = session.autocomplete("db-", 10);
                    assert_eq!(
                        comp.value, references[comp.epoch as usize].completions,
                        "epoch {} trie must be the epoch's own",
                        comp.epoch
                    );
                    checked += 1;
                }
                checked
            }));
        }
        for d in &deltas {
            // let readers land some queries on the current epoch first
            std::thread::sleep(Duration::from_millis(20));
            service.submit(d.clone());
            service.apply_pending().unwrap().expect("pending delta");
        }
        done.store(true, SeqCst);
        let mut total = 0u64;
        for r in readers {
            total += r.join().expect("no reader may panic or error");
        }
        assert!(total > 0);
    });
    let stats = service.stats();
    assert_eq!(stats.epochs_swapped, SWAPS as u64);
    assert_eq!(stats.current_epoch, SWAPS as u64);
    assert_eq!(stats.batches_failed, 0);
}

#[test]
fn background_rebuilder_applies_submitted_deltas() {
    let (g, model, config) = fixture();
    let service = Arc::new(OctopusService::new(Octopus::new(g, model, config).unwrap()));
    let rebuilder = service.spawn_rebuilder(Duration::from_millis(5));
    service.submit(GraphDelta::RenameNode {
        node: NodeId(2),
        name: "flushed-in-background".into(),
    });
    // poll until the swap lands (bounded)
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while service.current_epoch() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "background rebuilder never flushed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    rebuilder.stop();
    assert_eq!(service.current_epoch(), 1);
    assert!(service
        .session()
        .autocomplete("flushed", 1)
        .value
        .iter()
        .any(|(_, name, _)| name == "flushed-in-background"));
}

#[test]
fn session_stats_track_operators_epochs_and_errors() {
    let (g, model, config) = fixture();
    let service = OctopusService::new(Octopus::new(g, model, config).unwrap());
    let mut session = service.session();
    session.find_influencers("data mining", 2).unwrap();
    assert!(session.find_influencers("quantum blockchain", 2).is_err());
    session.autocomplete("db-", 3);
    assert!(session.keyword_radar("em algorithm").is_ok());

    service.submit(GraphDelta::NudgeWeights {
        edges: vec![EdgeId(0)],
        delta: 0.05,
    });
    service.apply_pending().unwrap().expect("pending delta");
    session.find_influencers("data mining", 2).unwrap();

    let stats = session.stats();
    assert_eq!(stats.op(Operator::FindInfluencers).queries, 3);
    assert_eq!(stats.op(Operator::FindInfluencers).errors, 1);
    assert_eq!(stats.op(Operator::Autocomplete).queries, 1);
    assert_eq!(stats.op(Operator::KeywordRadar).errors, 0);
    assert_eq!(stats.op(Operator::SuggestKeywords).queries, 0);
    assert_eq!(stats.total_queries(), 5);
    assert_eq!(stats.total_errors(), 1);
    assert_eq!(
        stats.epochs_seen,
        Some((0, 1)),
        "the session spanned the swap"
    );
    assert!(stats.op(Operator::FindInfluencers).total_latency > Duration::ZERO);
    // pinned snapshots freeze an epoch regardless of later swaps
    let pin = session.pin();
    service.submit(GraphDelta::NudgeWeights {
        edges: vec![EdgeId(1)],
        delta: 0.05,
    });
    service.apply_pending().unwrap().expect("pending delta");
    assert_eq!(pin.id(), 1, "pin keeps the pre-swap epoch");
    assert_eq!(service.current_epoch(), 2);
    let _ = pin.engine().find_influencers("data mining", 2).unwrap();
    // queries issued while pinned run on (and are stamped from) the pin
    let pinned = session.find_influencers("data mining", 2).unwrap();
    assert_eq!(pinned.epoch, 1, "stamp comes from the snapshot queried");
    session.unpin();
    let live = session.find_influencers("data mining", 2).unwrap();
    assert_eq!(live.epoch, 2, "unpin resumes the current epoch");
}

/// Regression test for the pin/stamp race: the `Served::epoch` stamp must
/// come from the snapshot that actually answered the query, never from
/// the service's moved-on epoch counter. A pinned session racing a swap
/// storm must keep answering from — and stamping — the pinned epoch.
#[test]
fn pinned_session_stamps_the_snapshot_actually_queried() {
    let (g, model, config) = fixture();
    let reference = probe(&Octopus::new(g.clone(), model.clone(), config.clone()).unwrap());
    let service = OctopusService::new(Octopus::new(g, model, config).unwrap());
    let mut session = service.session();
    let pin = session.pin();
    assert_eq!(pin.id(), 0);

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut swaps = 0u32;
            while !done.load(SeqCst) {
                service.submit(GraphDelta::NudgeWeights {
                    edges: vec![EdgeId(swaps % 5)],
                    delta: 0.01,
                });
                service.apply_pending().unwrap().expect("pending delta");
                swaps += 1;
            }
            swaps
        });
        // keep reading until at least one swap has really landed under
        // the pin — a fixed round count can outrun the writer's first
        // rebuild and leave nothing racing
        let mut rounds = 0;
        while rounds < 4 || service.current_epoch() == 0 {
            let kim = session.find_influencers("data mining", 2).unwrap();
            assert_eq!(kim.epoch, 0, "pinned query must stamp the pinned epoch");
            assert_eq!(
                kim.value.seeds.iter().map(|x| x.node).collect::<Vec<_>>(),
                reference.seeds,
                "pinned answers come from the pinned engine, not a swapped one"
            );
            assert_eq!(kim.value.result.spread, reference.spread);
            let comp = session.autocomplete("db-", 10);
            assert_eq!(comp.epoch, 0);
            assert_eq!(comp.value, reference.completions);
            rounds += 1;
        }
        done.store(true, SeqCst);
        let swaps = writer.join().expect("writer must not panic");
        assert!(swaps > 0, "at least one swap raced the pinned reads");
    });

    // releasing the pin resumes the live epoch
    session.unpin();
    let live = session.autocomplete("db-", 10);
    assert_eq!(live.epoch, service.current_epoch());
    assert!(
        live.epoch > 0,
        "swaps really happened during the pin window"
    );
    let stats = session.stats();
    assert_eq!(
        stats.epochs_seen.map(|(first, _)| first),
        Some(0),
        "every pinned query was recorded against epoch 0"
    );
}

#[test]
fn mapped_service_swaps_remap_and_answer_like_fresh_engines() {
    let (g, model, config) = fixture();
    let dir = std::env::temp_dir().join(format!("octopus-serve-mapped-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // epoch 0 itself opens mapped (cold: build + write + remap)
    let engine = Octopus::open_mapped(g.clone(), model.clone(), config.clone(), &dir).unwrap();
    assert!(engine.is_mapped());
    let service = OctopusService::with_mapped_cache(engine, &dir);

    let deltas = vec![
        GraphDelta::NudgeWeights {
            edges: vec![EdgeId(0), EdgeId(3)],
            delta: 0.05,
        },
        GraphDelta::RenameNode {
            node: NodeId(1),
            name: "m. i. jordan".into(),
        },
    ];
    service.submit_all(deltas.clone());
    let report = service.apply_pending().unwrap().expect("pending deltas");
    assert_eq!(report.epoch, 1);
    // the flush wrote the new epoch's artifact and remapped it: the
    // serving engine is in mapped mode, and the weight-blind stages were
    // reused rather than rebuilt
    let snap = service.snapshot();
    assert!(
        snap.engine().is_mapped(),
        "a mapped service must swap in mapped engines"
    );
    assert!(report
        .stage_reuse
        .iter()
        .any(|s| s.stage == "spread-cap" || s.is_full()));

    // the remapped epoch answers bit-identically to a fresh owned engine
    // of the post-delta graph
    let g1 = octopus_graph::delta::apply_all(&g, &deltas).unwrap();
    let fresh = Octopus::new(g1, model, config).unwrap();
    let (served, epochs) = probe_session(&service);
    let reference = probe(&fresh);
    assert_eq!(served, reference, "mapped epoch 1 must answer like fresh");
    assert!(epochs.iter().all(|&e| e == 1));

    // the previous epoch's file may be pruned once nothing maps it, but
    // the *current* epoch's backing file must survive any prune
    let stats = service.stats();
    assert_eq!(stats.epochs_swapped, 1);
    std::fs::remove_dir_all(&dir).ok();
}
