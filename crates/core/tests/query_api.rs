//! Pinning for the unified query surface: one [`Query`] through
//! [`QueryService::execute`] must answer **bit-identically** to the
//! legacy per-operator methods it replaced, on both serving layers.
//!
//! Three contracts:
//!
//! 1. **Unlimited `execute` ≡ legacy exact** — for all five operators,
//!    `execute(query, unlimited)` on [`OctopusService`] matches the raw
//!    engine's exact methods, and on [`ShardedService`] matches its
//!    legacy scatter-gather methods, to the bit (spread compared as
//!    bits; the sharded merge is pinned against the single engine
//!    elsewhere, here we pin the *surface*).
//! 2. **Budgeted `execute` ≡ legacy budgeted** — with a finite sample
//!    budget, `execute` returns exactly what the legacy `_budgeted`
//!    methods return, bound and all (the budgeted paths are
//!    deterministic at fixed budgets, pinned by `tests/anytime.rs`).
//! 3. **The response variant always matches the query's operator**, so
//!    `into_*` unwrapping in the thin legacy wrappers can never panic.

use octopus_core::engine::{Octopus, OctopusConfig};
use octopus_core::paths::ExploreDirection;
use octopus_core::serve::{OctopusService, Query, QueryService, ShardedService};
use octopus_core::QueryBudget;
use octopus_graph::{GraphBuilder, TopicGraph};
use octopus_topics::{TopicModel, Vocabulary};

/// Two hubs plus two structurally identical clusters — enough
/// components that the K = 2 sharded layer exercises its merge paths,
/// with a shared "fan-" prefix so autocomplete union-merges.
fn fixture() -> (TopicGraph, TopicModel, OctopusConfig) {
    let mut b = GraphBuilder::new(2);
    let ada = b.add_node("ada db");
    for i in 0..4 {
        let v = b.add_node(format!("fan-a-{i}"));
        b.add_edge(ada, v, &[(0, 0.8)]).unwrap();
    }
    let bea = b.add_node("bea ml");
    for i in 0..3 {
        let v = b.add_node(format!("fan-b-{i}"));
        b.add_edge(bea, v, &[(1, 0.8)]).unwrap();
    }
    for hub_name in ["cal db", "dot db"] {
        let hub = b.add_node(hub_name);
        let tag = &hub_name[..1];
        let f0 = b.add_node(format!("fan-{tag}-0"));
        let f1 = b.add_node(format!("fan-{tag}-1"));
        b.add_edge(hub, f0, &[(0, 0.6)]).unwrap();
        b.add_edge(hub, f1, &[(0, 0.6)]).unwrap();
        b.add_edge(f0, f1, &[(0, 0.3)]).unwrap();
    }
    let g = b.build().unwrap();
    let mut vocab = Vocabulary::new();
    vocab.intern("data mining");
    vocab.intern("frequent patterns");
    vocab.intern("em algorithm");
    vocab.intern("graphical models");
    let model = TopicModel::from_rows(
        vocab,
        vec![vec![0.5, 0.4, 0.05, 0.05], vec![0.05, 0.05, 0.5, 0.4]],
        vec![0.5, 0.5],
    )
    .unwrap();
    let config = OctopusConfig {
        piks_index_size: 96,
        mis_rr_per_topic: 200,
        k_max: 4,
        ..Default::default()
    };
    (g, model, config)
}

/// The five probe queries, one per operator, all answerable on the
/// fixture.
fn probes() -> Vec<Query> {
    vec![
        Query::FindInfluencers {
            query: "data mining".into(),
            k: 4,
        },
        Query::SuggestKeywords {
            user: "ada db".into(),
            k: 2,
        },
        Query::ExplorePaths {
            user: "cal db".into(),
            direction: ExploreDirection::Influences,
            query: Some("data mining".into()),
        },
        Query::Autocomplete {
            prefix: "fan-".into(),
            limit: 10,
        },
        Query::KeywordRadar {
            word: "data mining".into(),
        },
    ]
}

#[test]
fn unlimited_execute_matches_the_legacy_exact_operators_on_the_single_layer() {
    let (g, model, config) = fixture();
    let engine = Octopus::new(g.clone(), model.clone(), config.clone()).unwrap();
    let service = OctopusService::new(Octopus::new(g, model, config).unwrap());
    let budget = QueryBudget::unlimited();

    let got = service
        .execute(&probes()[0], &budget)
        .unwrap()
        .value
        .into_influencers()
        .unwrap();
    let want = engine.find_influencers("data mining", 4).unwrap();
    assert!(got.bound.exact, "unlimited budgets must run the exact path");
    assert_eq!(got.value.keywords, want.keywords);
    assert_eq!(got.value.seeds, want.seeds);
    assert_eq!(got.value.result.seeds, want.result.seeds);
    assert_eq!(
        got.value.result.spread.to_bits(),
        want.result.spread.to_bits(),
        "the unified surface must not perturb the exact spread"
    );

    let got = service
        .execute(&probes()[1], &budget)
        .unwrap()
        .value
        .into_suggestions()
        .unwrap();
    let want = engine.suggest_keywords("ada db", 2).unwrap();
    assert!(got.bound.exact);
    assert_eq!(got.value.user, want.user);
    assert_eq!(got.value.user_name, want.user_name);
    assert_eq!(got.value.words, want.words);

    let got = service
        .execute(&probes()[2], &budget)
        .unwrap()
        .value
        .into_paths()
        .unwrap();
    let want = engine
        .explore_paths("cal db", ExploreDirection::Influences, Some("data mining"))
        .unwrap();
    assert!(got.bound.exact);
    assert_eq!(got.value.root, want.root);
    assert_eq!(got.value.reached, want.reached);
    assert_eq!(got.value.influence.to_bits(), want.influence.to_bits());
    assert_eq!(got.value.tree, want.tree);
    assert_eq!(got.value.d3_json, want.d3_json);

    let got = service
        .execute(&probes()[3], &budget)
        .unwrap()
        .value
        .into_completions()
        .unwrap();
    assert!(got.bound.exact);
    assert_eq!(got.value, engine.autocomplete("fan-", 10));

    let got = service
        .execute(&probes()[4], &budget)
        .unwrap()
        .value
        .into_radar()
        .unwrap();
    assert!(got.bound.exact);
    assert_eq!(got.value, engine.keyword_radar("data mining").unwrap());
}

#[test]
fn unlimited_execute_matches_the_legacy_operators_on_the_sharded_layer() {
    let (g, model, config) = fixture();
    let sharded = ShardedService::new(g, model, config, 2).unwrap();
    let budget = QueryBudget::unlimited();

    let got = sharded
        .execute(&probes()[0], &budget)
        .unwrap()
        .value
        .into_influencers()
        .unwrap();
    let want = sharded.find_influencers("data mining", 4).unwrap().value;
    assert!(got.bound.exact);
    assert_eq!(got.value.seeds, want.seeds);
    assert_eq!(got.value.result.seeds, want.result.seeds);
    assert_eq!(
        got.value.result.spread.to_bits(),
        want.result.spread.to_bits(),
        "execute must route through the same scatter-gather merge"
    );

    let got = sharded
        .execute(&probes()[1], &budget)
        .unwrap()
        .value
        .into_suggestions()
        .unwrap();
    let want = sharded.suggest_keywords("ada db", 2).unwrap().value;
    assert!(got.bound.exact);
    assert_eq!(got.value.user, want.user);
    assert_eq!(got.value.words, want.words);

    let got = sharded
        .execute(&probes()[2], &budget)
        .unwrap()
        .value
        .into_paths()
        .unwrap();
    let want = sharded
        .explore_paths("cal db", ExploreDirection::Influences, Some("data mining"))
        .unwrap()
        .value;
    assert!(got.bound.exact);
    assert_eq!(got.value.influence.to_bits(), want.influence.to_bits());
    assert_eq!(got.value.d3_json, want.d3_json);

    let got = sharded
        .execute(&probes()[3], &budget)
        .unwrap()
        .value
        .into_completions()
        .unwrap();
    assert!(got.bound.exact);
    assert_eq!(got.value, sharded.autocomplete("fan-", 10).value);

    let got = sharded
        .execute(&probes()[4], &budget)
        .unwrap()
        .value
        .into_radar()
        .unwrap();
    assert!(got.bound.exact);
    assert_eq!(
        got.value,
        sharded.keyword_radar("data mining").unwrap().value
    );
}

#[test]
fn budgeted_execute_matches_the_legacy_budgeted_methods_on_both_layers() {
    let (g, model, config) = fixture();
    let service =
        OctopusService::new(Octopus::new(g.clone(), model.clone(), config.clone()).unwrap());
    let sharded = ShardedService::new(g, model, config, 2).unwrap();
    // small enough to actually degrade the sampled estimators, so this
    // pins the budgeted dispatch, not just the exact fall-through
    let budget = QueryBudget::samples(48);

    // single layer: the session's budgeted wrappers are the legacy API
    let mut session = service.session();
    session.set_budget(budget);
    let got = service
        .execute(&probes()[0], &budget)
        .unwrap()
        .value
        .into_influencers()
        .unwrap();
    let want = session
        .find_influencers_budgeted("data mining", 4)
        .unwrap()
        .value;
    assert_eq!(got.value.seeds, want.value.seeds);
    assert_eq!(
        got.value.result.spread.to_bits(),
        want.value.result.spread.to_bits()
    );
    assert_eq!(got.bound, want.bound, "the certificate must match too");

    let got = service
        .execute(&probes()[4], &budget)
        .unwrap()
        .value
        .into_radar()
        .unwrap();
    let want = session.keyword_radar_budgeted("data mining").unwrap().value;
    assert_eq!(got.value, want.value);
    assert_eq!(got.bound, want.bound);

    // sharded layer: the budgeted scatter-gather methods
    let got = sharded
        .execute(&probes()[0], &budget)
        .unwrap()
        .value
        .into_influencers()
        .unwrap();
    let want = sharded
        .find_influencers_budgeted("data mining", 4, &budget)
        .unwrap()
        .value;
    assert_eq!(got.value.seeds, want.value.seeds);
    assert_eq!(
        got.value.result.spread.to_bits(),
        want.value.result.spread.to_bits()
    );
    assert_eq!(got.bound, want.bound);

    let got = sharded
        .execute(&probes()[2], &budget)
        .unwrap()
        .value
        .into_paths()
        .unwrap();
    let want = sharded
        .explore_paths_budgeted(
            "cal db",
            ExploreDirection::Influences,
            Some("data mining"),
            &budget,
        )
        .unwrap()
        .value;
    assert_eq!(
        got.value.influence.to_bits(),
        want.value.influence.to_bits()
    );
    assert_eq!(got.value.d3_json, want.value.d3_json);
    assert_eq!(got.bound, want.bound);
}

#[test]
fn response_variant_always_matches_the_query_operator() {
    let (g, model, config) = fixture();
    let service = OctopusService::new(Octopus::new(g, model, config).unwrap());
    let budget = QueryBudget::unlimited();
    for query in probes() {
        let served = service.execute(&query, &budget).unwrap();
        assert_eq!(
            served.value.operator(),
            query.operator(),
            "execute must answer with the variant the query names"
        );
    }
}
