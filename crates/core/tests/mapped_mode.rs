//! Mapped-mode equivalence contract: an engine serving zero-copy off a
//! memory-mapped OCTA v5 artifact answers **all five online operators**
//! bit-identically to the owned-mode engine decoding the same file — at
//! 1 and at 8 worker threads, under every engine flavour that exercises a
//! distinct set of mapped sections (per-topic MIS tables, per-topic PB σ̂
//! tables, PIKS worlds, the trie) — and the same holds for an engine whose
//! artifact was **partially rebuilt** after a topic-confined weight nudge
//! (only the nudged topic's cap/PB/MIS sub-sections recomputed).
//!
//! Spreads and scores are compared through `f64::to_bits`, names and seed
//! ranks exactly — "close enough" is not equivalence.

use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::BoundKind;
use octopus_core::paths::ExploreDirection;
use octopus_graph::delta::GraphDelta;
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};
use octopus_topics::{TopicModel, Vocabulary};

/// Two-topic network with named users, hub structure, and a themed
/// vocabulary — big enough that every operator has real work.
fn fixture() -> (TopicGraph, TopicModel) {
    let mut b = GraphBuilder::new(2);
    let han = b.add_node("jiawei han"); // db hub
    let jordan = b.add_node("michael jordan"); // ml hub
    for i in 0..12 {
        let v = b.add_node(format!("db-follower-{i}"));
        b.add_edge(han, v, &[(0, 0.7)]).unwrap();
        if i < 6 {
            let w = b.add_node(format!("db-fan-{i}"));
            b.add_edge(v, w, &[(0, 0.4)]).unwrap();
        }
    }
    for i in 0..9 {
        let v = b.add_node(format!("ml-follower-{i}"));
        b.add_edge(jordan, v, &[(1, 0.7)]).unwrap();
    }
    let g = b.build().unwrap();
    let mut vocab = Vocabulary::new();
    vocab.intern("data mining"); // w0 → t0
    vocab.intern("frequent patterns"); // w1 → t0
    vocab.intern("em algorithm"); // w2 → t1
    vocab.intern("graphical models"); // w3 → t1
    let model = TopicModel::from_rows(
        vocab,
        vec![vec![0.5, 0.4, 0.05, 0.05], vec![0.05, 0.05, 0.5, 0.4]],
        vec![0.5, 0.5],
    )
    .unwrap()
    .with_labels(vec!["databases".into(), "machine learning".into()])
    .unwrap();
    (g, model)
}

fn config(kim: KimEngineChoice) -> OctopusConfig {
    OctopusConfig {
        kim,
        piks_index_size: 600,
        mis_rr_per_topic: 1200,
        k_max: 4,
        seed: 0x4AB5_0C7A,
        ..Default::default()
    }
}

/// Drive all five online operators through both engines and demand
/// bit-identical answers.
fn assert_all_five_operators_identical(owned: &Octopus, mapped: &Octopus, what: &str) {
    assert!(
        !owned.is_mapped() && mapped.is_mapped(),
        "{what}: mode mix-up"
    );

    // 1. find_influencers — seeds, ranks, gamma, and spread to the bit
    for (query, k) in [("data mining", 3), ("em algorithm frequent patterns", 2)] {
        let a = owned.find_influencers(query, k).unwrap();
        let b = mapped.find_influencers(query, k).unwrap();
        assert_eq!(a.keywords, b.keywords, "{what}: {query}: keywords");
        assert_eq!(
            a.gamma
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.gamma
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "{what}: {query}: gamma"
        );
        assert_eq!(
            a.seeds
                .iter()
                .map(|s| (s.node, s.name.clone(), s.rank))
                .collect::<Vec<_>>(),
            b.seeds
                .iter()
                .map(|s| (s.node, s.name.clone(), s.rank))
                .collect::<Vec<_>>(),
            "{what}: {query}: seed sets"
        );
        assert_eq!(
            a.result.spread.to_bits(),
            b.result.spread.to_bits(),
            "{what}: {query}: spread"
        );
    }

    // 2. suggest_keywords — words and PIKS spread to the bit
    for user in ["jiawei han", "michael jordan"] {
        let a = owned.suggest_keywords(user, 2).unwrap();
        let b = mapped.suggest_keywords(user, 2).unwrap();
        assert_eq!(a.user, b.user, "{what}: {user}: resolved node");
        assert_eq!(a.words, b.words, "{what}: {user}: suggested words");
        assert_eq!(
            a.result.spread.to_bits(),
            b.result.spread.to_bits(),
            "{what}: {user}: piks spread"
        );
        assert_eq!(
            a.radar
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.radar
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "{what}: {user}: suggestion radar"
        );
    }

    // 3. explore_paths — whole rendered tree (captures every path weight)
    for dir in [ExploreDirection::Influences, ExploreDirection::InfluencedBy] {
        let a = owned
            .explore_paths("jiawei han", dir, Some("data mining"))
            .unwrap();
        let b = mapped
            .explore_paths("jiawei han", dir, Some("data mining"))
            .unwrap();
        assert_eq!(a.reached, b.reached, "{what}: {dir:?}: tree size");
        assert_eq!(
            a.influence.to_bits(),
            b.influence.to_bits(),
            "{what}: {dir:?}: influence mass"
        );
        assert_eq!(a.d3_json, b.d3_json, "{what}: {dir:?}: rendered tree");
    }

    // 4. autocomplete — served off the mapped trie vs the owned one
    for prefix in ["db-", "ml-follower-", "j", "nobody"] {
        let a = owned.autocomplete(prefix, 5);
        let b = mapped.autocomplete(prefix, 5);
        assert_eq!(a.len(), b.len(), "{what}: {prefix}: completion count");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.0, &x.1), (y.0, &y.1), "{what}: {prefix}: completion");
            assert_eq!(
                x.2.to_bits(),
                y.2.to_bits(),
                "{what}: {prefix}: completion score"
            );
        }
    }

    // 5. keyword_radar — exact probability mass per axis
    for word in ["data mining", "graphical models"] {
        let a = owned.keyword_radar(word).unwrap();
        let b = mapped.keyword_radar(word).unwrap();
        assert_eq!(a.axes, b.axes, "{what}: {word}: radar axes");
        assert_eq!(
            a.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{what}: {word}: radar values"
        );
    }
}

#[test]
fn all_five_operators_bit_identical_owned_vs_mapped_at_1_and_8_threads() {
    let (g, model) = fixture();
    // MIS exercises the mapped MIS tables; best-effort PB exercises the
    // mapped σ̂ tables; both exercise PIKS worlds, the trie, and samples
    for kim in [
        KimEngineChoice::Mis,
        KimEngineChoice::BestEffort(BoundKind::Precomputation),
    ] {
        let cfg = config(kim);
        let dir = std::env::temp_dir().join(format!(
            "octopus_mapped_mode_{}",
            match kim {
                KimEngineChoice::Mis => "mis",
                _ => "pb",
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
        for threads in [1usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let what = format!("{kim:?} @ {threads} thread(s)");
            let (owned, mapped) = pool.install(|| {
                // owned open writes the artifact on the first (1-thread)
                // pass and decodes it on the second — either way the mapped
                // engine then serves the byte-identical file
                let owned =
                    Octopus::open_or_build(g.clone(), model.clone(), cfg.clone(), &dir).unwrap();
                let mapped =
                    Octopus::open_mapped(g.clone(), model.clone(), cfg.clone(), &dir).unwrap();
                (owned, mapped)
            });
            assert!(
                mapped.cache_hit(),
                "{what}: the mapped open must hit the just-written artifact"
            );
            pool.install(|| assert_all_five_operators_identical(&owned, &mapped, &what));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The acceptance path for per-topic invalidation: nudge one topic-0-only
/// edge, reopen the cached epoch so exactly topic 0's cap/MIS units rebuild
/// (topic 1's are reused from the v5 sub-sections), and demand the
/// partially rebuilt engine — owned *and* mapped off the re-persisted file
/// — answers all five operators bit-identically to a from-scratch build,
/// at 1 and at 8 worker threads.
#[test]
fn topic_confined_nudge_partial_rebuild_is_bit_identical_owned_and_mapped() {
    let (g, model) = fixture();
    let cfg = config(KimEngineChoice::Mis);
    // han → db-follower-0 carries only a topic-0 entry
    let victim = g.find_edge(NodeId(0), NodeId(2)).unwrap();
    let shape = GraphDelta::NudgeWeights {
        edges: vec![victim],
        delta: 0.07,
    };
    let touched = shape.touched_topics(&g).unwrap();
    assert_eq!(
        touched.iter().copied().collect::<Vec<_>>(),
        vec![0],
        "the fixture edge must be topic-0-confined"
    );
    let nudged = shape.apply(&g).unwrap();

    for threads in [1usize, 8] {
        let dir = std::env::temp_dir().join(format!("octopus_mapped_topic_nudge_{threads}"));
        std::fs::remove_dir_all(&dir).ok();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let what = format!("topic nudge @ {threads} thread(s)");
        let (partial, mapped, fresh) = pool.install(|| {
            let base = Octopus::open_or_build(g.clone(), model.clone(), cfg.clone(), &dir).unwrap();
            assert!(!base.cache_hit(), "{what}: cold start builds");
            let partial =
                Octopus::open_or_build(nudged.clone(), model.clone(), cfg.clone(), &dir).unwrap();
            let mapped =
                Octopus::open_mapped(nudged.clone(), model.clone(), cfg.clone(), &dir).unwrap();
            let fresh = Octopus::new(nudged.clone(), model.clone(), cfg.clone()).unwrap();
            (partial, mapped, fresh)
        });

        // the reopen was a partial rebuild: exactly topic 0's weight-stage
        // units recomputed, topic 1's came off the donor epoch
        let report = partial.system_report();
        assert!(!report.cache_hit, "{what}: a nudge is never a full hit");
        for stage in ["spread-cap", "mis-tables"] {
            let s = report
                .stage_reuse
                .iter()
                .find(|s| s.stage == stage)
                .unwrap_or_else(|| panic!("{what}: stage {stage} missing"));
            assert_eq!(
                (s.reused, s.total),
                (1, 2),
                "{what}: {stage} must reuse exactly the untouched topic: {s:?}"
            );
        }

        assert!(mapped.cache_hit(), "{what}: mapped open hits the new epoch");
        pool.install(|| {
            assert_all_five_operators_identical(&partial, &mapped, &what);
            assert_all_five_operators_identical(&fresh, &mapped, &format!("{what} (fresh)"));
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn paranoid_mapped_open_answers_identically_too() {
    let (g, model) = fixture();
    let cfg = config(KimEngineChoice::Mis);
    let dir = std::env::temp_dir().join("octopus_mapped_mode_paranoid");
    std::fs::remove_dir_all(&dir).ok();
    let owned = Octopus::open_or_build(g.clone(), model.clone(), cfg.clone(), &dir).unwrap();
    let mapped = Octopus::open_mapped_paranoid(g, model, cfg, &dir).unwrap();
    assert!(mapped.is_mapped() && mapped.cache_hit());
    assert_all_five_operators_identical(&owned, &mapped, "paranoid");
    std::fs::remove_dir_all(&dir).ok();
}
