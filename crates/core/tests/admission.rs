//! Property tests for the admission-control state machine.
//!
//! [`AdmissionCore`] is pure, so proptest can drive it through arbitrary
//! arrival/departure interleavings and check the serving-layer contract
//! after every step:
//!
//! * conservation — every arrival is admitted, waiting, or shed, exactly
//!   one of the three; nothing is both answered and shed;
//! * bounded queues — no class's waiting count ever exceeds its cap, and
//!   inflight never exceeds `max_inflight`;
//! * no idle shedding — a query only waits (or sheds) when every
//!   execution slot is busy (`waiting > 0 ⟹ inflight == max_inflight`),
//!   and a shed additionally requires the class's queue to be full;
//! * strict priority — a departure dispatches the highest-priority
//!   non-empty class, so a higher class is never left waiting while a
//!   lower one runs in its place;
//! * honest counters — the cumulative shed counter equals the number of
//!   `Shed` outcomes callers observed, per class.

use octopus_core::serve::admission::{AdmissionCore, Arrival};
use octopus_core::PriorityClass;
use proptest::prelude::*;

/// One scripted event: an arrival of a class, or a departure.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrive(PriorityClass),
    Depart,
}

fn event() -> impl Strategy<Value = Event> {
    // 0..3 → an arrival of that class, 3..5 → a departure (arrivals
    // weighted 3:2 so queues actually fill)
    (0usize..5).prop_map(|i| match i {
        0..=2 => Event::Arrive(PriorityClass::ALL[i]),
        _ => Event::Depart,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admission_invariants_hold_under_any_interleaving(
        max_inflight in 1usize..4,
        caps in (0usize..4, 0usize..4, 0usize..4),
        script in proptest::collection::vec(event(), 1..200),
    ) {
        let mut core = AdmissionCore::new(max_inflight, [caps.0, caps.1, caps.2]);
        // shadow tallies of what callers observed
        let mut arrivals = [0u64; 3];
        let mut observed_shed = [0u64; 3];
        let mut observed_admit = [0u64; 3];

        for ev in script {
            match ev {
                Event::Arrive(class) => {
                    let c = class.index();
                    arrivals[c] += 1;
                    let slot_was_free = core.inflight() < core.max_inflight();
                    match core.arrive(class) {
                        Arrival::Admit => {
                            observed_admit[c] += 1;
                            prop_assert!(
                                slot_was_free,
                                "admitted with every slot busy"
                            );
                        }
                        Arrival::Enqueue { ticket } => {
                            prop_assert!(
                                !slot_was_free,
                                "queued while a slot was free"
                            );
                            prop_assert!(ticket < core.dispatched()[c] + core.waiting()[c] as u64);
                        }
                        Arrival::Shed => {
                            observed_shed[c] += 1;
                            prop_assert!(
                                !slot_was_free,
                                "shed while a slot was free"
                            );
                            prop_assert_eq!(
                                core.waiting()[c], core.queue_caps()[c],
                                "shed with queue room left"
                            );
                        }
                    }
                }
                Event::Depart => {
                    if core.inflight() == 0 {
                        continue; // nothing to finish
                    }
                    let before = core.waiting();
                    match core.depart() {
                        Some(class) => {
                            // strict priority: nothing higher was waiting
                            for higher in &PriorityClass::ALL[..class.index()] {
                                prop_assert_eq!(
                                    before[higher.index()], 0,
                                    "dispatched {} past waiting {}",
                                    class.label(), higher.label()
                                );
                            }
                            observed_admit[class.index()] += 1;
                            prop_assert_eq!(
                                core.inflight(), core.max_inflight(),
                                "slot-transfer dispatch left a slot free"
                            );
                        }
                        None => {
                            prop_assert_eq!(before, [0; 3], "slot freed past waiters");
                        }
                    }
                }
            }

            // step-invariants
            let waiting = core.waiting();
            for (c, (&w, &cap)) in waiting.iter().zip(&core.queue_caps()).enumerate() {
                prop_assert!(w <= cap, "class {c} queue over its cap");
            }
            prop_assert!(core.inflight() <= core.max_inflight());
            if waiting.iter().any(|&w| w > 0) {
                prop_assert_eq!(
                    core.inflight(), core.max_inflight(),
                    "waiters exist while a slot is free"
                );
            }
            // conservation: every arrival is exactly one of
            // admitted / still waiting / shed — nothing double-counted,
            // nothing lost
            for c in 0..3 {
                prop_assert_eq!(
                    core.admitted()[c] + waiting[c] as u64 + core.shed()[c],
                    arrivals[c],
                    "class {} arrivals not conserved", c
                );
            }
        }

        // honest counters: the machine's tallies equal what callers saw
        prop_assert_eq!(core.shed(), observed_shed);
        prop_assert_eq!(core.admitted(), observed_admit);
    }

    #[test]
    fn higher_class_never_shed_while_lower_admitted(
        max_inflight in 1usize..3,
        cap in 1usize..4,
        script in proptest::collection::vec(event(), 1..120),
    ) {
        // Equal caps isolate the priority dimension: with symmetric
        // queues, whenever a higher class sheds, a lower-class arrival at
        // the same instant must shed too (it can never be admitted in the
        // higher one's place).
        let mut core = AdmissionCore::new(max_inflight, [cap; 3]);
        for ev in script {
            match ev {
                Event::Arrive(class) => {
                    if core.arrive(class) == Arrival::Shed {
                        for lower in &PriorityClass::ALL[class.index() + 1..] {
                            let mut probe = core.clone();
                            let outcome = probe.arrive(*lower);
                            prop_assert_ne!(
                                outcome, Arrival::Admit,
                                "{} shed but {} would run immediately",
                                class.label(), lower.label()
                            );
                        }
                    }
                }
                Event::Depart => {
                    if core.inflight() > 0 {
                        core.depart();
                    }
                }
            }
        }
    }
}
