//! Sharded-vs-whole equivalence of the scatter-gather serving layer
//! (`octopus_core::serve::shard`).
//!
//! The contract under test: a [`ShardedService`] over K locality shards is
//! observationally equivalent to one engine over the whole graph — the
//! merged top-k is bit-identical (seeds, names, ranks) under the
//! documented (gain desc, node id asc) tie-break at K ∈ {1, 2, 4}, the
//! single-owner and union-merge operators lift ids back to global
//! coordinates exactly, a routed delta rebuilds *only* the shards its
//! footprint touches (pinned through per-shard [`SwapReport`]s and epoch
//! vectors), and a cross-shard edge insert is rejected rather than
//! silently mis-routed. CI runs this suite at `RAYON_NUM_THREADS` 1 and 8
//! in the serving-soak matrix, next to the unsharded epoch suite.

use octopus_core::engine::{Octopus, OctopusConfig};
use octopus_core::serve::{ShardedService, MAX_BATCH_RETRIES};
use octopus_core::{CoreError, QueryBudget};
use octopus_graph::delta::GraphDelta;
use octopus_graph::{EdgeId, GraphBuilder, NodeId, TopicGraph};
use octopus_topics::{TopicModel, Vocabulary};
use std::sync::Arc;

/// Four weakly connected components — the partition units — with
/// deliberately spread-out gains plus one *exact* cross-component tie:
///
/// * comp A (nodes 0–4):   hub "ada db" → 4 fans at topic-0 weight 0.8
/// * comp B (nodes 5–8):   hub "bea ml" → 3 fans at topic-1 weight 0.8
/// * comp C (nodes 9–11):  hub "cal db" → 2 fans at 0.6 + a 0.3 chain
/// * comp D (nodes 12–14): hub "dot db" → 2 fans at 0.6 + a 0.3 chain
///
/// C and D are structurally identical, so their hubs' marginal gains tie
/// *bit-for-bit* under any query distribution — which pins the merge's
/// lower-original-id tie-break. Fan names share the "fan-" prefix across
/// components so autocomplete union-merges across shards.
///
/// Component sizes (5, 4, 3, 3) make the K = 2 greedy bin-pack
/// deterministic: shard 0 = {A, D}, shard 1 = {B, C}.
fn fixture() -> (TopicGraph, TopicModel, OctopusConfig) {
    let mut b = GraphBuilder::new(2);
    let ada = b.add_node("ada db");
    for i in 0..4 {
        let v = b.add_node(format!("fan-a-{i}"));
        b.add_edge(ada, v, &[(0, 0.8)]).unwrap();
    }
    let bea = b.add_node("bea ml");
    for i in 0..3 {
        let v = b.add_node(format!("fan-b-{i}"));
        b.add_edge(bea, v, &[(1, 0.8)]).unwrap();
    }
    for hub_name in ["cal db", "dot db"] {
        let hub = b.add_node(hub_name);
        let tag = &hub_name[..1];
        let f0 = b.add_node(format!("fan-{tag}-0"));
        let f1 = b.add_node(format!("fan-{tag}-1"));
        b.add_edge(hub, f0, &[(0, 0.6)]).unwrap();
        b.add_edge(hub, f1, &[(0, 0.6)]).unwrap();
        b.add_edge(f0, f1, &[(0, 0.3)]).unwrap();
    }
    let g = b.build().unwrap();
    let mut vocab = Vocabulary::new();
    vocab.intern("data mining");
    vocab.intern("frequent patterns");
    vocab.intern("em algorithm");
    vocab.intern("graphical models");
    let model = TopicModel::from_rows(
        vocab,
        vec![vec![0.5, 0.4, 0.05, 0.05], vec![0.05, 0.05, 0.5, 0.4]],
        vec![0.5, 0.5],
    )
    .unwrap()
    .with_labels(vec!["databases".into(), "machine learning".into()])
    .unwrap();
    // best-effort CELF over exact MIA evaluation: deterministic and
    // exactly component-decomposable, so sharded-vs-whole seed rankings
    // must agree to the bit
    let config = OctopusConfig {
        piks_index_size: 96,
        mis_rr_per_topic: 200,
        k_max: 4,
        ..Default::default()
    };
    (g, model, config)
}

fn reference(g: &TopicGraph, model: &TopicModel, config: &OctopusConfig) -> Octopus {
    Octopus::new(g.clone(), model.clone(), config.clone()).unwrap()
}

/// Assert the sharded service answers all five operators like `single`.
/// Seeds/ids/names/paths are compared bit-identically; only the merged
/// spread (a re-grouped floating-point sum) gets an epsilon.
fn assert_equivalent(sharded: &ShardedService, single: &Octopus) {
    // scenario 1 — the merged top-k: seeds bit-identical, spread re-summed
    let want = single.find_influencers("data mining", 4).unwrap();
    let got = sharded.find_influencers("data mining", 4).unwrap().value;
    assert_eq!(got.keywords, want.keywords);
    assert_eq!(
        got.seeds, want.seeds,
        "merged ranking must be the global one"
    );
    assert_eq!(got.result.seeds, want.result.seeds);
    assert!(
        (got.result.spread - want.result.spread).abs() <= 1e-9 * want.result.spread.abs(),
        "merged spread {} vs single {}",
        got.result.spread,
        want.result.spread
    );

    // scenario 2 — single-owner, id lifted back to global coordinates
    let want = single.suggest_keywords("ada db", 2).unwrap();
    let got = sharded.suggest_keywords("ada db", 2).unwrap().value;
    assert_eq!(got.user, want.user, "suggest user id must be global");
    assert_eq!(got.user_name, want.user_name);
    assert_eq!(got.words, want.words);

    // scenario 3 — owner shard explores; every id in the answer lifted
    let want = single
        .explore_paths(
            "cal db",
            octopus_core::paths::ExploreDirection::Influences,
            Some("data mining"),
        )
        .unwrap();
    let got = sharded
        .explore_paths(
            "cal db",
            octopus_core::paths::ExploreDirection::Influences,
            Some("data mining"),
        )
        .unwrap()
        .value;
    assert_eq!(got.root, want.root);
    assert_eq!(got.root_name, want.root_name);
    assert_eq!(got.reached, want.reached);
    assert_eq!(got.influence, want.influence, "exact MIA mass, bit-equal");
    assert_eq!(got.clusters, want.clusters);
    assert_eq!(got.top_paths, want.top_paths);
    assert_eq!(got.tree, want.tree, "remapped arborescence in global ids");
    assert_eq!(got.d3_json, want.d3_json);

    // union-merge operators: the "fan-" prefix spans every component
    assert_eq!(
        sharded.autocomplete("fan-", 10).value,
        single.autocomplete("fan-", 10),
        "union-merged completions under (score desc, global id asc)"
    );
    assert_eq!(
        sharded.keyword_radar("data mining").unwrap().value,
        single.keyword_radar("data mining").unwrap()
    );
}

#[test]
fn sharding_is_transparent_at_every_shard_count() {
    let (g, model, config) = fixture();
    let single = reference(&g, &model, &config);
    for (k, expected_shards) in [(1usize, 1usize), (2, 2), (4, 4)] {
        let sharded = ShardedService::new(g.clone(), model.clone(), config.clone(), k).unwrap();
        assert_eq!(sharded.shard_count(), expected_shards, "k = {k}");
        assert_equivalent(&sharded, &single);
    }
    // requesting more shards than components caps at the component count
    let capped = ShardedService::new(g, model, config, 64).unwrap();
    assert_eq!(capped.shard_count(), 4);
}

#[test]
fn merged_topk_breaks_exact_gain_ties_on_original_node_id() {
    let (g, model, config) = fixture();
    let single = reference(&g, &model, &config);
    // comps C and D are bit-identical, so their hubs' gains tie exactly;
    // the single-engine CELF heap resolves to the lower id — "cal db"
    // (node 9) before "dot db" (node 12)
    let want = single.find_influencers("data mining", 4).unwrap();
    let cal = want.seeds.iter().position(|s| s.node == NodeId(9));
    let dot = want.seeds.iter().position(|s| s.node == NodeId(12));
    assert!(
        cal.unwrap() < dot.unwrap(),
        "lower-id hub must win the exact tie: {:?}",
        want.seeds
    );
    // the sharded merge applies the same (gain desc, node id asc) rule
    // even when the tied hubs live in *different* shards
    for k in [2usize, 4] {
        let sharded = ShardedService::new(g.clone(), model.clone(), config.clone(), k).unwrap();
        assert_ne!(
            sharded.owner_of(NodeId(9)),
            sharded.owner_of(NodeId(12)),
            "fixture must keep the tied hubs in different shards at k = {k}"
        );
        let got = sharded.find_influencers("data mining", 4).unwrap().value;
        assert_eq!(got.seeds, want.seeds);
    }
}

#[test]
fn routed_delta_rebuilds_only_the_touched_shard() {
    let (g, model, config) = fixture();
    let sharded = ShardedService::new(g.clone(), model.clone(), config.clone(), 4).unwrap();
    let before = sharded.snapshots();

    // EdgeId(7) is "cal db" → "fan-c-0", entirely inside component C
    let delta = GraphDelta::NudgeWeights {
        edges: vec![EdgeId(7)],
        delta: 0.1,
    };
    sharded.submit(delta.clone());
    let swaps = sharded.apply_pending().unwrap();
    assert_eq!(swaps.len(), 1, "exactly one shard swaps");
    let cal_shard = sharded.owner_of(NodeId(9)).unwrap();
    assert_eq!(swaps[0].shard, cal_shard);
    assert_eq!(swaps[0].report.epoch, 1);
    assert_eq!(swaps[0].report.deltas_applied, 1);

    // untouched shards keep serving the very same epoch objects
    let after = sharded.snapshots();
    for (s, (b, a)) in before.iter().zip(&after).enumerate() {
        if s == cal_shard {
            assert!(!Arc::ptr_eq(b, a), "touched shard must have swapped");
            assert_eq!(a.id(), 1);
        } else {
            assert!(Arc::ptr_eq(b, a), "untouched shard {s} must not rebuild");
            assert_eq!(a.id(), 0);
        }
    }
    let stats = sharded.stats();
    let mut expected_epochs = vec![0u64; 4];
    expected_epochs[cal_shard] = 1;
    assert_eq!(stats.current_epochs, expected_epochs);
    assert_eq!(stats.epochs_swapped, 1);
    assert_eq!(stats.deltas_applied, 1);
    assert_eq!(stats.current_epoch(), 1);

    // post-delta answers still equal a whole-graph engine on the new graph
    let g1 = delta.apply(&g).unwrap();
    assert_equivalent(&sharded, &reference(&g1, &model, &config));
}

#[test]
fn multi_shard_batch_swaps_every_touched_shard_atomically() {
    let (g, model, config) = fixture();
    let sharded = ShardedService::new(g.clone(), model.clone(), config.clone(), 4).unwrap();
    // one batch touching components A (nudge) and B (rename): both shards
    // swap in the same flush, C and D pay nothing
    let batch = vec![
        GraphDelta::NudgeWeights {
            edges: vec![EdgeId(0)],
            delta: 0.05,
        },
        GraphDelta::RenameNode {
            node: NodeId(5),
            name: "bea ml-jordan".into(),
        },
    ];
    sharded.submit_all(batch.clone());
    let swaps = sharded.apply_pending().unwrap();
    let mut swapped: Vec<usize> = swaps.iter().map(|s| s.shard).collect();
    swapped.sort_unstable();
    let expected = {
        let mut v = vec![
            sharded.owner_of(NodeId(0)).unwrap(),
            sharded.owner_of(NodeId(5)).unwrap(),
        ];
        v.sort_unstable();
        v
    };
    assert_eq!(swapped, expected);
    assert!(swaps.iter().all(|s| s.report.deltas_applied == 2));
    let stats = sharded.stats();
    assert_eq!(stats.epochs_swapped, 2);
    assert_eq!(stats.deltas_applied, 2);
    assert_eq!(stats.current_epoch(), 2);
    // the rename is visible through the union-merged trie
    assert!(sharded
        .autocomplete("bea ml-j", 1)
        .value
        .iter()
        .any(|(id, name, _)| *id == NodeId(5) && name == "bea ml-jordan"));

    let g1 = octopus_graph::delta::apply_all(&g, &batch).unwrap();
    assert_equivalent(&sharded, &reference(&g1, &model, &config));
}

#[test]
fn cross_shard_insert_is_rejected_and_eventually_dropped() {
    let (g, model, config) = fixture();
    let sharded = ShardedService::new(g, model, config, 4).unwrap();
    sharded.submit(GraphDelta::InsertEdge {
        src: NodeId(0),
        dst: NodeId(5),
        probs: vec![(0, 0.4)],
    });
    // the insert would merge components A and B — every attempt must be
    // rejected with the routing error, and the retry contract eventually
    // drops the batch instead of wedging the queue
    for attempt in 1..=MAX_BATCH_RETRIES {
        match sharded.apply_pending() {
            Err(CoreError::CrossShardDelta { src, dst }) => {
                assert_eq!(src.0, NodeId(0));
                assert_eq!(dst.0, NodeId(5));
                assert_ne!(src.1, dst.1);
            }
            other => panic!("attempt {attempt}: expected CrossShardDelta, got {other:?}"),
        }
    }
    let stats = sharded.stats();
    assert_eq!(stats.batches_failed, MAX_BATCH_RETRIES);
    assert_eq!(stats.terminal_failures, 1);
    assert_eq!(stats.pending_deltas, 0);
    assert_eq!(stats.current_epochs, vec![0; 4], "no shard ever swapped");

    // a same-shard insert (inside component C) still routes and applies
    sharded.submit(GraphDelta::InsertEdge {
        src: NodeId(11),
        dst: NodeId(9),
        probs: vec![(0, 0.2)],
    });
    let swaps = sharded.apply_pending().unwrap();
    assert_eq!(swaps.len(), 1);
    assert_eq!(Some(swaps[0].shard), sharded.owner_of(NodeId(9)));
    assert_eq!(sharded.stats().terminal_failures, 1);
}

#[test]
fn sharded_equivalence_holds_at_one_and_eight_threads() {
    let (g, model, config) = fixture();
    let single = reference(&g, &model, &config);
    for threads in [1usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let sharded = ShardedService::new(g.clone(), model.clone(), config.clone(), 2).unwrap();
            assert_equivalent(&sharded, &single);
            // a routed delta under this thread count, then re-check
            let delta = GraphDelta::NudgeWeights {
                edges: vec![EdgeId(4)],
                delta: 0.05,
            };
            sharded.submit(delta.clone());
            let swaps = sharded.apply_pending().unwrap();
            assert_eq!(swaps.len(), 1, "threads = {threads}");
            let g1 = delta.apply(&g).unwrap();
            assert_equivalent(&sharded, &reference(&g1, &model, &config));
        });
    }
}

#[test]
fn cached_and_mapped_shards_serve_identically() {
    let (g, model, config) = fixture();
    let single = reference(&g, &model, &config);
    let root = std::env::temp_dir().join(format!("octopus-serve-shard-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // cached mode: per-shard OCTA subdirectories under the root
    let cached = ShardedService::with_cache_dir(
        g.clone(),
        model.clone(),
        config.clone(),
        2,
        root.join("cached"),
    )
    .unwrap();
    assert_equivalent(&cached, &single);
    for idx in 0..2 {
        assert!(
            root.join("cached").join(format!("shard-{idx:03}")).is_dir(),
            "each shard keeps its own cache subdirectory"
        );
    }
    // a routed rename rebuilds one shard *through its cache*, reusing the
    // weight-reading stages it left valid
    let delta = GraphDelta::RenameNode {
        node: NodeId(12),
        name: "dot db-lee".into(),
    };
    cached.submit(delta.clone());
    let swaps = cached.apply_pending().unwrap();
    assert_eq!(swaps.len(), 1);
    assert!(
        swaps[0]
            .report
            .stage_reuse
            .iter()
            .any(|s| s.stage == "spread-cap" && s.is_full()),
        "a rename must reuse the shard's weight-blind stages: {:?}",
        swaps[0].report.stage_reuse
    );
    let g1 = delta.apply(&g).unwrap();
    assert_equivalent(&cached, &reference(&g1, &model, &config));

    // a topic-1-confined nudge (bea ml → fan-b-0 carries only a topic-1
    // entry) routed to one shard: that shard's swap report shows the
    // per-topic split on the always-enabled cap stage — topic 0's unit
    // reused off the shard's donor epoch, topic 1's rebuilt
    let nudge = GraphDelta::NudgeWeights {
        edges: vec![g1.find_edge(NodeId(5), NodeId(6)).unwrap()],
        delta: 0.05,
    };
    assert_eq!(
        nudge
            .touched_topics(&g1)
            .unwrap()
            .into_iter()
            .collect::<Vec<_>>(),
        vec![1],
        "the nudged edge must be topic-1-confined"
    );
    cached.submit(nudge.clone());
    let swaps = cached.apply_pending().unwrap();
    assert_eq!(swaps.len(), 1, "the nudge routes to exactly one shard");
    let cap = swaps[0]
        .report
        .stage_reuse
        .iter()
        .find(|s| s.stage == "spread-cap")
        .expect("spread-cap in the swap report");
    assert_eq!(
        (cap.reused, cap.total),
        (1, 2),
        "a topic-confined nudge must reuse the untouched topic's cap unit: {cap:?}"
    );
    let g2 = nudge.apply(&g1).unwrap();
    assert_equivalent(&cached, &reference(&g2, &model, &config));

    // mapped mode: every shard engine serves zero-copy off its artifact
    let mapped = ShardedService::with_mapped_cache(
        g.clone(),
        model.clone(),
        config.clone(),
        2,
        root.join("mapped"),
    )
    .unwrap();
    for snap in mapped.snapshots() {
        assert!(snap.engine().is_mapped(), "shard engines must be mapped");
    }
    assert_equivalent(&mapped, &single);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn user_keyword_overrides_project_onto_their_shard() {
    let (g, model, config) = fixture();
    let mut overrides = std::collections::HashMap::new();
    overrides.insert(NodeId(0), vec![octopus_topics::KeywordId(1)]);
    let sharded = ShardedService::with_options(
        g.clone(),
        model.clone(),
        config.clone(),
        4,
        None,
        false,
        overrides.clone(),
    )
    .unwrap();
    let single = Octopus::new(g, model, config)
        .unwrap()
        .with_user_keywords(overrides);
    let want = single.suggest_keywords("ada db", 1).unwrap();
    let got = sharded.suggest_keywords("ada db", 1).unwrap().value;
    assert_eq!(got.words, want.words);
    assert_eq!(got.words, vec!["frequent patterns"]);
    assert_eq!(got.user, NodeId(0), "lifted back to the global id");
}

#[test]
fn keyword_radar_gathers_from_every_shard() {
    // Regression pin: the radar used to answer from shard 0 alone. The
    // scatter-gather merge (documented elementwise max) must equal the
    // whole-graph chart for words loading on *both* topics, at every
    // shard count, and stay equal after a routed delta bumps one shard.
    let (g, model, config) = fixture();
    let single = reference(&g, &model, &config);
    for k in [2usize, 4] {
        let sharded = ShardedService::new(g.clone(), model.clone(), config.clone(), k).unwrap();
        for word in ["data mining", "em algorithm", "graphical models"] {
            let want = single.keyword_radar(word).unwrap();
            let got = sharded.keyword_radar(word).unwrap().value;
            assert_eq!(got, want, "radar for {word:?} at k = {k}");
        }
        // every per-shard chart participates in the merge: each equals
        // the whole-graph chart (shards share the topic model), so the
        // elementwise max is exact rather than shard-0's view by luck
        for snap in sharded.snapshots() {
            assert_eq!(
                snap.engine().keyword_radar("em algorithm").unwrap(),
                single.keyword_radar("em algorithm").unwrap()
            );
        }
    }
}

#[test]
fn sharded_budgeted_operators_with_unlimited_budget_match_plain_paths() {
    let (g, model, config) = fixture();
    let sharded = ShardedService::new(g, model, config, 2).unwrap();
    let budget = QueryBudget::unlimited();

    let plain = sharded.find_influencers("data mining", 4).unwrap().value;
    let any = sharded
        .find_influencers_budgeted("data mining", 4, &budget)
        .unwrap()
        .value;
    assert!(any.bound.exact);
    assert_eq!(any.value.seeds, plain.seeds);
    assert_eq!(
        any.value.result.spread.to_bits(),
        plain.result.spread.to_bits(),
        "unlimited budget must route through the exact scatter-gather"
    );

    let plain = sharded.suggest_keywords("ada db", 2).unwrap().value;
    let any = sharded
        .suggest_keywords_budgeted("ada db", 2, &budget)
        .unwrap()
        .value;
    assert!(any.bound.exact);
    assert_eq!(any.value.words, plain.words);
    assert_eq!(any.value.user, plain.user);

    let dir = octopus_core::paths::ExploreDirection::Influences;
    let plain = sharded
        .explore_paths("cal db", dir, Some("data mining"))
        .unwrap()
        .value;
    let any = sharded
        .explore_paths_budgeted("cal db", dir, Some("data mining"), &budget)
        .unwrap()
        .value;
    assert!(any.bound.exact);
    assert_eq!(any.value.d3_json, plain.d3_json);
    assert_eq!(any.value.influence.to_bits(), plain.influence.to_bits());

    let plain = sharded.autocomplete("fan-", 10).value;
    let any = sharded.autocomplete_budgeted("fan-", 10, &budget).value;
    assert!(any.bound.exact);
    assert_eq!(any.value, plain);

    let plain = sharded.keyword_radar("data mining").unwrap().value;
    let any = sharded
        .keyword_radar_budgeted("data mining", &budget)
        .unwrap()
        .value;
    assert!(any.bound.exact);
    assert_eq!(any.value, plain);
}

#[test]
fn sharded_budgeted_topk_is_deterministic_and_its_bound_is_sound() {
    let (g, model, config) = fixture();
    let single = reference(&g, &model, &config);
    let exact_spread = single
        .find_influencers("data mining", 4)
        .unwrap()
        .result
        .spread;
    for k in [2usize, 4] {
        let sharded = ShardedService::new(g.clone(), model.clone(), config.clone(), k).unwrap();
        for samples in [32usize, 256] {
            let budget = QueryBudget::samples(samples);
            let a = sharded
                .find_influencers_budgeted("data mining", 4, &budget)
                .unwrap()
                .value;
            let b = sharded
                .find_influencers_budgeted("data mining", 4, &budget)
                .unwrap()
                .value;
            // fixed sample budget ⇒ the scatter, the per-shard samplers,
            // and the gather are all deterministic
            assert_eq!(
                a.value.seeds, b.value.seeds,
                "k = {k}, {samples} samples: merged seeds not reproducible"
            );
            assert_eq!(
                a.value.result.spread.to_bits(),
                b.value.result.spread.to_bits()
            );
            assert_eq!(a.bound, b.bound);
            assert!(!a.bound.exact);
            assert!(
                a.bound.samples_used <= samples,
                "shards spent {} RR sets against a split budget of {samples}",
                a.bound.samples_used
            );
            // gathered bound still brackets the whole-graph exact spread
            assert!(
                a.bound.contains(exact_spread),
                "k = {k}, {samples} samples: exact spread {exact_spread} outside [{}, {}]",
                a.bound.lower,
                a.bound.upper
            );
        }
    }
}

#[test]
fn sharded_admission_counts_sheds_in_stats() {
    use octopus_core::serve::AdmissionConfig;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    let (g, model, config) = fixture();
    // one execution slot and zero queue room: with 8 concurrent clients
    // some queries must shed, and every shed surfaces as Overloaded
    let sharded = Arc::new(
        ShardedService::new(g, model, config, 2)
            .unwrap()
            .with_admission(AdmissionConfig {
                max_inflight: 1,
                queue_caps: [0, 0, 0],
            }),
    );
    let observed_shed = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (sharded, observed_shed, answered) = (&sharded, &observed_shed, &answered);
            scope.spawn(move || {
                for _ in 0..4 {
                    match sharded.find_influencers("data mining", 2) {
                        Ok(_) => {
                            answered.fetch_add(1, Relaxed);
                        }
                        Err(CoreError::Overloaded { class, .. }) => {
                            assert_eq!(class, "standard");
                            observed_shed.fetch_add(1, Relaxed);
                        }
                        Err(e) => panic!("unexpected error {e:?}"),
                    }
                }
            });
        }
    });
    let stats = sharded.stats();
    assert_eq!(
        stats.queries_shed,
        observed_shed.load(Relaxed),
        "stats must count exactly the Overloaded errors callers saw"
    );
    assert_eq!(stats.shed_by_class, [0, observed_shed.load(Relaxed), 0]);
    assert_eq!(
        stats.queries_shed + answered.load(Relaxed),
        32,
        "no query both answered and shed, none lost"
    );
    // autocomplete bypasses admission entirely: even a saturated
    // controller never sheds it
    for _ in 0..4 {
        assert!(!sharded.autocomplete("fan-", 5).value.is_empty());
    }
    assert_eq!(sharded.stats().queries_shed, observed_shed.load(Relaxed));
}
