//! Determinism contract of the staged offline-build pipeline: for a fixed
//! `config.seed`, the artifacts are bit-identical across repeated builds
//! and across thread counts (1-thread pool vs the default pool), because
//! every randomized work unit draws from its own index-derived RNG stream
//! and every parallel combinator assembles results in unit order.

use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::BoundKind;
use octopus_core::offline::persist::{self, Fingerprint};
use octopus_core::offline::{self, OfflineArtifacts, STAGE_ORDER};
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};
use std::sync::Arc;

/// A 3-topic graph big enough that every stage has real work units.
fn fixture_graph() -> TopicGraph {
    let mut b = GraphBuilder::new(3);
    for i in 0..60 {
        b.add_node(format!("user-{i}"));
    }
    // three topic-disjoint hubs plus a sprinkle of cross links
    for (hub, z) in [(0u32, 0usize), (1, 1), (2, 2)] {
        for v in 0..15u32 {
            let dst = 3 + z as u32 * 15 + v;
            b.add_edge(NodeId(hub), NodeId(dst), &[(z, 0.6)]).unwrap();
        }
    }
    for v in 3..20u32 {
        b.add_edge(NodeId(v), NodeId(v + 20), &[(0, 0.15), (1, 0.1)])
            .unwrap();
    }
    b.build().unwrap()
}

fn configs() -> Vec<OctopusConfig> {
    let base = OctopusConfig {
        piks_index_size: 400,
        mis_rr_per_topic: 800,
        k_max: 5,
        seed: 0xD57E_2217,
        ..Default::default()
    };
    vec![
        OctopusConfig {
            kim: KimEngineChoice::Mis,
            ..base.clone()
        },
        OctopusConfig {
            kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
            ..base.clone()
        },
        OctopusConfig {
            kim: KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 6,
                direct_eps: 0.05,
            },
            ..base
        },
    ]
}

/// Field-by-field identity of everything derived from randomness.
fn assert_artifacts_identical(a: &OfflineArtifacts, b: &OfflineArtifacts, what: &str) {
    assert_eq!(a.cap, b.cap, "{what}: spread cap differs");
    assert_eq!(a.pb, b.pb, "{what}: PB bound tables differ");
    assert_eq!(a.mis, b.mis, "{what}: MIS seed tables differ");
    assert_eq!(a.samples, b.samples, "{what}: topic samples differ");
    assert_eq!(a.piks_index, b.piks_index, "{what}: PIKS worlds differ");
    assert_eq!(a.names, b.names, "{what}: autocomplete tries differ");
}

#[test]
fn rebuilding_is_bit_identical() {
    let g = fixture_graph();
    for config in configs() {
        let a = offline::build(&g, &config);
        let b = offline::build(&g, &config);
        assert_artifacts_identical(&a, &b, &format!("rebuild under {:?}", config.kim));
    }
}

#[test]
fn one_thread_and_many_threads_agree() {
    let g = fixture_graph();
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let many = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    for config in configs() {
        let a = single.install(|| offline::build(&g, &config));
        let b = many.install(|| offline::build(&g, &config));
        assert_artifacts_identical(
            &a,
            &b,
            &format!("1-thread vs 8-thread under {:?}", config.kim),
        );
    }
}

#[test]
fn different_seeds_actually_differ() {
    // guard against the determinism tests passing vacuously (e.g. a seed
    // that never reaches the samplers)
    let g = fixture_graph();
    let config = OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 400,
        mis_rr_per_topic: 800,
        k_max: 5,
        ..Default::default()
    };
    let a = offline::build(&g, &config);
    let b = offline::build(
        &g,
        &OctopusConfig {
            seed: config.seed ^ 0xFFFF,
            ..config.clone()
        },
    );
    assert_ne!(
        a.piks_index, b.piks_index,
        "PIKS worlds must depend on the seed"
    );
    assert_ne!(a.mis, b.mis, "MIS tables must depend on the seed");
}

#[test]
fn timings_cover_every_stage() {
    let g = fixture_graph();
    let art = offline::build(&g, &configs()[0]);
    let names: Vec<&str> = art.timings.iter().map(|t| t.stage).collect();
    assert_eq!(names, STAGE_ORDER.to_vec());
}

#[test]
fn persisted_artifacts_are_bit_identical_to_built_ones() {
    // the cache extends the determinism contract across process restarts:
    // build → encode → reload-every-section must equal build, field for
    // field, for every engine flavour
    let g = fixture_graph();
    for config in configs() {
        let fp = Fingerprint::compute(&g, &config);
        let keys = persist::StageKeys::compute(&g, &config);
        let built = offline::build(&g, &config);
        let raw = persist::encode(&built, &fp, &keys, 1);
        let slots = persist::load_sections(&raw, &keys, &g, &config)
            .unwrap_or_else(|e| panic!("reload under {:?}: {e}", config.kim));
        let back = offline::build_with_reuse(&g, &config, slots);
        assert!(
            back.fully_reused(),
            "unchanged inputs must reuse every stage under {:?}: {:?}",
            config.kim,
            back.reuse
        );
        assert_artifacts_identical(
            &built,
            &back,
            &format!("persisted round trip under {:?}", config.kim),
        );
    }
}

#[test]
fn cached_engine_answers_bit_identically_to_fresh_one() {
    // a loaded-from-cache engine must answer KIM, PIKS-suggestion, path and
    // autocomplete queries exactly like the engine that wrote the cache
    let g = fixture_graph();
    let model = model_for(&g);
    let dir = std::env::temp_dir().join("octopus_determinism_cache");
    std::fs::remove_dir_all(&dir).ok();
    for config in configs() {
        let fresh = Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir).unwrap();
        assert!(!fresh.cache_hit(), "first open builds ({:?})", config.kim);
        let cached =
            Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir).unwrap();
        assert!(cached.cache_hit(), "second open loads ({:?})", config.kim);
        assert_artifacts_identical(
            fresh.offline_artifacts(),
            cached.offline_artifacts(),
            &format!("cache round trip under {:?}", config.kim),
        );

        for query in ["alpha", "beta", "alpha gamma"] {
            let a = fresh.find_influencers(query, 3).unwrap();
            let b = cached.find_influencers(query, 3).unwrap();
            assert_eq!(
                a.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
                b.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
                "KIM seeds under {:?} for {query:?}",
                config.kim
            );
            assert_eq!(a.result.spread, b.result.spread, "KIM spread bits");
        }
        let a = fresh.suggest_keywords_for(NodeId(0), 2).unwrap();
        let b = cached.suggest_keywords_for(NodeId(0), 2).unwrap();
        assert_eq!(a.words, b.words, "PIKS suggestion under {:?}", config.kim);
        assert_eq!(a.result.spread, b.result.spread, "PIKS spread bits");
        let a = fresh
            .explore_paths(
                "user-0",
                octopus_core::paths::ExploreDirection::Influences,
                Some("alpha"),
            )
            .unwrap();
        let b = cached
            .explore_paths(
                "user-0",
                octopus_core::paths::ExploreDirection::Influences,
                Some("alpha"),
            )
            .unwrap();
        assert_eq!(a.d3_json, b.d3_json, "path exploration JSON");
        assert_eq!(
            fresh.autocomplete("user-1", 4),
            cached.autocomplete("user-1", 4)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_written_by_one_thread_count_is_read_by_another() {
    // artifacts persisted under one pool size must hit (and agree with) an
    // open under another — BOTH directions, because the property being
    // pinned is that the fingerprint covers inputs, not thread counts
    let g = fixture_graph();
    let model = model_for(&g);
    let config = configs().remove(0);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();

    // direction 1: 1-thread writer → default-pool reader
    let dir = std::env::temp_dir().join("octopus_determinism_cache_threads_1w");
    std::fs::remove_dir_all(&dir).ok();
    let writer = single
        .install(|| Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir))
        .unwrap();
    assert!(!writer.cache_hit());
    let reader = Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir).unwrap();
    assert!(
        reader.cache_hit(),
        "thread count must not affect the cache key"
    );
    assert_artifacts_identical(
        writer.offline_artifacts(),
        reader.offline_artifacts(),
        "1-thread writer vs default-pool reader",
    );
    std::fs::remove_dir_all(&dir).ok();

    // direction 2: default-pool writer → 1-thread reader
    let dir = std::env::temp_dir().join("octopus_determinism_cache_threads_nw");
    std::fs::remove_dir_all(&dir).ok();
    let writer = Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir).unwrap();
    assert!(!writer.cache_hit());
    let reader = single
        .install(|| Octopus::open_or_build(g, model, config, &dir))
        .unwrap();
    assert!(
        reader.cache_hit(),
        "a default-pool cache must hit a 1-thread reader"
    );
    assert_artifacts_identical(
        writer.offline_artifacts(),
        reader.offline_artifacts(),
        "default-pool writer vs 1-thread reader",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_queries_agree_across_thread_counts() {
    // end-to-end: engines built under different pools answer identically
    let g = fixture_graph();
    let config = configs().remove(1);
    let model = model_for(&g);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let e1 = single
        .install(|| Octopus::new(g.clone(), model.clone(), config.clone()))
        .expect("engine builds");
    let e2 = Octopus::new(g, model, config).expect("engine builds");
    let a = e1.find_influencers("alpha", 3).expect("query");
    let b = e2.find_influencers("alpha", 3).expect("query");
    let seeds = |ans: &octopus_core::engine::KimAnswer| {
        ans.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
    };
    assert_eq!(seeds(&a), seeds(&b));
    assert_eq!(a.result.spread, b.result.spread);
}

#[test]
fn engine_is_shareable_behind_an_arc() {
    // the Send + Sync contract, exercised: one Arc'd engine, many threads
    let g = fixture_graph();
    let engine = Arc::new(
        Octopus::new(g, model_for(&fixture_graph()), configs().remove(0)).expect("engine builds"),
    );
    let mut handles = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            engine.find_influencers("alpha", 2).expect("query").seeds[0].node
        }));
    }
    let firsts: Vec<NodeId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        firsts.windows(2).all(|w| w[0] == w[1]),
        "threads must agree: {firsts:?}"
    );
}

/// A 3-topic model whose vocabulary maps one word to each topic.
fn model_for(g: &TopicGraph) -> octopus_topics::TopicModel {
    assert_eq!(g.num_topics(), 3);
    let mut vocab = octopus_topics::Vocabulary::new();
    vocab.intern("alpha");
    vocab.intern("beta");
    vocab.intern("gamma");
    octopus_topics::TopicModel::from_rows(
        vocab,
        vec![
            vec![0.8, 0.1, 0.1],
            vec![0.1, 0.8, 0.1],
            vec![0.1, 0.1, 0.8],
        ],
        vec![1.0 / 3.0; 3],
    )
    .unwrap()
}
