//! Determinism contract of the staged offline-build pipeline: for a fixed
//! `config.seed`, the artifacts are bit-identical across repeated builds
//! and across thread counts (1-thread pool vs the default pool), because
//! every randomized work unit draws from its own index-derived RNG stream
//! and every parallel combinator assembles results in unit order.

use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::BoundKind;
use octopus_core::offline::{self, OfflineArtifacts, STAGE_ORDER};
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};
use std::sync::Arc;

/// A 3-topic graph big enough that every stage has real work units.
fn fixture_graph() -> TopicGraph {
    let mut b = GraphBuilder::new(3);
    for i in 0..60 {
        b.add_node(format!("user-{i}"));
    }
    // three topic-disjoint hubs plus a sprinkle of cross links
    for (hub, z) in [(0u32, 0usize), (1, 1), (2, 2)] {
        for v in 0..15u32 {
            let dst = 3 + z as u32 * 15 + v;
            b.add_edge(NodeId(hub), NodeId(dst), &[(z, 0.6)]).unwrap();
        }
    }
    for v in 3..20u32 {
        b.add_edge(NodeId(v), NodeId(v + 20), &[(0, 0.15), (1, 0.1)])
            .unwrap();
    }
    b.build().unwrap()
}

fn configs() -> Vec<OctopusConfig> {
    let base = OctopusConfig {
        piks_index_size: 400,
        mis_rr_per_topic: 800,
        k_max: 5,
        seed: 0xD57E_2217,
        ..Default::default()
    };
    vec![
        OctopusConfig {
            kim: KimEngineChoice::Mis,
            ..base.clone()
        },
        OctopusConfig {
            kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
            ..base.clone()
        },
        OctopusConfig {
            kim: KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 6,
                direct_eps: 0.05,
            },
            ..base
        },
    ]
}

/// Field-by-field identity of everything derived from randomness.
fn assert_artifacts_identical(a: &OfflineArtifacts, b: &OfflineArtifacts, what: &str) {
    assert_eq!(a.cap, b.cap, "{what}: spread cap differs");
    assert_eq!(a.pb, b.pb, "{what}: PB bound tables differ");
    assert_eq!(a.mis, b.mis, "{what}: MIS seed tables differ");
    assert_eq!(a.samples, b.samples, "{what}: topic samples differ");
    assert_eq!(a.piks_index, b.piks_index, "{what}: PIKS worlds differ");
}

#[test]
fn rebuilding_is_bit_identical() {
    let g = fixture_graph();
    for config in configs() {
        let a = offline::build(&g, &config);
        let b = offline::build(&g, &config);
        assert_artifacts_identical(&a, &b, &format!("rebuild under {:?}", config.kim));
    }
}

#[test]
fn one_thread_and_many_threads_agree() {
    let g = fixture_graph();
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let many = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    for config in configs() {
        let a = single.install(|| offline::build(&g, &config));
        let b = many.install(|| offline::build(&g, &config));
        assert_artifacts_identical(
            &a,
            &b,
            &format!("1-thread vs 8-thread under {:?}", config.kim),
        );
    }
}

#[test]
fn different_seeds_actually_differ() {
    // guard against the determinism tests passing vacuously (e.g. a seed
    // that never reaches the samplers)
    let g = fixture_graph();
    let config = OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 400,
        mis_rr_per_topic: 800,
        k_max: 5,
        ..Default::default()
    };
    let a = offline::build(&g, &config);
    let b = offline::build(
        &g,
        &OctopusConfig {
            seed: config.seed ^ 0xFFFF,
            ..config.clone()
        },
    );
    assert_ne!(
        a.piks_index, b.piks_index,
        "PIKS worlds must depend on the seed"
    );
    assert_ne!(a.mis, b.mis, "MIS tables must depend on the seed");
}

#[test]
fn timings_cover_every_stage() {
    let g = fixture_graph();
    let art = offline::build(&g, &configs()[0]);
    let names: Vec<&str> = art.timings.iter().map(|t| t.stage).collect();
    assert_eq!(names, STAGE_ORDER.to_vec());
}

#[test]
fn engine_queries_agree_across_thread_counts() {
    // end-to-end: engines built under different pools answer identically
    let g = fixture_graph();
    let config = configs().remove(1);
    let model = model_for(&g);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let e1 = single
        .install(|| Octopus::new(g.clone(), model.clone(), config.clone()))
        .expect("engine builds");
    let e2 = Octopus::new(g, model, config).expect("engine builds");
    let a = e1.find_influencers("alpha", 3).expect("query");
    let b = e2.find_influencers("alpha", 3).expect("query");
    let seeds = |ans: &octopus_core::engine::KimAnswer| {
        ans.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
    };
    assert_eq!(seeds(&a), seeds(&b));
    assert_eq!(a.result.spread, b.result.spread);
}

#[test]
fn engine_is_shareable_behind_an_arc() {
    // the Send + Sync contract, exercised: one Arc'd engine, many threads
    let g = fixture_graph();
    let engine = Arc::new(
        Octopus::new(g, model_for(&fixture_graph()), configs().remove(0)).expect("engine builds"),
    );
    let mut handles = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            engine.find_influencers("alpha", 2).expect("query").seeds[0].node
        }));
    }
    let firsts: Vec<NodeId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        firsts.windows(2).all(|w| w[0] == w[1]),
        "threads must agree: {firsts:?}"
    );
}

/// A 3-topic model whose vocabulary maps one word to each topic.
fn model_for(g: &TopicGraph) -> octopus_topics::TopicModel {
    assert_eq!(g.num_topics(), 3);
    let mut vocab = octopus_topics::Vocabulary::new();
    vocab.intern("alpha");
    vocab.intern("beta");
    vocab.intern("gamma");
    octopus_topics::TopicModel::from_rows(
        vocab,
        vec![
            vec![0.8, 0.1, 0.1],
            vec![0.1, 0.8, 0.1],
            vec![0.1, 0.1, 0.8],
        ],
        vec![1.0 / 3.0; 3],
    )
    .unwrap()
}
