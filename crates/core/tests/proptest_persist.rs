//! Property tests for the artifact cache: fingerprint sensitivity (any
//! single-edge, single-weight, config-field, or seed perturbation changes
//! the cache key; identical inputs never do) and codec round-trips on
//! random graphs.

use octopus_core::engine::{KimEngineChoice, OctopusConfig};
use octopus_core::kim::BoundKind;
use octopus_core::offline::persist::{self, Fingerprint};
use octopus_core::offline::{self, OfflineArtifacts};
use octopus_core::piks::PiksConfig;
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};
use proptest::prelude::*;

/// `(src, dst, topic, probability)` — one edge of a generated graph.
type EdgeSpec = (u32, u32, usize, f64);

/// Deduplicated, self-loop-free edge list. Always non-empty (a fallback
/// edge is injected) so "perturb edge `i`" is well-defined.
fn clean_edges(raw: Vec<EdgeSpec>) -> Vec<EdgeSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for (u, v, z, p) in raw {
        if u != v && seen.insert((u, v)) {
            edges.push((u, v, z, p));
        }
    }
    if edges.is_empty() {
        edges.push((0, 1, 0, 0.42));
    }
    edges
}

fn build_graph(n: usize, edges: &[EdgeSpec]) -> TopicGraph {
    let mut b = GraphBuilder::new(2);
    for i in 0..n {
        b.add_node(format!("user-{i}"));
    }
    for &(u, v, z, p) in edges {
        b.add_edge(NodeId(u), NodeId(v), &[(z, p)]).unwrap();
    }
    b.build().unwrap()
}

fn arb_net() -> impl Strategy<Value = (usize, Vec<EdgeSpec>)> {
    (4usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0usize..2, 0.1f64..0.8), 3..24)
            .prop_map(move |raw| (n, clean_edges(raw)))
    })
}

fn base_config() -> OctopusConfig {
    OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 64,
        mis_rr_per_topic: 120,
        k_max: 3,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rebuilding the same graph from the same spec keys identically —
    /// the fingerprint is a pure function of the inputs.
    #[test]
    fn identical_inputs_identical_keys((n, edges) in arb_net()) {
        let config = base_config();
        let a = Fingerprint::compute(&build_graph(n, &edges), &config);
        let b = Fingerprint::compute(&build_graph(n, &edges), &config);
        prop_assert_eq!(a, b);
    }

    /// Removing any single edge changes the graph component of the key.
    #[test]
    fn single_edge_removal_changes_key((n, edges) in arb_net(), pick in 0usize..64) {
        let config = base_config();
        let full = Fingerprint::compute(&build_graph(n, &edges), &config);
        let victim = pick % edges.len();
        let mut pruned = edges.clone();
        pruned.remove(victim);
        if pruned.is_empty() {
            // a graph must keep at least the node set; zero edges is still
            // a different topology
            let cut = Fingerprint::compute(&build_graph(n, &pruned), &config);
            prop_assert_ne!(full.graph, cut.graph);
        } else {
            let cut = Fingerprint::compute(&build_graph(n, &pruned), &config);
            prop_assert_ne!(full.graph, cut.graph);
            prop_assert_eq!(full.config, cut.config, "config component must not move");
        }
    }

    /// Perturbing any single edge weight changes the graph component.
    #[test]
    fn single_weight_perturbation_changes_key((n, edges) in arb_net(), pick in 0usize..64) {
        let config = base_config();
        let original = Fingerprint::compute(&build_graph(n, &edges), &config);
        let victim = pick % edges.len();
        let mut nudged = edges.clone();
        nudged[victim].3 = (nudged[victim].3 + 0.1).min(0.95);
        let perturbed = Fingerprint::compute(&build_graph(n, &nudged), &config);
        prop_assert_ne!(original.graph, perturbed.graph);
        prop_assert_eq!(original.seed, perturbed.seed);
    }

    /// Any seed change moves the seed component; the graph component stays.
    #[test]
    fn seed_changes_key((n, edges) in arb_net(), delta in 1u64..u64::MAX) {
        let g = build_graph(n, &edges);
        let config = base_config();
        let a = Fingerprint::compute(&g, &config);
        let b = Fingerprint::compute(&g, &OctopusConfig { seed: config.seed ^ delta, ..config });
        prop_assert_ne!(a, b);
        prop_assert_eq!(a.graph, b.graph);
        prop_assert_eq!(a.config, b.config);
    }

    /// The artifact codec round-trips the full artifact set of random
    /// graphs with every stage reused, and a reloaded artifact re-encodes
    /// to the identical bytes (canonical encoding).
    #[test]
    fn codec_round_trips_on_random_graphs((n, edges) in arb_net()) {
        let g = build_graph(n, &edges);
        let config = base_config();
        let fp = Fingerprint::compute(&g, &config);
        let keys = persist::StageKeys::compute(&g, &config);
        let art = offline::build(&g, &config);
        let raw = persist::encode(&art, &fp, &keys, 1);
        let slots = persist::load_sections(&raw, &keys, &g, &config).expect("reload");
        let back = offline::build_with_reuse(&g, &config, slots);
        prop_assert!(back.fully_reused(), "unchanged inputs reuse everything");
        assert_artifacts_equal(&art, &back);
        let again = persist::encode(&back, &fp, &keys, 1);
        prop_assert_eq!(raw.to_vec(), again.to_vec(), "re-encode must be canonical");
    }

    /// Every strict prefix of a random graph's encoding loses at least the
    /// final section (the trie) — a truncated container can never be
    /// mistaken for a complete one, whatever the cut point.
    #[test]
    fn truncation_never_salvages_everything((n, edges) in arb_net(), frac in 0.0f64..1.0) {
        let g = build_graph(n, &edges);
        let config = base_config();
        let fp = Fingerprint::compute(&g, &config);
        let keys = persist::StageKeys::compute(&g, &config);
        let raw = persist::encode(&offline::build(&g, &config), &fp, &keys, 1);
        let cut = (((raw.len() as f64) * frac) as usize).min(raw.len() - 1);
        match persist::load_sections(&raw[..cut], &keys, &g, &config) {
            Err(_) => {} // header/table damage: clean error
            Ok(slots) => prop_assert!(
                slots.names.is_none(),
                "a strict prefix cannot contain the final section intact"
            ),
        }
    }

    /// Per-stage keys are a pure function of the inputs, and a weight
    /// perturbation invalidates exactly the probability-reading stages.
    #[test]
    fn stage_keys_track_weight_slices((n, edges) in arb_net(), pick in 0usize..64) {
        let config = base_config();
        let a = persist::StageKeys::compute(&build_graph(n, &edges), &config);
        let b = persist::StageKeys::compute(&build_graph(n, &edges), &config);
        prop_assert_eq!(a, b, "identical inputs must key identically");
        let victim = pick % edges.len();
        let mut nudged = edges.clone();
        nudged[victim].3 = (nudged[victim].3 + 0.1).min(0.95);
        let c = persist::StageKeys::compute(&build_graph(n, &nudged), &config);
        prop_assert_ne!(a.cap, c.cap, "cap reads weights");
        prop_assert_ne!(a.mis, c.mis, "mis reads weights");
        prop_assert_eq!(a.names, c.names, "autocomplete never reads weights");
        prop_assert_eq!(a.piks, c.piks, "piks section key is derivation-only");
    }
}

fn assert_artifacts_equal(a: &OfflineArtifacts, b: &OfflineArtifacts) {
    assert_eq!(a.cap, b.cap);
    assert_eq!(a.pb, b.pb);
    assert_eq!(a.mis, b.mis);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.piks_index, b.piks_index);
    assert_eq!(a.names, b.names);
}

/// Every config field participates in the key: each single-field mutation
/// produces a config component different from the baseline, and all the
/// mutants are pairwise distinct (no accidental FNV collisions among the
/// interesting perturbations).
#[test]
fn every_config_field_perturbation_changes_key() {
    let g = build_graph(5, &[(0, 1, 0, 0.5), (1, 2, 1, 0.4), (2, 3, 0, 0.3)]);
    let base = base_config();
    type Mutator = Box<dyn Fn(&mut OctopusConfig)>;
    let mutators: Vec<(&str, Mutator)> = vec![
        ("kim→naive", Box::new(|c| c.kim = KimEngineChoice::Naive)),
        (
            "kim→best-effort/PB",
            Box::new(|c| c.kim = KimEngineChoice::BestEffort(BoundKind::Precomputation)),
        ),
        (
            "kim→best-effort/NB",
            Box::new(|c| c.kim = KimEngineChoice::BestEffort(BoundKind::Neighborhood)),
        ),
        (
            "kim→best-effort/LG",
            Box::new(|c| c.kim = KimEngineChoice::BestEffort(BoundKind::LocalGraph)),
        ),
        (
            "kim→topic-sample",
            Box::new(|c| {
                c.kim = KimEngineChoice::TopicSample {
                    bound: BoundKind::Precomputation,
                    extra_samples: 4,
                    direct_eps: 0.05,
                }
            }),
        ),
        (
            "kim→topic-sample/extra",
            Box::new(|c| {
                c.kim = KimEngineChoice::TopicSample {
                    bound: BoundKind::Precomputation,
                    extra_samples: 5,
                    direct_eps: 0.05,
                }
            }),
        ),
        (
            "kim→topic-sample/eps",
            Box::new(|c| {
                c.kim = KimEngineChoice::TopicSample {
                    bound: BoundKind::Precomputation,
                    extra_samples: 4,
                    direct_eps: 0.1,
                }
            }),
        ),
        ("mia_theta", Box::new(|c| c.mia_theta *= 0.5)),
        ("k_max", Box::new(|c| c.k_max += 1)),
        ("mis_rr_per_topic", Box::new(|c| c.mis_rr_per_topic += 1)),
        ("piks_index_size", Box::new(|c| c.piks_index_size += 1)),
        ("pb_safety", Box::new(|c| c.pb_safety += 0.01)),
        ("lg_depth", Box::new(|c| c.lg_depth += 1)),
        ("lg_safety", Box::new(|c| c.lg_safety += 0.01)),
        (
            "piks.min_posterior_consistency",
            Box::new(|c| c.piks.min_posterior_consistency += 0.01),
        ),
        (
            "piks.min_pairwise_consistency",
            Box::new(|c| c.piks.min_pairwise_consistency += 0.01),
        ),
        ("top_paths", Box::new(|c| c.top_paths += 1)),
        ("cache_capacity", Box::new(|c| c.cache_capacity += 1)),
        ("cache_tolerance", Box::new(|c| c.cache_tolerance *= 2.0)),
        (
            "piks (whole struct)",
            Box::new(|c| {
                c.piks = PiksConfig {
                    min_posterior_consistency: 0.9,
                    min_pairwise_consistency: 0.9,
                }
            }),
        ),
    ];
    let baseline = Fingerprint::compute(&g, &base);
    let mut seen = vec![("baseline", baseline.config)];
    for (what, mutate) in &mutators {
        let mut config = base.clone();
        mutate(&mut config);
        let fp = Fingerprint::compute(&g, &config);
        assert_eq!(fp.graph, baseline.graph, "{what}: graph component moved");
        assert_eq!(fp.seed, baseline.seed, "{what}: seed component moved");
        for (other, key) in &seen {
            assert_ne!(
                fp.config, *key,
                "{what} collides with {other} on the config component"
            );
        }
        seen.push((what, fp.config));
    }
}

/// The seed never leaks into the config component and vice versa.
#[test]
fn seed_is_its_own_component() {
    let g = build_graph(4, &[(0, 1, 0, 0.5), (2, 3, 1, 0.6)]);
    let base = base_config();
    let reseeded = Fingerprint::compute(
        &g,
        &OctopusConfig {
            seed: base.seed.wrapping_add(1),
            ..base.clone()
        },
    );
    let baseline = Fingerprint::compute(&g, &base);
    assert_eq!(baseline.config, reseeded.config);
    assert_eq!(baseline.graph, reseeded.graph);
    assert_ne!(baseline.seed, reseeded.seed);
}

/// Renaming a user changes the key: names feed the autocomplete artifact,
/// so two graphs differing only in names must not share cache files.
#[test]
fn node_rename_changes_key() {
    let edges = [(0u32, 1u32, 0usize, 0.5f64)];
    let named = |name: &str| {
        let mut b = GraphBuilder::new(2);
        b.add_node(name);
        b.add_node("other");
        for &(u, v, z, p) in &edges {
            b.add_edge(NodeId(u), NodeId(v), &[(z, p)]).unwrap();
        }
        b.build().unwrap()
    };
    let config = base_config();
    let a = Fingerprint::compute(&named("alice"), &config);
    let b = Fingerprint::compute(&named("alicia"), &config);
    assert_ne!(a.graph, b.graph);
}
