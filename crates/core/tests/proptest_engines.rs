//! Property tests for the KIM engine family: agreement with greedy
//! selection, bound-pruning soundness, and targeted-IM reductions.

use octopus_core::kim::bounds::{global_spread_cap, NeighborhoodBound, PrecompBound, TrivialBound};
use octopus_core::kim::{Audience, BestEffortKim, KimAlgorithm, TargetedKim};
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use proptest::prelude::*;

const THETA: f64 = 1.0 / 320.0;

/// Random small two-topic graph.
fn arb_graph() -> impl Strategy<Value = TopicGraph> {
    (4usize..14).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0usize..2, 0.1f64..0.8), 2..n * 2)
            .prop_map(move |edges| {
                let mut b = GraphBuilder::new(2);
                let _ = b.add_nodes(n);
                for (u, v, z, p) in edges {
                    if u != v {
                        b.add_edge(NodeId(u), NodeId(v), &[(z, p)]).unwrap();
                    }
                }
                b.build().unwrap()
            })
    })
}

fn arb_gamma() -> impl Strategy<Value = TopicDistribution> {
    (0.0f64..=1.0).prop_map(|a| TopicDistribution::new(vec![a, 1.0 - a]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The trivial bound degenerates best-effort into exhaustive CELF; real
    /// bounds must select the SAME seeds while evaluating no more
    /// candidates (soundness + usefulness of the bounds).
    #[test]
    fn bounded_engines_match_exhaustive_celf(g in arb_graph(), gamma in arb_gamma(), k in 1usize..4) {
        let cap = global_spread_cap(&g, THETA);
        let exhaustive =
            BestEffortKim::new(&g, TrivialBound::new(g.node_count()), THETA).select(&gamma, k);
        let nb = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA).select(&gamma, k);
        // seed identity can differ on exact ties (equal-gain candidates are
        // interchangeable); the achieved spread must not.
        prop_assert!(
            (nb.spread - exhaustive.spread).abs() < 1e-9,
            "NB spread {} != exhaustive {}", nb.spread, exhaustive.spread
        );
        prop_assert!(nb.stats.exact_evaluations <= exhaustive.stats.exact_evaluations);
    }

    /// PB with a generous safety factor also matches on (mostly) topic-
    /// disjoint random graphs.
    #[test]
    fn pb_engine_matches_exhaustive(g in arb_graph(), k in 1usize..3) {
        let gamma = TopicDistribution::uniform(2);
        let exhaustive =
            BestEffortKim::new(&g, TrivialBound::new(g.node_count()), THETA).select(&gamma, k);
        let pb_table = PrecompBound::build(&g, THETA, 1.5);
        let pb = BestEffortKim::new(&g, pb_table, THETA).select(&gamma, k);
        prop_assert!(
            (pb.spread - exhaustive.spread).abs() < 1e-9,
            "PB spread {} != exhaustive {}", pb.spread, exhaustive.spread
        );
    }

    /// Selection is a greedy prefix chain: seeds(k) is a prefix of
    /// seeds(k+1).
    #[test]
    fn greedy_prefix_property(g in arb_graph(), gamma in arb_gamma(), k in 1usize..4) {
        let cap = global_spread_cap(&g, THETA);
        let engine = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA);
        let small = engine.select(&gamma, k);
        let large = engine.select(&gamma, k + 1);
        prop_assert_eq!(&small.seeds[..], &large.seeds[..small.seeds.len().min(large.seeds.len())]);
    }

    /// Targeted IM with the everyone-audience never scores higher than the
    /// audience total, and the weighted spread of any seed set is bounded
    /// by it.
    #[test]
    fn targeted_spread_bounded_by_audience(g in arb_graph(), gamma in arb_gamma()) {
        let n = g.node_count();
        let t = TargetedKim::new(&g, Audience::everyone(n));
        let res = t.select(&gamma, 2);
        prop_assert!(res.spread <= n as f64 + 1e-9);
        let seeds: Vec<NodeId> = (0..2.min(n) as u32).map(NodeId).collect();
        let ws = t.weighted_spread(&gamma, &seeds);
        prop_assert!(ws <= t.audience().total() + 1e-9);
        prop_assert!(ws >= 0.0);
    }

    /// Shrinking the audience can only shrink the weighted spread of a
    /// fixed seed set (monotonicity in the weights).
    #[test]
    fn targeted_monotone_in_audience(g in arb_graph(), gamma in arb_gamma(), cut in 0usize..14) {
        let n = g.node_count();
        let full = TargetedKim::new(&g, Audience::everyone(n));
        let mut w = vec![1.0; n];
        w[cut % n] = 0.0;
        let smaller = TargetedKim::new(&g, Audience::new(w));
        let seeds = vec![NodeId(0)];
        // same rr_count & seed ⇒ same possible worlds sampled per root
        let a = full.weighted_spread(&gamma, &seeds);
        let b = smaller.weighted_spread(&gamma, &seeds);
        // statistical estimators: allow small slack scaled by n
        prop_assert!(b <= a + 0.1 * n as f64, "audience shrink raised spread: {b} > {a}");
    }
}
