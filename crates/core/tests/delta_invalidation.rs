//! The incremental-rebuild contract: after a small graph delta,
//! `open_or_build` reuses **exactly** the stages whose inputs are unchanged
//! — never a stage that read something that changed (correctness), never
//! rebuilding a stage that read nothing that changed (precision) — and the
//! partially rebuilt engine is bit-identical to a fresh build.
//!
//! Delta shapes, per the stage input-slice table in
//! `offline::persist::StageKeys`:
//!
//! * **rename** → only `autocomplete` rebuilds;
//! * **weight nudge** → `spread-cap`/`pb-bound`/`mis-tables` rebuild **only
//!   the topics in the delta's footprint** ([`GraphDelta::touched_topics`]),
//!   `topic-samples` rebuilds (it reads the whole probability table),
//!   `autocomplete` is reused, and exactly the PIKS worlds whose BFS
//!   footprint contains the nudged edge rebuild;
//! * **edge insert** → the weight stages rebuild exactly the topics carried
//!   by the new edge's probability payload, and exactly the PIKS worlds
//!   whose footprint contains a *changed* edge id rebuild (the new edge,
//!   plus every edge whose dense id shifted).
//!
//! [`GraphDelta::touched_topics`]: octopus_graph::delta::GraphDelta::touched_topics

use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig, SystemReport};
use octopus_core::kim::BoundKind;
use octopus_core::offline::persist::StageKeys;
use octopus_core::offline::{self, OfflineArtifacts, PIKS_WORLD_SEED_XOR};
use octopus_core::piks::InfluencerIndex;
use octopus_graph::{delta, EdgeId, GraphBuilder, NodeId, TopicGraph};
use octopus_topics::{TopicModel, Vocabulary};
use proptest::prelude::*;
use std::collections::HashSet;

/// `(src, dst, topic, probability)` — one edge of a generated graph.
type EdgeSpec = (u32, u32, usize, f64);

fn clean_edges(raw: Vec<EdgeSpec>) -> Vec<EdgeSpec> {
    let mut seen = HashSet::new();
    let mut edges = Vec::new();
    for (u, v, z, p) in raw {
        if u != v && seen.insert((u, v)) {
            edges.push((u, v, z, p));
        }
    }
    if edges.is_empty() {
        edges.push((0, 1, 0, 0.42));
    }
    edges
}

fn build_graph(n: usize, edges: &[EdgeSpec]) -> TopicGraph {
    let mut b = GraphBuilder::new(2);
    for i in 0..n {
        b.add_node(format!("user-{i}"));
    }
    for &(u, v, z, p) in edges {
        b.add_edge(NodeId(u), NodeId(v), &[(z, p)]).unwrap();
    }
    b.build().unwrap()
}

fn arb_net() -> impl Strategy<Value = (usize, Vec<EdgeSpec>)> {
    (5usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0usize..2, 0.1f64..0.8), 4..28)
            .prop_map(move |raw| (n, clean_edges(raw)))
    })
}

fn config() -> OctopusConfig {
    OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 96,
        mis_rr_per_topic: 150,
        k_max: 3,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A node rename invalidates the autocomplete key and nothing else.
    #[test]
    fn rename_invalidates_only_name_dependent_stages(
        (n, edges) in arb_net(),
        pick in 0usize..64,
    ) {
        let g = build_graph(n, &edges);
        let cfg = config();
        let base = StageKeys::compute(&g, &cfg);
        let victim = NodeId((pick % n) as u32);
        let renamed = delta::rename_node(&g, victim, "renamed-somebody").unwrap();
        let keys = StageKeys::compute(&renamed, &cfg);
        prop_assert_eq!(keys.cap, base.cap);
        prop_assert_eq!(keys.pb, base.pb);
        prop_assert_eq!(keys.mis, base.mis);
        prop_assert_eq!(keys.samples, base.samples);
        prop_assert_eq!(keys.piks, base.piks);
        prop_assert_ne!(keys.names, base.names);
        // and the PIKS worlds themselves are footprint-stable: names are
        // not part of any world's footprint
        let idx = InfluencerIndex::build(&g, 32, cfg.seed ^ PIKS_WORLD_SEED_XOR);
        for j in 0..idx.len() {
            prop_assert_eq!(
                octopus_core::piks::footprint_hash(&g, idx.world_nodes(j)),
                octopus_core::piks::footprint_hash(&renamed, idx.world_nodes(j)),
            );
        }
    }

    /// A weight nudge always invalidates the PB and MIS keys (when their
    /// stages are enabled): no probability change may ever reuse them.
    #[test]
    fn weight_nudge_never_reuses_pb_or_mis(
        (n, edges) in arb_net(),
        pick in 0usize..64,
        delta_p in 0.03f64..0.15,
    ) {
        let g = build_graph(n, &edges);
        let victim = EdgeId((pick % g.edge_count()) as u32);
        let nudged = delta::nudge_weights(&g, &[victim], delta_p).unwrap();
        for kim in [
            KimEngineChoice::Mis,
            KimEngineChoice::BestEffort(BoundKind::Precomputation),
        ] {
            let cfg = OctopusConfig { kim, ..config() };
            let a = StageKeys::compute(&g, &cfg);
            let b = StageKeys::compute(&nudged, &cfg);
            if offline::needs_pb(&cfg) {
                prop_assert_ne!(a.pb, b.pb, "PB read the nudged table");
            }
            if offline::needs_mis(&cfg) {
                prop_assert_ne!(a.mis, b.mis, "MIS read the nudged table");
            }
            prop_assert_ne!(a.cap, b.cap, "the cap read the nudged table");
            prop_assert_eq!(a.names, b.names, "autocomplete never reads weights");
        }
    }

    /// A weight nudge invalidates **exactly** the topics in its footprint:
    /// for every topic in [`GraphDelta::touched_topics`] the per-topic
    /// cap/PB/MIS keys move (when the stage is enabled), and for every topic
    /// outside it they are bit-identical — a topic-`z`-confined nudge leaves
    /// all other topics' offline sub-sections reusable.
    ///
    /// [`GraphDelta::touched_topics`]: octopus_graph::delta::GraphDelta::touched_topics
    #[test]
    fn topic_confined_nudge_invalidates_exactly_footprint_topics(
        (n, edges) in arb_net(),
        pick in 0usize..64,
        delta_p in 0.03f64..0.15,
    ) {
        let g = build_graph(n, &edges);
        let victim = EdgeId((pick % g.edge_count()) as u32);
        let shape = delta::GraphDelta::NudgeWeights { edges: vec![victim], delta: delta_p };
        let touched = shape.touched_topics(&g).expect("victim edge is valid");
        prop_assert!(!touched.is_empty(), "every edge carries at least one topic");
        let nudged = shape.apply(&g).unwrap();
        for kim in [
            KimEngineChoice::Mis,
            KimEngineChoice::BestEffort(BoundKind::Precomputation),
        ] {
            let cfg = OctopusConfig { kim, ..config() };
            let a = StageKeys::compute(&g, &cfg);
            let b = StageKeys::compute(&nudged, &cfg);
            for z in 0..g.num_topics() {
                if touched.contains(&z) {
                    prop_assert_ne!(a.cap[z], b.cap[z], "topic {} cap in footprint", z);
                    if offline::needs_pb(&cfg) {
                        prop_assert_ne!(a.pb[z], b.pb[z], "topic {} PB in footprint", z);
                    }
                    if offline::needs_mis(&cfg) {
                        prop_assert_ne!(a.mis[z], b.mis[z], "topic {} MIS in footprint", z);
                    }
                } else {
                    prop_assert_eq!(a.cap[z], b.cap[z], "topic {} cap untouched", z);
                    prop_assert_eq!(a.pb[z], b.pb[z], "topic {} PB untouched", z);
                    prop_assert_eq!(a.mis[z], b.mis[z], "topic {} MIS untouched", z);
                }
            }
        }
    }

    /// An edge insert invalidates exactly the PIKS worlds whose BFS
    /// footprint contains a changed edge id — the new edge, or any edge
    /// whose dense id shifted — and reuses every other world.
    #[test]
    fn edge_insert_invalidates_exactly_footprint_hit_worlds(
        (n, edges) in arb_net(),
        pick in 0usize..64,
    ) {
        let g = build_graph(n, &edges);
        let cfg = config();
        let r = 64usize;
        let seed = cfg.seed ^ PIKS_WORLD_SEED_XOR;
        let idx = InfluencerIndex::build(&g, r, seed);
        let mut buf = bytes::BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();

        // pick an absent edge (u, v); skip the case when the graph is complete
        let mut absent = Vec::new();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v && g.find_edge(NodeId(u), NodeId(v)).is_none() {
                    absent.push((NodeId(u), NodeId(v)));
                }
            }
        }
        prop_assume!(!absent.is_empty());
        let (u, v) = absent[pick % absent.len()];
        let bigger = delta::insert_edge(&g, u, v, &[(0, 0.37)]).unwrap();
        let inserted = bigger.find_edge(u, v).unwrap();

        // the insert carries only a topic-0 entry, so topic 1's weight-stage
        // keys survive even though every later edge id shifted
        let ka = StageKeys::compute(&g, &cfg);
        let kb = StageKeys::compute(&bigger, &cfg);
        prop_assert_ne!(ka.cap[0], kb.cap[0], "topic 0 carries the new edge");
        prop_assert_eq!(ka.cap[1], kb.cap[1], "topic 1 never saw the insert");
        prop_assert_eq!(ka.mis[1], kb.mis[1], "topic 1 never saw the insert");

        // changed edge ids in OLD numbering: every old edge at or after the
        // insertion slot shifted up by one
        let shifted = |e: EdgeId| e.0 >= inserted.0;
        let expected: Vec<bool> = (0..r)
            .map(|j| {
                let nodes = idx.world_nodes(j);
                let touches_changed = nodes.iter().any(|&gnode| {
                    g.in_edges(NodeId(gnode)).any(|(_, e)| shifted(e))
                        || gnode == v.0 // the new edge lands in v's in-list
                });
                !touches_changed
            })
            .collect();

        let reuse = InfluencerIndex::load_reusable(&frozen, &bigger).unwrap();
        prop_assert_eq!(reuse.reusable_worlds(), expected);

        // and the partial rebuild is bit-identical to a fresh build
        let (rebuilt, reused) = InfluencerIndex::build_with_reuse(&bigger, r, seed, &reuse);
        prop_assert_eq!(reused, reuse.available());
        prop_assert_eq!(rebuilt, InfluencerIndex::build(&bigger, r, seed));
    }
}

/// The full engine path: open → delta → reopen, asserting the per-stage
/// report and bit-identity against a fresh build for every delta shape.
#[test]
fn reopen_after_delta_reuses_exactly_unchanged_stages() {
    let g = build_graph(
        9,
        &[
            (0, 1, 0, 0.6),
            (0, 2, 0, 0.55),
            (1, 3, 1, 0.5),
            (2, 4, 1, 0.45),
            (3, 5, 0, 0.4),
            (4, 6, 1, 0.35),
            (5, 7, 0, 0.3),
            (6, 8, 1, 0.25),
            (7, 8, 0, 0.2),
        ],
    );
    let model = model_for(&g);
    let cfg = config();
    let dir = std::env::temp_dir().join("octopus_delta_invalidation_e2e");
    std::fs::remove_dir_all(&dir).ok();

    let first = Octopus::open_or_build(g.clone(), model.clone(), cfg.clone(), &dir).unwrap();
    assert!(!first.cache_hit(), "cold start builds");

    // rename: everything except the trie must be reused
    let renamed = delta::rename_node(&g, NodeId(4), "brand-new-name").unwrap();
    let engine = Octopus::open_or_build(renamed.clone(), model.clone(), cfg.clone(), &dir).unwrap();
    let report = engine.system_report();
    assert!(!report.cache_hit, "a partial rebuild is not a full hit");
    for s in &report.stage_reuse {
        match s.stage {
            "autocomplete" => assert_eq!(s.reused, 0, "rename must rebuild the trie"),
            _ => assert!(s.is_full(), "rename must reuse {}: {s:?}", s.stage),
        }
    }
    assert_identical_to_fresh(&renamed, &cfg, engine.offline_artifacts(), "rename");

    // weight nudge on top of the rename, confined to one topic: the weight
    // stages rebuild exactly the nudged topic's units and reuse every other
    // topic's, the trie (already cached for the renamed graph) and untouched
    // worlds reuse
    let shape = delta::GraphDelta::NudgeWeights {
        edges: vec![EdgeId(3)],
        delta: 0.07,
    };
    let touched = shape.touched_topics(&renamed).unwrap();
    assert_eq!(touched.len(), 1, "EdgeId(3) is a single-topic edge");
    let nudged = shape.apply(&renamed).unwrap();
    let engine = Octopus::open_or_build(nudged.clone(), model.clone(), cfg.clone(), &dir).unwrap();
    let report = engine.system_report();
    assert!(!report.cache_hit);
    let by_stage = |r: &SystemReport, stage: &str| {
        r.stage_reuse
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("stage {stage} missing from report"))
            .clone()
    };
    let z_count = nudged.num_topics();
    let spared = z_count - touched.len();
    let cap = by_stage(&report, "spread-cap");
    assert_eq!(
        (cap.reused, cap.total),
        (spared, z_count),
        "a topic-confined nudge reuses every other topic's cap unit: {cap:?}"
    );
    let mis = by_stage(&report, "mis-tables");
    assert_eq!(
        (mis.reused, mis.total),
        (spared, z_count),
        "a topic-confined nudge reuses every other topic's MIS table: {mis:?}"
    );
    assert!(by_stage(&report, "autocomplete").is_full());
    let piks = by_stage(&report, "piks-worlds");
    assert!(
        piks.reused > 0 && piks.reused < piks.total,
        "a one-edge nudge must reuse some worlds and rebuild others: {piks:?}"
    );
    assert_identical_to_fresh(&nudged, &cfg, engine.offline_artifacts(), "nudge");

    // probe answers agree with a cache-less engine
    let fresh = Octopus::new(nudged.clone(), model.clone(), cfg.clone()).unwrap();
    let a = engine.find_influencers("alpha", 3).unwrap();
    let b = fresh.find_influencers("alpha", 3).unwrap();
    assert_eq!(
        a.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
        b.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
    );
    assert_eq!(a.result.spread, b.result.spread);

    // reopening with no further delta is now a full hit again
    let again = Octopus::open_or_build(nudged, model, cfg, &dir).unwrap();
    assert!(again.cache_hit(), "unchanged reopen must fully hit");
    std::fs::remove_dir_all(&dir).ok();
}

fn assert_identical_to_fresh(
    g: &TopicGraph,
    cfg: &OctopusConfig,
    got: &OfflineArtifacts,
    what: &str,
) {
    let fresh = offline::build(g, cfg);
    assert_eq!(got.cap, fresh.cap, "{what}: cap");
    assert_eq!(got.pb, fresh.pb, "{what}: pb");
    assert_eq!(got.mis, fresh.mis, "{what}: mis");
    assert_eq!(got.samples, fresh.samples, "{what}: samples");
    assert_eq!(got.piks_index, fresh.piks_index, "{what}: piks");
    assert_eq!(got.names, fresh.names, "{what}: trie");
}

/// A 2-topic model whose vocabulary maps one word to each topic.
fn model_for(g: &TopicGraph) -> TopicModel {
    assert_eq!(g.num_topics(), 2);
    let mut vocab = Vocabulary::new();
    vocab.intern("alpha");
    vocab.intern("beta");
    TopicModel::from_rows(
        vocab,
        vec![vec![0.85, 0.15], vec![0.15, 0.85]],
        vec![0.5, 0.5],
    )
    .unwrap()
}
