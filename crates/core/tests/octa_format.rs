//! Pins the OCTA v5 container bytes to the normative specification in
//! `ARCHITECTURE.md` (§"The OCTA v5 artifact container").
//!
//! The parser below is written *independently* against the documented
//! layout — it shares no framing helpers with the codec (it re-implements
//! FNV-1a from the documented constants and hardcodes every offset) — so if
//! the writer drifts from the spec, or the spec from the writer, this test
//! fails. Keep all three in sync: `offline/persist.rs`, `ARCHITECTURE.md`,
//! and this file.
//!
//! The second half of the file is the adversarial mapped-mode battery: a
//! memory-mapped open defers section checksums to first touch, so these
//! tests pin that truncation, misaligned offsets, and in-place bit flips
//! fail **closed** — at open or at first touch, never by serving garbage.

use octopus_core::engine::{KimEngineChoice, OctopusConfig};
use octopus_core::offline::persist::{self, Fingerprint, StageKeys};
use octopus_core::offline::{self, view};
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};

/// Documented header length: magic + version + pad + 3 fingerprint words +
/// write_seq + section count + pad.
const HEADER_LEN: usize = 48;
/// Documented section-table row length: tag + pad + key + off + len + checksum.
const ENTRY_LEN: usize = 40;

/// Independent FNV-1a 64 (documented constants, not the wire helper).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// Documented alignment rule: payloads start on 8-byte boundaries.
fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn u16_at(raw: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(raw[at..at + 2].try_into().unwrap())
}
fn u32_at(raw: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(raw[at..at + 4].try_into().unwrap())
}
fn u64_at(raw: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(raw[at..at + 8].try_into().unwrap())
}
fn f64_at(raw: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(raw[at..at + 8].try_into().unwrap())
}

/// One parsed section-table row.
#[derive(Clone, Copy)]
struct Entry {
    tag: u32,
    key: u64,
    off: usize,
    len: usize,
    checksum: u64,
}

/// Parse the section table at its documented offset (`3·Z + 3` rows, count
/// taken from the header), checking the pad words.
fn parse_table(raw: &[u8]) -> Vec<Entry> {
    let count = u32_at(raw, 40) as usize;
    (0..count)
        .map(|i| {
            let at = HEADER_LEN + i * ENTRY_LEN;
            assert_eq!(u32_at(raw, at + 4), 0, "table row {i} pad word");
            Entry {
                tag: u32_at(raw, at),
                key: u64_at(raw, at + 8),
                off: u64_at(raw, at + 16) as usize,
                len: u64_at(raw, at + 24) as usize,
                checksum: u64_at(raw, at + 32),
            }
        })
        .collect()
}

fn tiny_graph() -> TopicGraph {
    let mut b = GraphBuilder::new(2);
    for i in 0..8 {
        b.add_node(format!("user-{i}"));
    }
    for v in 1..=4u32 {
        b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6)]).unwrap();
    }
    for v in 5..=7u32 {
        b.add_edge(NodeId(1), NodeId(v), &[(1, 0.5)]).unwrap();
    }
    b.build().unwrap()
}

fn tiny_config() -> OctopusConfig {
    OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 24,
        mis_rr_per_topic: 80,
        k_max: 3,
        seed: 0x0C7A,
        ..Default::default()
    }
}

#[test]
fn container_bytes_follow_the_documented_layout() {
    let g = tiny_graph();
    let cfg = tiny_config();
    let fp = Fingerprint::compute(&g, &cfg);
    let keys = StageKeys::compute(&g, &cfg);
    let art = offline::build(&g, &cfg);
    let raw = persist::encode(&art, &fp, &keys, 0x5E0);

    // ---- header: magic "OCTA" | version u16 = 5 | pad u16 = 0 ----------
    assert_eq!(&raw[0..4], b"OCTA");
    assert_eq!(u16_at(&raw, 4), 5, "container version");
    assert_eq!(u16_at(&raw, 6), 0, "header pad word");
    // graph_fp u64 | config_fp u64 | seed u64 — all 8-aligned
    assert_eq!(u64_at(&raw, 8), fp.graph);
    assert_eq!(u64_at(&raw, 16), fp.config);
    assert_eq!(u64_at(&raw, 24), fp.seed);
    assert_eq!(fp.seed, 0x0C7A, "the seed word is the config seed verbatim");
    // write_seq u64: the per-directory write sequence, stored verbatim
    assert_eq!(u64_at(&raw, 32), 0x5E0, "write sequence word");
    assert_eq!(persist::read_write_seq(&raw).unwrap(), 0x5E0);
    // section_count u32 = 3·Z + 3 | pad u32 = 0
    let z_count = g.num_topics();
    assert_eq!(
        u32_at(&raw, 40) as usize,
        3 * z_count + 3,
        "one section per topic unit of cap/pb/mis plus three singletons"
    );
    assert_eq!(u32_at(&raw, 44), 0, "header tail pad word");

    // ---- section table ------------------------------------------------
    let entries = parse_table(&raw);
    // tags in documented order — `base | (z << 8)` for the topic-granular
    // stages (cap=1, pb=2, mis=3), every topic of a stage ascending, then
    // the bare singleton tags samples=4, piks=5, names=6
    let mut expect_tags: Vec<u32> = Vec::new();
    for base in [1u32, 2, 3] {
        for z in 0..z_count as u32 {
            expect_tags.push(base | (z << 8));
        }
    }
    expect_tags.extend([4, 5, 6]);
    assert_eq!(
        entries.iter().map(|e| e.tag).collect::<Vec<_>>(),
        expect_tags
    );
    // keys are the per-unit StageKeys in the same order
    let mut expect_keys: Vec<u64> = Vec::new();
    expect_keys.extend(&keys.cap);
    expect_keys.extend(&keys.pb);
    expect_keys.extend(&keys.mis);
    expect_keys.extend([keys.samples, keys.piks, keys.names]);
    assert_eq!(
        entries.iter().map(|e| e.key).collect::<Vec<_>>(),
        expect_keys
    );

    // ---- offsets: canonical, ascending, 8-aligned, in-bounds ------------
    // the first payload starts right after the table (already 8-aligned:
    // 48 + (3·Z+3)×40, a multiple of 8); each later one at the
    // predecessor's padded end
    let mut expect_off = HEADER_LEN + entries.len() * ENTRY_LEN;
    assert_eq!(expect_off % 8, 0, "table end is 8-aligned by construction");
    for e in &entries {
        assert_eq!(e.off, align8(expect_off), "section {} offset", e.tag);
        assert_eq!(e.off % 8, 0, "section {} offset 8-aligned", e.tag);
        // alignment padding before the section is zero bytes
        assert!(
            raw[expect_off..e.off].iter().all(|&b| b == 0),
            "nonzero padding before section {}",
            e.tag
        );
        assert!(e.off + e.len <= raw.len(), "section {} in bounds", e.tag);
        expect_off = e.off + e.len;
    }
    assert_eq!(
        expect_off,
        raw.len(),
        "file ends exactly at the last payload byte (no trailing bytes)"
    );

    // ---- checksums cover the payload bytes only (never the padding) ----
    for e in &entries {
        assert_eq!(
            fnv1a(&raw[e.off..e.off + e.len]),
            e.checksum,
            "section {} checksum",
            e.tag
        );
    }

    // ---- per-section payloads ------------------------------------------
    // spread-cap units: one little-endian f64 per topic (the per-topic
    // arrival-mass caps)
    for (z, cap) in entries.iter().enumerate().take(z_count) {
        assert_eq!(cap.len, 8);
        assert_eq!(f64_at(&raw, cap.off), art.topic_caps[z], "cap unit {z}");
    }

    // pb-bound units under the MIS engine: a single u64 = 0 "absent" word
    // per topic
    for z in 0..z_count {
        let pb = entries[z_count + z];
        assert_eq!(pb.len, 8);
        assert_eq!(u64_at(&raw, pb.off), 0, "MIS engine persists no PB rows");
    }

    // mis-tables units, one per topic: present u64 = 1 | count u64 |
    // node ids count×u32 strictly ascending (padded to 8) | gains count×f64
    for z in 0..z_count {
        let mis = entries[2 * z_count + z];
        assert_eq!(u64_at(&raw, mis.off), 1, "MIS engine persists its tables");
        let count = u64_at(&raw, mis.off + 8) as usize;
        assert!(count > 0, "every topic has seeds in this fixture");
        let ids_at = mis.off + 16;
        let gains_at = mis.off + align8(16 + 4 * count);
        let mut last = None;
        for r in 0..count {
            let u = u32_at(&raw, ids_at + 4 * r);
            assert!((u as usize) < g.node_count(), "MIS node id in range");
            assert!(Some(u) > last, "node ids strictly ascending");
            last = Some(u);
            assert!(
                f64_at(&raw, gains_at + 8 * r).is_finite(),
                "gain is a real number"
            );
        }
        assert_eq!(
            mis.len,
            align8(16 + 4 * count) + 8 * count,
            "mis unit {z} ends after its gains"
        );
    }

    // topic-samples: u32 count (0 — MIS precomputes no samples)
    let samples = entries[3 * z_count];
    assert_eq!(samples.len, 4);
    assert_eq!(u32_at(&raw, samples.off), 0);

    // piks-worlds: n u64 | R u64 | world offsets (R+1)×u64 (section-relative,
    // last = section length) | R world records, each opening with
    // footprint u64 | coin seed u64 | edges_examined u64 | w u64 | e u64
    let piks = entries[3 * z_count + 1];
    assert_eq!(u64_at(&raw, piks.off) as usize, g.node_count());
    let r_worlds = u64_at(&raw, piks.off + 8) as usize;
    assert_eq!(r_worlds, cfg.piks_index_size);
    let wtab = piks.off + 16;
    let first = u64_at(&raw, wtab) as usize;
    assert_eq!(
        first,
        16 + 8 * (r_worlds + 1),
        "first world starts right after the offset table"
    );
    assert_eq!(
        u64_at(&raw, wtab + 8 * r_worlds) as usize,
        piks.len,
        "the sentinel offset is the section length"
    );
    for i in 0..r_worlds {
        let (lo, hi) = (
            u64_at(&raw, wtab + 8 * i) as usize,
            u64_at(&raw, wtab + 8 * (i + 1)) as usize,
        );
        assert!(
            lo % 8 == 0 && lo < hi && hi <= piks.len,
            "world {i} framing"
        );
        let world = piks.off + lo;
        let w = u64_at(&raw, world + 24) as usize;
        let e = u64_at(&raw, world + 32) as usize;
        assert!(w >= 1, "every world stores at least its root");
        // documented world record arithmetic reproduces the framing
        let local_off = align8(40 + 4 * w);
        let edges_off = align8(local_off + 8 * w + 4 * (w + 1));
        assert_eq!(hi - lo, edges_off + 8 * e, "world {i} record length");
        // the stored footprint key is footprint_hash over the stored nodes
        let nodes: Vec<u32> = (0..w).map(|j| u32_at(&raw, world + 40 + 4 * j)).collect();
        assert_eq!(
            u64_at(&raw, world),
            octopus_core::piks::footprint_hash(&g, &nodes),
            "world {i} key must be the documented footprint hash"
        );
    }

    // autocomplete: u64 inserted-name count, then preorder records of
    // terminal u32 | nchildren u32 | [id u32 | pad u32 | score f64] |
    // nchildren × (char u32 | pad u32 | child offset u64)
    let names = entries[3 * z_count + 2];
    assert_eq!(u64_at(&raw, names.off) as usize, art.names.len());
    let root = names.off + 8;
    assert_eq!(u32_at(&raw, root), 0, "root is not terminal");
    assert_eq!(u32_at(&raw, root + 4), 1, "all names share the 'u' child");
    assert_eq!(u32_at(&raw, root + 8), 'u' as u32, "child edge label");
    assert_eq!(u32_at(&raw, root + 12), 0, "child entry pad word");
    assert_eq!(
        u64_at(&raw, root + 16),
        24,
        "preorder: the only child record starts right after the 24-byte root"
    );
}

#[test]
fn v1_through_v4_containers_are_refused_for_migration_by_rebuild() {
    // earlier-version files must be refused wholesale
    // (PersistError::Version) so open_or_build rebuilds and overwrites
    // them — never misparse a v1 monolithic payload as sections, a v2
    // table as v3, a v3 packed table (28-byte rows, no offsets) as v4,
    // nor a v4 stage-granular table as v5's per-topic one
    let g = tiny_graph();
    let cfg = OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 8,
        mis_rr_per_topic: 40,
        k_max: 2,
        ..Default::default()
    };
    let keys = StageKeys::compute(&g, &cfg);
    // a plausible v1 header: magic, version=1, fp triple, then v1's
    // payload_len/checksum words and some payload bytes
    let mut v1 = Vec::new();
    v1.extend_from_slice(b"OCTA");
    v1.extend_from_slice(&1u16.to_le_bytes());
    for w in [1u64, 2, 3, 64, 0xDEAD] {
        v1.extend_from_slice(&w.to_le_bytes());
    }
    v1.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        persist::load_sections(&v1, &keys, &g, &cfg),
        Err(persist::PersistError::Version(1))
    ));
    // a plausible v2 header: magic, version=2, fp triple, section count,
    // then section-table-shaped bytes
    let mut v2 = Vec::new();
    v2.extend_from_slice(b"OCTA");
    v2.extend_from_slice(&2u16.to_le_bytes());
    for w in [1u64, 2, 3] {
        v2.extend_from_slice(&w.to_le_bytes());
    }
    v2.extend_from_slice(&6u32.to_le_bytes());
    v2.extend_from_slice(&[0u8; 6 * 28]);
    assert!(matches!(
        persist::load_sections(&v2, &keys, &g, &cfg),
        Err(persist::PersistError::Version(2))
    ));
    assert!(matches!(
        persist::read_write_seq(&v2),
        Err(persist::PersistError::Version(2))
    ));
    // a plausible v3 header: like v2 plus the write_seq word — its packed
    // 28-byte table rows must not parse as v4's 40-byte aligned rows
    let mut v3 = Vec::new();
    v3.extend_from_slice(b"OCTA");
    v3.extend_from_slice(&3u16.to_le_bytes());
    for w in [1u64, 2, 3, 0x5E0] {
        v3.extend_from_slice(&w.to_le_bytes());
    }
    v3.extend_from_slice(&6u32.to_le_bytes());
    v3.extend_from_slice(&[0u8; 6 * 28]);
    assert!(matches!(
        persist::load_sections(&v3, &keys, &g, &cfg),
        Err(persist::PersistError::Version(3))
    ));
    assert!(matches!(
        persist::read_write_seq(&v3),
        Err(persist::PersistError::Version(3))
    ));
    // a plausible v4 header: same 48-byte frame as v5 but six
    // stage-granular sections — its bare cap/pb/mis tags must never be
    // misread as v5 topic-0 units
    let mut v4 = Vec::new();
    v4.extend_from_slice(b"OCTA");
    v4.extend_from_slice(&4u16.to_le_bytes());
    v4.extend_from_slice(&0u16.to_le_bytes());
    for w in [1u64, 2, 3, 0x5E0] {
        v4.extend_from_slice(&w.to_le_bytes());
    }
    v4.extend_from_slice(&6u32.to_le_bytes());
    v4.extend_from_slice(&0u32.to_le_bytes());
    v4.extend_from_slice(&[0u8; 6 * 40]);
    assert!(matches!(
        persist::load_sections(&v4, &keys, &g, &cfg),
        Err(persist::PersistError::Version(4))
    ));
    assert!(matches!(
        persist::read_write_seq(&v4),
        Err(persist::PersistError::Version(4))
    ));
}

// ---------------------------------------------------------------------------
// Adversarial mapped-mode battery
// ---------------------------------------------------------------------------

/// Build + save a real artifact and return everything a mapped open needs.
#[allow(clippy::type_complexity)]
fn saved(
    dir_name: &str,
) -> (
    std::path::PathBuf,
    std::path::PathBuf,
    Fingerprint,
    StageKeys,
    TopicGraph,
    OctopusConfig,
) {
    let g = tiny_graph();
    let cfg = tiny_config();
    let fp = Fingerprint::compute(&g, &cfg);
    let keys = StageKeys::compute(&g, &cfg);
    let art = offline::build(&g, &cfg);
    let dir = std::env::temp_dir().join(dir_name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("artifact.octa");
    std::fs::write(&path, persist::encode(&art, &fp, &keys, 1)).unwrap();
    (dir, path, fp, keys, g, cfg)
}

#[test]
fn mapped_open_rejects_truncation_at_every_section_boundary() {
    let (dir, path, fp, keys, g, cfg) = saved("octa_v5_truncation_sweep");
    let raw = std::fs::read(&path).unwrap();
    let entries = parse_table(&raw);
    // every section start and end, the table end, one byte short of the
    // full file, and a handful of mid-section cuts
    let mut cuts: Vec<usize> = vec![0, 4, HEADER_LEN - 1, HEADER_LEN, raw.len() - 1];
    for e in &entries {
        cuts.extend([e.off, e.off + e.len, e.off + e.len / 2]);
    }
    cuts.retain(|&c| c < raw.len());
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        std::fs::write(&path, &raw[..cut]).unwrap();
        for paranoid in [false, true] {
            let res = view::open(&path, &fp, &keys, &g, &cfg, paranoid);
            assert!(
                res.is_err(),
                "truncation to {cut}/{} bytes must fail the mapped open",
                raw.len()
            );
        }
    }
    // the untouched file still opens (the sweep didn't test a broken fixture)
    std::fs::write(&path, &raw).unwrap();
    assert!(view::open(&path, &fp, &keys, &g, &cfg, true).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mapped_open_rejects_misaligned_and_non_canonical_offsets() {
    let (dir, path, fp, keys, g, cfg) = saved("octa_v5_offset_tamper");
    let raw = std::fs::read(&path).unwrap();
    for i in 0..parse_table(&raw).len() {
        let off_at = HEADER_LEN + i * ENTRY_LEN + 16;
        let real = u64_at(&raw, off_at);
        // misaligned (off+4), canonical-break (off+8, still aligned), and
        // out-of-bounds offsets must all be refused at open
        for tampered in [real + 4, real + 8, raw.len() as u64 + 8] {
            let mut bad = raw.clone();
            bad[off_at..off_at + 8].copy_from_slice(&tampered.to_le_bytes());
            std::fs::write(&path, &bad).unwrap();
            assert!(
                view::open(&path, &fp, &keys, &g, &cfg, false).is_err(),
                "section {i} offset {real}→{tampered} must fail the mapped open"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flips_fail_closed_at_open_or_first_touch_never_read_garbage() {
    let (dir, path, fp, keys, g, cfg) = saved("octa_v5_bitflip_sweep");
    let raw = std::fs::read(&path).unwrap();
    let entries = parse_table(&raw);
    for e in &entries {
        // flip a bit at several depths of the payload
        for frac in [0, 1, 2, 3] {
            let at = e.off + (e.len * frac / 4).min(e.len - 1);
            let mut bad = raw.clone();
            bad[at] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            // paranoid mode verifies every checksum up front: always refused
            assert!(
                view::open(&path, &fp, &keys, &g, &cfg, true).is_err(),
                "paranoid open must refuse a flipped bit in section {}",
                e.tag
            );
            // lazy mode: either the open already fails (eagerly checked or
            // structurally load-bearing byte), or the damaged section's
            // first touch fails closed — never a garbage answer
            if let Ok(mapped) = view::open(&path, &fp, &keys, &g, &cfg, false) {
                let touched: Result<(), octopus_core::error::CoreError> = (|| {
                    mapped.pb_view()?;
                    mapped.mis_view()?;
                    mapped.piks_view()?;
                    Ok(())
                })();
                assert!(
                    touched.is_err(),
                    "a lazily-checked flip in section {} must fail first touch",
                    e.tag
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
