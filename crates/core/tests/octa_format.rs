//! Pins the OCTA v3 container bytes to the normative specification in
//! `ARCHITECTURE.md` (§"The OCTA v3 artifact container").
//!
//! The parser below is written *independently* against the documented
//! layout — it shares no framing helpers with the codec (it re-implements
//! FNV-1a from the documented constants) — so if the writer drifts from the
//! spec, or the spec from the writer, this test fails. Keep all three in
//! sync: `offline/persist.rs`, `ARCHITECTURE.md`, and this file.

use octopus_core::engine::{KimEngineChoice, OctopusConfig};
use octopus_core::offline::persist::{self, Fingerprint, StageKeys};
use octopus_core::offline::{self};
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};

/// Independent FNV-1a 64 (documented constants, not the wire helper).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

fn u16_at(raw: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(raw[at..at + 2].try_into().unwrap())
}
fn u32_at(raw: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(raw[at..at + 4].try_into().unwrap())
}
fn u64_at(raw: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(raw[at..at + 8].try_into().unwrap())
}
fn f64_at(raw: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(raw[at..at + 8].try_into().unwrap())
}

fn tiny_graph() -> TopicGraph {
    let mut b = GraphBuilder::new(2);
    for i in 0..8 {
        b.add_node(format!("user-{i}"));
    }
    for v in 1..=4u32 {
        b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6)]).unwrap();
    }
    for v in 5..=7u32 {
        b.add_edge(NodeId(1), NodeId(v), &[(1, 0.5)]).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn container_bytes_follow_the_documented_layout() {
    let g = tiny_graph();
    let cfg = OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 24,
        mis_rr_per_topic: 80,
        k_max: 3,
        seed: 0x0C7A,
        ..Default::default()
    };
    let fp = Fingerprint::compute(&g, &cfg);
    let keys = StageKeys::compute(&g, &cfg);
    let art = offline::build(&g, &cfg);
    let raw = persist::encode(&art, &fp, &keys, 0x5E0);

    // ---- header: magic "OCTA" | version u16 = 3 ------------------------
    assert_eq!(&raw[0..4], b"OCTA");
    assert_eq!(u16_at(&raw, 4), 3, "container version");
    // graph_fp u64 | config_fp u64 | seed u64
    assert_eq!(u64_at(&raw, 6), fp.graph);
    assert_eq!(u64_at(&raw, 14), fp.config);
    assert_eq!(u64_at(&raw, 22), fp.seed);
    assert_eq!(fp.seed, 0x0C7A, "the seed word is the config seed verbatim");
    // write_seq u64: the per-directory write sequence, stored verbatim
    assert_eq!(u64_at(&raw, 30), 0x5E0, "write sequence word");
    assert_eq!(persist::read_write_seq(&raw).unwrap(), 0x5E0);
    // section_count u32
    let count = u32_at(&raw, 38) as usize;
    assert_eq!(count, 6, "six sections, one per offline stage");

    // ---- section table: count × { tag u32, key u64, len u64, checksum u64 }
    let table_at = 42;
    let entry_len = 4 + 8 + 8 + 8;
    let mut entries = Vec::new();
    for i in 0..count {
        let at = table_at + i * entry_len;
        entries.push((
            u32_at(&raw, at),
            u64_at(&raw, at + 4),
            u64_at(&raw, at + 12) as usize,
            u64_at(&raw, at + 20),
        ));
    }
    // tags in documented order: cap=1, pb=2, mis=3, samples=4, piks=5, names=6
    assert_eq!(
        entries.iter().map(|e| e.0).collect::<Vec<_>>(),
        vec![1, 2, 3, 4, 5, 6]
    );
    // keys are the per-stage StageKeys in the same order
    assert_eq!(
        entries.iter().map(|e| e.1).collect::<Vec<_>>(),
        vec![
            keys.cap,
            keys.pb,
            keys.mis,
            keys.samples,
            keys.piks,
            keys.names
        ]
    );

    // ---- payload area: sections concatenated in table order, no padding,
    // each covered by its FNV-1a checksum; nothing after the last one
    let payloads_at = table_at + count * entry_len;
    let mut offset = payloads_at;
    for &(tag, _, len, checksum) in &entries {
        let payload = &raw[offset..offset + len];
        assert_eq!(fnv1a(payload), checksum, "section {tag} checksum");
        offset += len;
    }
    assert_eq!(offset, raw.len(), "no trailing bytes after the payloads");

    // ---- spot-check documented per-section payloads --------------------
    // spread-cap: exactly one little-endian f64
    let (cap_off, cap_len) = (payloads_at, entries[0].2);
    assert_eq!(cap_len, 8);
    assert_eq!(f64_at(&raw, cap_off), art.cap);

    // pb-bound under the MIS engine: a single 0x00 "absent" flag byte
    let pb_off = cap_off + cap_len;
    assert_eq!(entries[1].2, 1);
    assert_eq!(raw[pb_off], 0, "MIS engine persists no PB tables");

    // mis-tables: flag 0x01, then Z u32, then per-topic tables
    let mis_off = pb_off + entries[1].2;
    assert_eq!(raw[mis_off], 1, "MIS engine persists its tables");
    assert_eq!(u32_at(&raw, mis_off + 1) as usize, g.num_topics());

    // topic-samples: u32 count (0 — MIS precomputes no samples)
    let samples_off = mis_off + entries[2].2;
    assert_eq!(entries[3].2, 4);
    assert_eq!(u32_at(&raw, samples_off), 0);

    // piks-worlds: n u32 | R u32, then R worlds, each opening with
    // footprint u64 | coin seed u64 | edges_examined u64 | node count u32
    let piks_off = samples_off + entries[3].2;
    assert_eq!(u32_at(&raw, piks_off) as usize, g.node_count());
    assert_eq!(u32_at(&raw, piks_off + 4) as usize, cfg.piks_index_size);
    let world0 = piks_off + 8;
    let stored_footprint = u64_at(&raw, world0);
    let world0_nodes = u32_at(&raw, world0 + 24) as usize;
    assert!(world0_nodes >= 1, "every world stores at least its root");
    // the stored footprint key is footprint_hash over the stored node list
    let nodes: Vec<u32> = (0..world0_nodes)
        .map(|i| u32_at(&raw, world0 + 28 + 4 * i))
        .collect();
    assert_eq!(
        stored_footprint,
        octopus_core::piks::footprint_hash(&g, &nodes),
        "per-world key must be the documented footprint hash"
    );

    // autocomplete: u64 inserted-name count, then the preorder trie
    let names_off = piks_off + entries[4].2;
    assert_eq!(u64_at(&raw, names_off) as usize, art.names.len());
}

#[test]
fn v1_and_v2_containers_are_refused_for_migration_by_rebuild() {
    // earlier-version files must be refused wholesale
    // (PersistError::Version) so open_or_build rebuilds and overwrites
    // them — never misparse a v1 monolithic payload as sections, nor a v2
    // section table as v3 (the v3 header is 8 bytes longer)
    let g = tiny_graph();
    let cfg = OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 8,
        mis_rr_per_topic: 40,
        k_max: 2,
        ..Default::default()
    };
    let keys = StageKeys::compute(&g, &cfg);
    // a plausible v1 header: magic, version=1, fp triple, then v1's
    // payload_len/checksum words and some payload bytes
    let mut v1 = Vec::new();
    v1.extend_from_slice(b"OCTA");
    v1.extend_from_slice(&1u16.to_le_bytes());
    for w in [1u64, 2, 3, 64, 0xDEAD] {
        v1.extend_from_slice(&w.to_le_bytes());
    }
    v1.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        persist::load_sections(&v1, &keys, &g, &cfg),
        Err(persist::PersistError::Version(1))
    ));
    // a plausible v2 header: magic, version=2, fp triple, section count,
    // then section-table-shaped bytes
    let mut v2 = Vec::new();
    v2.extend_from_slice(b"OCTA");
    v2.extend_from_slice(&2u16.to_le_bytes());
    for w in [1u64, 2, 3] {
        v2.extend_from_slice(&w.to_le_bytes());
    }
    v2.extend_from_slice(&6u32.to_le_bytes());
    v2.extend_from_slice(&[0u8; 6 * 28]);
    assert!(matches!(
        persist::load_sections(&v2, &keys, &g, &cfg),
        Err(persist::PersistError::Version(2))
    ));
    assert!(matches!(
        persist::read_write_seq(&v2),
        Err(persist::PersistError::Version(2))
    ));
}
