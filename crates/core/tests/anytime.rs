//! Quality-vs-budget pinning for the anytime operators.
//!
//! Three contracts from the budget module, checked on two seeded
//! fixtures (a citation-flavored network and a messenger-flavored one):
//!
//! 1. **Fixed-budget determinism** — at a fixed *sample* budget the
//!    anytime `find_influencers` answer (seeds, spread bits, bound bits)
//!    is bit-identical whether rayon runs 1 thread or 8, and across
//!    repeated calls (the budgeted path bypasses the query cache).
//! 2. **Bound soundness** — every degraded answer's [`QualityBound`]
//!    contains the exact path's scalar on the same snapshot: spread for
//!    influencer ranking and keyword suggestion, reachable influence for
//!    path exploration, kept topic mass for the radar.
//! 3. **Infinite budget ≡ exact** — an unlimited [`QueryBudget`] is
//!    bit-identical to the exact operator for all five operators, with
//!    an `exact` bound pinched onto the answer's own score.

use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::paths::ExploreDirection;
use octopus_core::{QualityBound, QueryBudget};
use octopus_graph::{GraphBuilder, TopicGraph};
use octopus_topics::{TopicModel, Vocabulary};

/// Citation-flavored network: two scholarly hubs with follower fans and
/// a cross link, the same shape the serving suites pin against.
fn citation_fixture() -> Octopus {
    let mut b = GraphBuilder::new(2);
    let han = b.add_node("jiawei han");
    let jordan = b.add_node("michael jordan");
    for i in 0..6 {
        let v = b.add_node(format!("db-student-{i}"));
        b.add_edge(han, v, &[(0, 0.7)]).unwrap();
    }
    for i in 0..5 {
        let v = b.add_node(format!("ml-student-{i}"));
        b.add_edge(jordan, v, &[(1, 0.7)]).unwrap();
    }
    b.add_edge(han, jordan, &[(0, 0.3), (1, 0.1)]).unwrap();
    let g = b.build().unwrap();
    let mut vocab = Vocabulary::new();
    vocab.intern("data mining");
    vocab.intern("frequent patterns");
    vocab.intern("em algorithm");
    vocab.intern("graphical models");
    let model = TopicModel::from_rows(
        vocab,
        vec![vec![0.5, 0.4, 0.05, 0.05], vec![0.05, 0.05, 0.5, 0.4]],
        vec![0.5, 0.5],
    )
    .unwrap();
    build(g, model)
}

/// Messenger-flavored network: chat broadcasters with reshare fans,
/// structurally denser cross-talk than the citation graph so the
/// budgeted estimators see a different regime.
fn messenger_fixture() -> Octopus {
    let mut b = GraphBuilder::new(2);
    let alice = b.add_node("alice");
    let bob = b.add_node("bob");
    let carol = b.add_node("carol");
    for i in 0..5 {
        let v = b.add_node(format!("meme-fan-{i}"));
        b.add_edge(alice, v, &[(0, 0.6)]).unwrap();
        if i < 2 {
            b.add_edge(carol, v, &[(0, 0.2)]).unwrap();
        }
    }
    for i in 0..4 {
        let v = b.add_node(format!("game-fan-{i}"));
        b.add_edge(bob, v, &[(1, 0.6)]).unwrap();
    }
    b.add_edge(alice, bob, &[(0, 0.2), (1, 0.2)]).unwrap();
    b.add_edge(bob, carol, &[(0, 0.3)]).unwrap();
    let g = b.build().unwrap();
    let mut vocab = Vocabulary::new();
    vocab.intern("viral memes");
    vocab.intern("reaction gifs");
    vocab.intern("esports");
    vocab.intern("speedrunning");
    let model = TopicModel::from_rows(
        vocab,
        vec![vec![0.45, 0.45, 0.05, 0.05], vec![0.1, 0.1, 0.4, 0.4]],
        vec![0.6, 0.4],
    )
    .unwrap();
    build(g, model)
}

fn build(g: TopicGraph, model: TopicModel) -> Octopus {
    let config = OctopusConfig {
        kim: KimEngineChoice::Mis,
        piks_index_size: 96,
        mis_rr_per_topic: 300,
        k_max: 3,
        ..Default::default()
    };
    Octopus::new(g, model, config).unwrap()
}

/// `(fixture, kim query, hub user, radar word, autocomplete prefix)`
/// probe sets, one per fixture.
fn probes() -> Vec<(
    Octopus,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
)> {
    vec![
        (
            citation_fixture(),
            "data mining",
            "jiawei han",
            "data mining",
            "db-",
        ),
        (
            messenger_fixture(),
            "viral memes",
            "alice",
            "esports",
            "meme-",
        ),
    ]
}

/// The bitwise signature of one budgeted influencer answer.
fn kim_signature(engine: &Octopus, query: &str, budget: &QueryBudget) -> (Vec<u32>, u64, Vec<u64>) {
    let ans = engine.find_influencers_budgeted(query, 2, budget).unwrap();
    (
        ans.value.seeds.iter().map(|s| s.node.0).collect(),
        ans.value.result.spread.to_bits(),
        vec![
            ans.bound.lower.to_bits(),
            ans.bound.upper.to_bits(),
            ans.bound.samples_used as u64,
        ],
    )
}

#[test]
fn fixed_sample_budget_is_thread_count_invariant() {
    for (engine, query, _, _, _) in probes() {
        for samples in [16, 64, 256] {
            let budget = QueryBudget::samples(samples);
            let signatures: Vec<_> = [1usize, 8]
                .iter()
                .map(|&threads| {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .unwrap();
                    pool.install(|| kim_signature(&engine, query, &budget))
                })
                .collect();
            assert_eq!(
                signatures[0], signatures[1],
                "budgeted answer diverged between 1 and 8 threads at {samples} samples"
            );
            // and across repeated calls: the budgeted path bypasses the
            // query cache, so each call re-derives the same bits
            assert_eq!(
                signatures[0],
                kim_signature(&engine, query, &budget),
                "budgeted answer not reproducible across calls at {samples} samples"
            );
        }
    }
}

#[test]
fn sample_budget_caps_samples_used() {
    for (engine, query, _, _, _) in probes() {
        for samples in [16, 64, 256] {
            let budget = QueryBudget::samples(samples);
            let ans = engine.find_influencers_budgeted(query, 2, &budget).unwrap();
            assert!(!ans.bound.exact, "finite budget must report degraded");
            assert!(
                ans.bound.samples_used <= samples,
                "used {} RR sets against a budget of {samples}",
                ans.bound.samples_used
            );
            assert!(ans.bound.samples_used > 0, "budgeted run did no work");
        }
    }
}

fn assert_sound(bound: &QualityBound, exact: f64, what: &str) {
    assert!(
        bound.contains(exact),
        "{what}: exact value {exact} outside bound [{}, {}]",
        bound.lower,
        bound.upper
    );
    assert!(
        bound.lower <= bound.upper + 1e-9,
        "{what}: inverted bound [{}, {}]",
        bound.lower,
        bound.upper
    );
}

#[test]
fn quality_bounds_contain_the_exact_answer() {
    for (engine, query, user, word, _) in probes() {
        let exact_kim = engine.find_influencers(query, 2).unwrap();
        let exact_sugg = engine.suggest_keywords(user, 2).unwrap();
        let exact_paths = engine
            .explore_paths(user, ExploreDirection::Influences, Some(query))
            .unwrap();
        let exact_radar = engine.keyword_radar(word).unwrap();
        let exact_mass: f64 = exact_radar.values.iter().sum();
        for samples in [1, 2, 8, 64] {
            let budget = QueryBudget::samples(samples);
            let kim = engine.find_influencers_budgeted(query, 2, &budget).unwrap();
            assert_sound(
                &kim.bound,
                exact_kim.result.spread,
                &format!("find-influencers@{samples}"),
            );
            let sugg = engine.suggest_keywords_budgeted(user, 2, &budget).unwrap();
            assert_sound(
                &sugg.bound,
                exact_sugg.result.spread,
                &format!("suggest-keywords@{samples}"),
            );
            let paths = engine
                .explore_paths_budgeted(user, ExploreDirection::Influences, Some(query), &budget)
                .unwrap();
            assert_sound(
                &paths.bound,
                exact_paths.influence,
                &format!("explore-paths@{samples}"),
            );
            let radar = engine.keyword_radar_budgeted(word, &budget).unwrap();
            assert_sound(
                &radar.bound,
                exact_mass,
                &format!("keyword-radar@{samples}"),
            );
            // the degraded answer's own score also sits inside its bound
            assert!(kim.bound.contains(kim.value.result.spread));
            assert!(paths.bound.contains(paths.value.influence));
        }
    }
}

#[test]
fn tiny_budgets_actually_degrade() {
    // A one-sample radar on a 4-axis chart must drop axes (bound opens
    // up), and a one-sample exploration must coarsen its threshold —
    // guarding against a budgeted path that quietly ignores its budget.
    for (engine, query, user, word, _) in probes() {
        let budget = QueryBudget::samples(1);
        let radar = engine.keyword_radar_budgeted(word, &budget).unwrap();
        assert!(!radar.bound.exact);
        assert_eq!(radar.bound.samples_used, 1);
        let kept = radar.value.values.iter().filter(|v| **v > 0.0).count();
        assert!(kept <= 1, "radar kept {kept} axes on a 1-axis budget");
        let paths = engine
            .explore_paths_budgeted(user, ExploreDirection::Influences, Some(query), &budget)
            .unwrap();
        assert!(!paths.bound.exact);
        assert!(
            paths.bound.upper > paths.bound.lower,
            "a θ=1 exploration must admit unexplored influence"
        );
    }
}

#[test]
fn unlimited_budget_is_bit_identical_to_exact_for_all_operators() {
    for (engine, query, user, word, prefix) in probes() {
        let budget = QueryBudget::unlimited();

        let exact = engine.find_influencers(query, 2).unwrap();
        let any = engine.find_influencers_budgeted(query, 2, &budget).unwrap();
        assert_eq!(
            exact.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
            any.value.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
        );
        assert_eq!(
            exact.result.spread.to_bits(),
            any.value.result.spread.to_bits()
        );
        assert!(any.bound.exact);
        assert_eq!(any.bound.lower.to_bits(), any.bound.upper.to_bits());
        assert_eq!(any.bound.lower.to_bits(), exact.result.spread.to_bits());

        let exact = engine.suggest_keywords(user, 2).unwrap();
        let any = engine.suggest_keywords_budgeted(user, 2, &budget).unwrap();
        assert_eq!(exact.words, any.value.words);
        assert_eq!(
            exact.result.spread.to_bits(),
            any.value.result.spread.to_bits()
        );
        assert!(any.bound.exact);

        let exact = engine
            .explore_paths(user, ExploreDirection::Influences, Some(query))
            .unwrap();
        let any = engine
            .explore_paths_budgeted(user, ExploreDirection::Influences, Some(query), &budget)
            .unwrap();
        assert_eq!(exact.reached, any.value.reached);
        assert_eq!(exact.influence.to_bits(), any.value.influence.to_bits());
        assert_eq!(exact.theta.to_bits(), any.value.theta.to_bits());
        assert_eq!(exact.d3_json, any.value.d3_json);
        assert!(any.bound.exact);

        let exact = engine.autocomplete(prefix, 10);
        let any = engine.autocomplete_budgeted(prefix, 10, &budget);
        assert_eq!(exact, any.value);
        assert!(any.bound.exact);

        let exact = engine.keyword_radar(word).unwrap();
        let any = engine.keyword_radar_budgeted(word, &budget).unwrap();
        assert_eq!(exact, any.value);
        assert!(any.bound.exact);
    }
}

#[test]
fn generous_sample_budget_on_radar_is_exact() {
    // A budget at least as wide as the chart drops nothing: the radar
    // variant reports exact rather than a vacuously degraded bound.
    for (engine, _, _, word, _) in probes() {
        let chart = engine.keyword_radar(word).unwrap();
        let budget = QueryBudget::samples(chart.values.len());
        let any = engine.keyword_radar_budgeted(word, &budget).unwrap();
        assert!(any.bound.exact);
        assert_eq!(any.value, chart);
    }
}
