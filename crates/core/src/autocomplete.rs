//! Name auto-completion (Scenario 2: "she can simply type in the name in
//! OCTOPUS, while assisted by an auto-completion tool").
//!
//! A compressed-enough trie over normalized user names. Each terminal
//! carries the user's id and an importance score (the engine uses
//! out-degree by default, so famous users surface first); completion walks
//! the prefix and collects the best `limit` terminals below it.

use bytes::{Buf, BufMut, BytesMut};
use octopus_graph::wire::{self, Fnv64, WireError};
use octopus_graph::{NodeId, TopicGraph};
use std::collections::HashMap;

#[derive(Debug, Clone, Default, PartialEq)]
struct TrieNode {
    children: HashMap<char, TrieNode>,
    /// Terminal payload: (user, score).
    terminal: Option<(NodeId, f64)>,
}

/// Prefix index over user names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Autocomplete {
    root: TrieNode,
    size: usize,
}

fn normalize(s: &str) -> String {
    s.trim().to_lowercase()
}

impl Autocomplete {
    /// Hash of exactly what the engine's autocomplete stage reads from the
    /// graph: each node's display name and **out-degree** (the default
    /// importance score), in node-id order.
    ///
    /// This is the stage's incremental-rebuild key. Edge *weights* are
    /// deliberately absent — a probability nudge leaves the trie byte-for-
    /// byte identical, so the cached section stays valid — while a rename
    /// or any out-degree change (e.g. a new out-edge) moves the key.
    pub fn input_key(graph: &TopicGraph) -> u64 {
        let mut h = Fnv64::new();
        h.write(b"octa:autocomplete");
        h.write_u64(graph.node_count() as u64);
        for u in graph.nodes() {
            match graph.name(u) {
                Some(name) => {
                    h.write_u8(1);
                    h.write_u32(name.len() as u32);
                    h.write(name.as_bytes());
                }
                None => {
                    h.write_u8(0);
                }
            }
            h.write_u64(graph.out_degree(u) as u64);
        }
        h.finish()
    }

    /// Build from `(name, id, score)` triples. Later duplicates of the same
    /// normalized name keep the higher score.
    pub fn build<'a>(entries: impl IntoIterator<Item = (&'a str, NodeId, f64)>) -> Self {
        let mut ac = Autocomplete::default();
        for (name, id, score) in entries {
            ac.insert(name, id, score);
        }
        ac
    }

    /// Insert one name.
    pub fn insert(&mut self, name: &str, id: NodeId, score: f64) {
        let norm = normalize(name);
        if norm.is_empty() {
            return;
        }
        let mut node = &mut self.root;
        for c in norm.chars() {
            node = node.children.entry(c).or_default();
        }
        match &mut node.terminal {
            Some((_, s)) if *s >= score => {}
            slot => *slot = Some((id, score)),
        }
        self.size += 1;
    }

    /// Number of inserted names (including overwritten duplicates).
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The top-`limit` completions of `prefix`, ranked by descending score
    /// (ties by node id). Returns `(id, completed_name, score)`.
    pub fn complete(&self, prefix: &str, limit: usize) -> Vec<(NodeId, String, f64)> {
        let norm = normalize(prefix);
        let mut node = &self.root;
        for c in norm.chars() {
            match node.children.get(&c) {
                Some(n) => node = n,
                None => return Vec::new(),
            }
        }
        // collect all terminals below `node`
        let mut found: Vec<(NodeId, String, f64)> = Vec::new();
        let mut stack: Vec<(&TrieNode, String)> = vec![(node, norm)];
        while let Some((n, path)) = stack.pop() {
            if let Some((id, score)) = n.terminal {
                found.push((id, path.clone(), score));
            }
            for (&c, child) in &n.children {
                let mut next = path.clone();
                next.push(c);
                stack.push((child, next));
            }
        }
        found.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        found.truncate(limit);
        found
    }

    /// Serialize the trie into `buf` (the artifact-codec path). Children are
    /// written in ascending character order so the encoding is canonical
    /// regardless of `HashMap` iteration order. Preorder, with an explicit
    /// work stack: trie depth equals the longest normalized name, which is
    /// user-controlled data and must not bound the call stack.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.size as u64);
        enum Work<'a> {
            Node(&'a TrieNode),
            Char(char),
        }
        let mut stack = vec![Work::Node(&self.root)];
        while let Some(work) = stack.pop() {
            match work {
                Work::Char(c) => buf.put_u32_le(c as u32),
                Work::Node(node) => {
                    match node.terminal {
                        Some((id, score)) => {
                            buf.put_u8(1);
                            buf.put_u32_le(id.0);
                            buf.put_f64_le(score);
                        }
                        None => buf.put_u8(0),
                    }
                    let mut chars: Vec<char> = node.children.keys().copied().collect();
                    chars.sort_unstable();
                    buf.put_u32_le(chars.len() as u32);
                    // push in descending order so children pop ascending,
                    // each preceded by its edge character
                    for &c in chars.iter().rev() {
                        stack.push(Work::Node(&node.children[&c]));
                        stack.push(Work::Char(c));
                    }
                }
            }
        }
    }

    /// Decode a trie serialized by [`Autocomplete::encode_into`].
    ///
    /// `node_count` bounds the terminal user ids: a payload referencing a
    /// node outside the live graph is rejected here rather than panicking
    /// in a later lookup. Iterative for the same reason the encoder is.
    pub fn decode_from<B: Buf + ?Sized>(buf: &mut B, node_count: usize) -> Result<Self, WireError> {
        wire::need(buf, 8, "autocomplete size")?;
        let size = buf.get_u64_le() as usize;
        // (edge char into the parent, node under construction, children
        // still to decode); the root has no inbound edge char
        let mut stack: Vec<(Option<char>, TrieNode, u32)> = Vec::new();
        let mut pending = read_node_header(buf, node_count)?;
        stack.push((None, pending.0, pending.1));
        loop {
            // close completed frames, attaching each to its parent
            while stack
                .last()
                .is_some_and(|(_, _, remaining)| *remaining == 0)
            {
                let (edge, node, _) = stack.pop().expect("non-empty");
                match (edge, stack.last_mut()) {
                    (Some(c), Some((_, parent, _))) => {
                        parent.children.insert(c, node);
                    }
                    (None, None) => return Ok(Autocomplete { root: node, size }),
                    _ => return Err(WireError("autocomplete trie frames inconsistent".into())),
                }
            }
            let top = stack.last_mut().expect("root still open");
            top.2 -= 1;
            wire::need(buf, 4, "trie child char")?;
            let raw = buf.get_u32_le();
            let c = char::from_u32(raw)
                .ok_or_else(|| WireError(format!("invalid trie character {raw:#x}")))?;
            pending = read_node_header(buf, node_count)?;
            stack.push((Some(c), pending.0, pending.1));
        }
    }

    /// Exact lookup of a (normalized) name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        let norm = normalize(name);
        let mut node = &self.root;
        for c in norm.chars() {
            node = node.children.get(&c)?;
        }
        node.terminal.map(|(id, _)| id)
    }
}

/// Read one node's own data (terminal payload + child count); the children
/// themselves are decoded by the caller's frame loop.
fn read_node_header<B: Buf + ?Sized>(
    buf: &mut B,
    node_count: usize,
) -> Result<(TrieNode, u32), WireError> {
    wire::need(buf, 1, "trie terminal flag")?;
    let terminal = if buf.get_u8() != 0 {
        wire::need(buf, 12, "trie terminal payload")?;
        let id = NodeId(buf.get_u32_le());
        if id.index() >= node_count {
            return Err(WireError(format!(
                "trie terminal references node {id} outside the graph ({node_count} nodes)"
            )));
        }
        let score = buf.get_f64_le();
        Some((id, score))
    } else {
        None
    };
    wire::need(buf, 4, "trie child count")?;
    let child_count = buf.get_u32_le();
    Ok((
        TrieNode {
            children: HashMap::with_capacity((child_count as usize).min(256)),
            terminal,
        },
        child_count,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Autocomplete {
        Autocomplete::build([
            ("Jure Leskovec", NodeId(0), 50.0),
            ("Jiawei Han", NodeId(1), 80.0),
            ("Jian Pei", NodeId(2), 60.0),
            ("Michael Jordan", NodeId(3), 90.0),
            ("Michael Stonebraker", NodeId(4), 85.0),
        ])
    }

    #[test]
    fn prefix_completion_ranked_by_score() {
        let ac = sample();
        let hits = ac.complete("ji", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, NodeId(1), "jiawei han ranks first (score 80)");
        assert_eq!(hits[1].0, NodeId(2));
    }

    #[test]
    fn case_and_whitespace_insensitive() {
        let ac = sample();
        let hits = ac.complete("  MICHAEL ", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, "michael jordan");
    }

    #[test]
    fn limit_respected() {
        let ac = sample();
        assert_eq!(ac.complete("", 3).len(), 3);
        assert_eq!(ac.complete("", 100).len(), 5);
    }

    #[test]
    fn no_match_is_empty() {
        let ac = sample();
        assert!(ac.complete("zz", 5).is_empty());
    }

    #[test]
    fn exact_lookup() {
        let ac = sample();
        assert_eq!(ac.lookup("jure leskovec"), Some(NodeId(0)));
        assert_eq!(ac.lookup("jure"), None, "prefix is not an exact name");
    }

    #[test]
    fn duplicate_names_keep_higher_score() {
        let mut ac = Autocomplete::default();
        ac.insert("wei chen", NodeId(1), 10.0);
        ac.insert("wei chen", NodeId(2), 99.0);
        ac.insert("wei chen", NodeId(3), 5.0);
        assert_eq!(ac.lookup("wei chen"), Some(NodeId(2)));
    }

    #[test]
    fn empty_names_ignored() {
        let mut ac = Autocomplete::default();
        ac.insert("  ", NodeId(1), 1.0);
        assert!(ac.complete("", 5).is_empty());
    }
}
