//! Name auto-completion (Scenario 2: "she can simply type in the name in
//! OCTOPUS, while assisted by an auto-completion tool").
//!
//! A compressed-enough trie over normalized user names. Each terminal
//! carries the user's id and an importance score (the engine uses
//! out-degree by default, so famous users surface first); completion walks
//! the prefix and collects the best `limit` terminals below it.

use bytes::{BufMut, BytesMut};
use octopus_graph::wire::{Fnv64, WireError};
use octopus_graph::{NodeId, TopicGraph};
use std::collections::HashMap;

#[derive(Debug, Clone, Default, PartialEq)]
struct TrieNode {
    children: HashMap<char, TrieNode>,
    /// Terminal payload: (user, score).
    terminal: Option<(NodeId, f64)>,
}

/// Prefix index over user names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Autocomplete {
    root: TrieNode,
    size: usize,
}

fn normalize(s: &str) -> String {
    s.trim().to_lowercase()
}

impl Autocomplete {
    /// Hash of exactly what the engine's autocomplete stage reads from the
    /// graph: each node's display name and **out-degree** (the default
    /// importance score), in node-id order.
    ///
    /// This is the stage's incremental-rebuild key. Edge *weights* are
    /// deliberately absent — a probability nudge leaves the trie byte-for-
    /// byte identical, so the cached section stays valid — while a rename
    /// or any out-degree change (e.g. a new out-edge) moves the key.
    pub fn input_key(graph: &TopicGraph) -> u64 {
        let mut h = Fnv64::new();
        h.write(b"octa:autocomplete");
        h.write_u64(graph.node_count() as u64);
        for u in graph.nodes() {
            match graph.name(u) {
                Some(name) => {
                    h.write_u8(1);
                    h.write_u32(name.len() as u32);
                    h.write(name.as_bytes());
                }
                None => {
                    h.write_u8(0);
                }
            }
            h.write_u64(graph.out_degree(u) as u64);
        }
        h.finish()
    }

    /// Build from `(name, id, score)` triples. Later duplicates of the same
    /// normalized name keep the higher score.
    pub fn build<'a>(entries: impl IntoIterator<Item = (&'a str, NodeId, f64)>) -> Self {
        let mut ac = Autocomplete::default();
        for (name, id, score) in entries {
            ac.insert(name, id, score);
        }
        ac
    }

    /// Insert one name.
    pub fn insert(&mut self, name: &str, id: NodeId, score: f64) {
        let norm = normalize(name);
        if norm.is_empty() {
            return;
        }
        let mut node = &mut self.root;
        for c in norm.chars() {
            node = node.children.entry(c).or_default();
        }
        match &mut node.terminal {
            Some((_, s)) if *s >= score => {}
            slot => *slot = Some((id, score)),
        }
        self.size += 1;
    }

    /// Number of inserted names (including overwritten duplicates).
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The top-`limit` completions of `prefix`, ranked by descending score
    /// (ties by node id). Returns `(id, completed_name, score)`.
    pub fn complete(&self, prefix: &str, limit: usize) -> Vec<(NodeId, String, f64)> {
        let norm = normalize(prefix);
        let mut node = &self.root;
        for c in norm.chars() {
            match node.children.get(&c) {
                Some(n) => node = n,
                None => return Vec::new(),
            }
        }
        // collect all terminals below `node`
        let mut found: Vec<(NodeId, String, f64)> = Vec::new();
        let mut stack: Vec<(&TrieNode, String)> = vec![(node, norm)];
        while let Some((n, path)) = stack.pop() {
            if let Some((id, score)) = n.terminal {
                found.push((id, path.clone(), score));
            }
            for (&c, child) in &n.children {
                let mut next = path.clone();
                next.push(c);
                stack.push((child, next));
            }
        }
        found.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        found.truncate(limit);
        found
    }

    /// Serialize the trie into `buf` (the OCTA v4 `autocomplete` section
    /// payload; normative spec in `ARCHITECTURE.md`).
    ///
    /// ```text
    /// name count u64
    /// node area (root record at area offset 0), preorder-contiguous:
    ///   terminal u32 (0|1) | child count u32
    ///   if terminal: id u32 | pad u32 = 0 | score f64
    ///   child count × (char u32 | pad u32 = 0 | child offset u64)
    /// ```
    ///
    /// Every record is a multiple of 8 bytes and records are laid out in
    /// preorder with no gaps, so each child offset (area-relative) is
    /// strictly greater than its parent's — the cycle-safety invariant the
    /// reader enforces. Children are written in ascending character order
    /// so the encoding is canonical regardless of `HashMap` iteration
    /// order. Iterative throughout: trie depth equals the longest
    /// normalized name, which is user-controlled data and must not bound
    /// the call stack.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.size as u64);
        // pass 1: flatten to preorder, recording parent→child flat links
        struct Flat<'a> {
            node: &'a TrieNode,
            children: Vec<(char, usize)>,
        }
        let mut flat: Vec<Flat<'_>> = Vec::new();
        let mut work: Vec<(&TrieNode, Option<(usize, char)>)> = vec![(&self.root, None)];
        while let Some((node, link)) = work.pop() {
            let idx = flat.len();
            if let Some((parent, c)) = link {
                flat[parent].children.push((c, idx));
            }
            flat.push(Flat {
                node,
                children: Vec::with_capacity(node.children.len()),
            });
            let mut chars: Vec<char> = node.children.keys().copied().collect();
            chars.sort_unstable();
            // descending pushes pop ascending, keeping preorder canonical
            for &c in chars.iter().rev() {
                work.push((&node.children[&c], Some((idx, c))));
            }
        }
        // pass 2: preorder layout — offset of flat record i is the running
        // sum of the record sizes before it
        let rec_size = |f: &Flat<'_>| -> u64 {
            8 + if f.node.terminal.is_some() { 16 } else { 0 } + 16 * f.children.len() as u64
        };
        let mut offsets = Vec::with_capacity(flat.len());
        let mut off = 0u64;
        for f in &flat {
            offsets.push(off);
            off += rec_size(f);
        }
        for f in &flat {
            match f.node.terminal {
                Some(_) => buf.put_u32_le(1),
                None => buf.put_u32_le(0),
            }
            buf.put_u32_le(f.children.len() as u32);
            if let Some((id, score)) = f.node.terminal {
                buf.put_u32_le(id.0);
                buf.put_u32_le(0);
                buf.put_f64_le(score);
            }
            for &(c, child) in &f.children {
                buf.put_u32_le(c as u32);
                buf.put_u32_le(0);
                buf.put_u64_le(offsets[child]);
            }
        }
    }

    /// Decode a trie serialized by [`Autocomplete::encode_into`], rebuilding
    /// the owned `HashMap` form. Validation is [`TrieView::parse`]'s; the
    /// rebuild walks records in reverse offset order so every child is
    /// already built when its parent needs it (children live at strictly
    /// larger offsets).
    pub fn decode_from(raw: &[u8], node_count: usize) -> Result<Self, WireError> {
        let view = TrieView::parse(raw, node_count)?;
        let area = &raw[8..];
        let mut record_offs = Vec::new();
        let mut off = 0usize;
        while off < area.len() {
            record_offs.push(off);
            off += view.record_size(off);
        }
        let mut built: HashMap<usize, TrieNode> = HashMap::new();
        for &off in record_offs.iter().rev() {
            let mut children = HashMap::new();
            for i in 0..view.child_count(off) {
                let (c, child_off) = view.child(off, i);
                let child = built
                    .remove(&child_off)
                    .ok_or_else(|| WireError("trie child offsets not preorder".into()))?;
                children.insert(c, child);
            }
            built.insert(
                off,
                TrieNode {
                    children,
                    terminal: view.terminal(off),
                },
            );
        }
        Ok(Autocomplete {
            root: built.remove(&0).expect("root record exists"),
            size: view.len(),
        })
    }

    /// Exact lookup of a (normalized) name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        let norm = normalize(name);
        let mut node = &self.root;
        for c in norm.chars() {
            node = node.children.get(&c)?;
        }
        node.terminal.map(|(id, _)| id)
    }
}

/// Zero-copy view over a v4 `autocomplete` section payload.
///
/// [`TrieView::parse`] walks the whole node area once, enforcing the
/// preorder-contiguous layout (each record starts exactly where the
/// previous subtree ended, child offsets strictly increase, the final
/// record ends exactly at the section end), character validity, zero pads,
/// bounded terminal ids, and finite scores. After that, [`TrieView::lookup`]
/// and [`TrieView::complete`] serve queries straight off the bytes with
/// answers identical to the owned [`Autocomplete`] — the completion
/// comparator is total, so collection order cannot show through.
#[derive(Debug, Clone, Copy)]
pub struct TrieView<'a> {
    /// The node area (section payload past the name-count word).
    area: &'a [u8],
    name_count: usize,
}

fn u64_at(raw: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(raw[off..off + 8].try_into().expect("validated by parse"))
}

fn u32_at(raw: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(raw[off..off + 4].try_into().expect("validated by parse"))
}

impl<'a> TrieView<'a> {
    /// Validate a section payload and return a view over it.
    pub fn parse(raw: &'a [u8], node_count: usize) -> Result<Self, WireError> {
        if raw.len() < 8 {
            return Err(WireError("autocomplete section header truncated".into()));
        }
        let name_count = u64_at(raw, 0) as usize;
        let area = &raw[8..];
        // preorder walk: every record must start exactly at the running
        // offset, which rules out gaps, overlaps, sharing, and cycles
        let mut expect = 0usize;
        let mut stack: Vec<usize> = vec![0];
        while let Some(off) = stack.pop() {
            if off != expect {
                return Err(WireError(format!(
                    "trie record at {off} breaks preorder (expected {expect})"
                )));
            }
            if off + 8 > area.len() {
                return Err(WireError(format!("trie record header at {off} truncated")));
            }
            let terminal = u32_at(area, off);
            if terminal > 1 {
                return Err(WireError(format!("trie terminal flag {terminal} invalid")));
            }
            let child_count = u32_at(area, off + 4) as usize;
            let size = 8 + 16 * terminal as usize + 16 * child_count;
            if area.len() - off < size {
                return Err(WireError(format!("trie record at {off} truncated")));
            }
            if terminal == 1 {
                let id = u32_at(area, off + 8);
                if id as usize >= node_count {
                    return Err(WireError(format!(
                        "trie terminal references node {id} outside the graph ({node_count} nodes)"
                    )));
                }
                if u32_at(area, off + 12) != 0 {
                    return Err(WireError("trie terminal pad word nonzero".into()));
                }
                if !f64::from_bits(u64_at(area, off + 16)).is_finite() {
                    return Err(WireError("trie terminal score not finite".into()));
                }
            }
            let base = off + 8 + 16 * terminal as usize;
            let mut prev_char: Option<u32> = None;
            // push child offsets descending so they pop in preorder
            let mut child_offs = Vec::with_capacity(child_count);
            for i in 0..child_count {
                let c = u32_at(area, base + 16 * i);
                if char::from_u32(c).is_none() {
                    return Err(WireError(format!("invalid trie character {c:#x}")));
                }
                if prev_char.is_some_and(|p| p >= c) {
                    return Err(WireError("trie children not in ascending order".into()));
                }
                prev_char = Some(c);
                if u32_at(area, base + 16 * i + 4) != 0 {
                    return Err(WireError("trie child pad word nonzero".into()));
                }
                let child_off = u64_at(area, base + 16 * i + 8);
                if child_off <= off as u64
                    || !child_off.is_multiple_of(8)
                    || child_off >= area.len() as u64
                {
                    return Err(WireError(format!(
                        "trie child offset {child_off} out of range (parent {off})"
                    )));
                }
                child_offs.push(child_off as usize);
            }
            stack.extend(child_offs.into_iter().rev());
            expect = off + size;
        }
        if expect != area.len() {
            return Err(WireError(format!(
                "trie area length {} != walked {expect}",
                area.len()
            )));
        }
        Ok(TrieView { area, name_count })
    }

    /// Rebind a view over bytes a previous [`TrieView::parse`] already
    /// validated, skipping the `O(area)` preorder walk.
    ///
    /// The mapped open path validates the trie section once (checksum +
    /// structure) and then reconstructs per-query views with this — a
    /// lookup must cost `O(|name|)`, not `O(trie)`. Caller contract: `raw`
    /// is byte-identical to a payload that parsed successfully. Safe Rust
    /// either way (a violated contract can only mis-answer or panic on a
    /// slice bound, never read out of bounds).
    pub(crate) fn assume_checked(raw: &'a [u8]) -> Self {
        debug_assert!(Self::parse(raw, usize::MAX).is_ok());
        TrieView {
            area: &raw[8..],
            name_count: u64_at(raw, 0) as usize,
        }
    }

    /// Number of inserted names (the stored count, including overwritten
    /// duplicates — mirrors [`Autocomplete::len`]).
    pub fn len(&self) -> usize {
        self.name_count
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.name_count == 0
    }

    fn terminal(&self, off: usize) -> Option<(NodeId, f64)> {
        if u32_at(self.area, off) == 1 {
            Some((
                NodeId(u32_at(self.area, off + 8)),
                f64::from_bits(u64_at(self.area, off + 16)),
            ))
        } else {
            None
        }
    }

    fn child_count(&self, off: usize) -> usize {
        u32_at(self.area, off + 4) as usize
    }

    fn child(&self, off: usize, i: usize) -> (char, usize) {
        let base = off + 8 + 16 * (u32_at(self.area, off) as usize) + 16 * i;
        (
            char::from_u32(u32_at(self.area, base)).expect("validated by parse"),
            u64_at(self.area, base + 8) as usize,
        )
    }

    fn record_size(&self, off: usize) -> usize {
        8 + 16 * (u32_at(self.area, off) as usize) + 16 * self.child_count(off)
    }

    /// Follow the edge labelled `c` out of the record at `off` — binary
    /// search over the ascending child characters.
    fn descend(&self, off: usize, c: char) -> Option<usize> {
        let n = self.child_count(off);
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if (self.child(off, mid).0 as u32) < c as u32 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < n && self.child(off, lo).0 == c).then(|| self.child(off, lo).1)
    }

    /// Exact lookup of a (normalized) name — mirrors
    /// [`Autocomplete::lookup`].
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        let norm = normalize(name);
        let mut off = 0usize;
        for c in norm.chars() {
            off = self.descend(off, c)?;
        }
        self.terminal(off).map(|(id, _)| id)
    }

    /// The top-`limit` completions of `prefix` — identical answers to
    /// [`Autocomplete::complete`].
    pub fn complete(&self, prefix: &str, limit: usize) -> Vec<(NodeId, String, f64)> {
        let norm = normalize(prefix);
        let mut off = 0usize;
        for c in norm.chars() {
            match self.descend(off, c) {
                Some(next) => off = next,
                None => return Vec::new(),
            }
        }
        let mut found: Vec<(NodeId, String, f64)> = Vec::new();
        let mut stack: Vec<(usize, String)> = vec![(off, norm)];
        while let Some((off, path)) = stack.pop() {
            if let Some((id, score)) = self.terminal(off) {
                found.push((id, path.clone(), score));
            }
            for i in 0..self.child_count(off) {
                let (c, child) = self.child(off, i);
                let mut next = path.clone();
                next.push(c);
                stack.push((child, next));
            }
        }
        found.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        found.truncate(limit);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Autocomplete {
        Autocomplete::build([
            ("Jure Leskovec", NodeId(0), 50.0),
            ("Jiawei Han", NodeId(1), 80.0),
            ("Jian Pei", NodeId(2), 60.0),
            ("Michael Jordan", NodeId(3), 90.0),
            ("Michael Stonebraker", NodeId(4), 85.0),
        ])
    }

    #[test]
    fn prefix_completion_ranked_by_score() {
        let ac = sample();
        let hits = ac.complete("ji", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, NodeId(1), "jiawei han ranks first (score 80)");
        assert_eq!(hits[1].0, NodeId(2));
    }

    #[test]
    fn case_and_whitespace_insensitive() {
        let ac = sample();
        let hits = ac.complete("  MICHAEL ", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, "michael jordan");
    }

    #[test]
    fn limit_respected() {
        let ac = sample();
        assert_eq!(ac.complete("", 3).len(), 3);
        assert_eq!(ac.complete("", 100).len(), 5);
    }

    #[test]
    fn no_match_is_empty() {
        let ac = sample();
        assert!(ac.complete("zz", 5).is_empty());
    }

    #[test]
    fn exact_lookup() {
        let ac = sample();
        assert_eq!(ac.lookup("jure leskovec"), Some(NodeId(0)));
        assert_eq!(ac.lookup("jure"), None, "prefix is not an exact name");
    }

    #[test]
    fn duplicate_names_keep_higher_score() {
        let mut ac = Autocomplete::default();
        ac.insert("wei chen", NodeId(1), 10.0);
        ac.insert("wei chen", NodeId(2), 99.0);
        ac.insert("wei chen", NodeId(3), 5.0);
        assert_eq!(ac.lookup("wei chen"), Some(NodeId(2)));
    }

    #[test]
    fn empty_names_ignored() {
        let mut ac = Autocomplete::default();
        ac.insert("  ", NodeId(1), 1.0);
        assert!(ac.complete("", 5).is_empty());
    }

    #[test]
    fn flat_encoding_round_trips_and_view_matches() {
        let ac = sample();
        let mut buf = BytesMut::new();
        ac.encode_into(&mut buf);
        let raw = buf.freeze();
        let back = Autocomplete::decode_from(&raw[..], 5).unwrap();
        assert_eq!(back, ac, "owned decode is lossless");
        let view = TrieView::parse(&raw[..], 5).unwrap();
        assert_eq!(view.len(), ac.len());
        for prefix in [
            "",
            "j",
            "ji",
            "jia",
            "michael",
            "  MICHAEL ",
            "zz",
            "jure leskovec",
        ] {
            for limit in [0, 1, 3, 100] {
                assert_eq!(
                    view.complete(prefix, limit),
                    ac.complete(prefix, limit),
                    "complete({prefix:?}, {limit})"
                );
            }
            assert_eq!(view.lookup(prefix), ac.lookup(prefix), "lookup({prefix:?})");
        }
        // empty trie round-trips too
        let empty = Autocomplete::default();
        let mut buf = BytesMut::new();
        empty.encode_into(&mut buf);
        let raw = buf.freeze();
        assert_eq!(Autocomplete::decode_from(&raw[..], 0).unwrap(), empty);
        assert!(TrieView::parse(&raw[..], 0).unwrap().is_empty());
    }

    #[test]
    fn view_rejects_malformed_payloads() {
        let ac = sample();
        let mut buf = BytesMut::new();
        ac.encode_into(&mut buf);
        let raw = buf.freeze();
        // truncation anywhere fails closed
        for cut in [0, 7, 8, 15, raw.len() - 8, raw.len() - 1] {
            assert!(
                TrieView::parse(&raw[..cut], 5).is_err(),
                "cut at {cut} must not parse"
            );
        }
        // a terminal id outside the graph is rejected
        assert!(TrieView::parse(&raw[..], 1).is_err());
        // a forged child offset breaks the preorder invariant: the root is
        // non-terminal here, so its first child offset word sits at 8+16
        let mut bent = raw.to_vec();
        let off = u64::from_le_bytes(bent[24..32].try_into().unwrap());
        bent[24..32].copy_from_slice(&(off + 8).to_le_bytes());
        assert!(TrieView::parse(&bent, 5).is_err());
        // a non-terminal root record of the wrong parity: flag > 1
        let mut flag = raw.to_vec();
        flag[8] = 7;
        assert!(TrieView::parse(&flag, 5).is_err());
    }
}
