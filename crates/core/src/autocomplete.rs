//! Name auto-completion (Scenario 2: "she can simply type in the name in
//! OCTOPUS, while assisted by an auto-completion tool").
//!
//! A compressed-enough trie over normalized user names. Each terminal
//! carries the user's id and an importance score (the engine uses
//! out-degree by default, so famous users surface first); completion walks
//! the prefix and collects the best `limit` terminals below it.

use octopus_graph::NodeId;
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: HashMap<char, TrieNode>,
    /// Terminal payload: (user, score).
    terminal: Option<(NodeId, f64)>,
}

/// Prefix index over user names.
#[derive(Debug, Clone, Default)]
pub struct Autocomplete {
    root: TrieNode,
    size: usize,
}

fn normalize(s: &str) -> String {
    s.trim().to_lowercase()
}

impl Autocomplete {
    /// Build from `(name, id, score)` triples. Later duplicates of the same
    /// normalized name keep the higher score.
    pub fn build<'a>(entries: impl IntoIterator<Item = (&'a str, NodeId, f64)>) -> Self {
        let mut ac = Autocomplete::default();
        for (name, id, score) in entries {
            ac.insert(name, id, score);
        }
        ac
    }

    /// Insert one name.
    pub fn insert(&mut self, name: &str, id: NodeId, score: f64) {
        let norm = normalize(name);
        if norm.is_empty() {
            return;
        }
        let mut node = &mut self.root;
        for c in norm.chars() {
            node = node.children.entry(c).or_default();
        }
        match &mut node.terminal {
            Some((_, s)) if *s >= score => {}
            slot => *slot = Some((id, score)),
        }
        self.size += 1;
    }

    /// Number of inserted names (including overwritten duplicates).
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The top-`limit` completions of `prefix`, ranked by descending score
    /// (ties by node id). Returns `(id, completed_name, score)`.
    pub fn complete(&self, prefix: &str, limit: usize) -> Vec<(NodeId, String, f64)> {
        let norm = normalize(prefix);
        let mut node = &self.root;
        for c in norm.chars() {
            match node.children.get(&c) {
                Some(n) => node = n,
                None => return Vec::new(),
            }
        }
        // collect all terminals below `node`
        let mut found: Vec<(NodeId, String, f64)> = Vec::new();
        let mut stack: Vec<(&TrieNode, String)> = vec![(node, norm)];
        while let Some((n, path)) = stack.pop() {
            if let Some((id, score)) = n.terminal {
                found.push((id, path.clone(), score));
            }
            for (&c, child) in &n.children {
                let mut next = path.clone();
                next.push(c);
                stack.push((child, next));
            }
        }
        found.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        found.truncate(limit);
        found
    }

    /// Exact lookup of a (normalized) name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        let norm = normalize(name);
        let mut node = &self.root;
        for c in norm.chars() {
            node = node.children.get(&c)?;
        }
        node.terminal.map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Autocomplete {
        Autocomplete::build([
            ("Jure Leskovec", NodeId(0), 50.0),
            ("Jiawei Han", NodeId(1), 80.0),
            ("Jian Pei", NodeId(2), 60.0),
            ("Michael Jordan", NodeId(3), 90.0),
            ("Michael Stonebraker", NodeId(4), 85.0),
        ])
    }

    #[test]
    fn prefix_completion_ranked_by_score() {
        let ac = sample();
        let hits = ac.complete("ji", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, NodeId(1), "jiawei han ranks first (score 80)");
        assert_eq!(hits[1].0, NodeId(2));
    }

    #[test]
    fn case_and_whitespace_insensitive() {
        let ac = sample();
        let hits = ac.complete("  MICHAEL ", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, "michael jordan");
    }

    #[test]
    fn limit_respected() {
        let ac = sample();
        assert_eq!(ac.complete("", 3).len(), 3);
        assert_eq!(ac.complete("", 100).len(), 5);
    }

    #[test]
    fn no_match_is_empty() {
        let ac = sample();
        assert!(ac.complete("zz", 5).is_empty());
    }

    #[test]
    fn exact_lookup() {
        let ac = sample();
        assert_eq!(ac.lookup("jure leskovec"), Some(NodeId(0)));
        assert_eq!(ac.lookup("jure"), None, "prefix is not an exact name");
    }

    #[test]
    fn duplicate_names_keep_higher_score() {
        let mut ac = Autocomplete::default();
        ac.insert("wei chen", NodeId(1), 10.0);
        ac.insert("wei chen", NodeId(2), 99.0);
        ac.insert("wei chen", NodeId(3), 5.0);
        assert_eq!(ac.lookup("wei chen"), Some(NodeId(2)));
    }

    #[test]
    fn empty_names_ignored() {
        let mut ac = Autocomplete::default();
        ac.insert("  ", NodeId(1), 1.0);
        assert!(ac.complete("", 5).is_empty());
    }
}
