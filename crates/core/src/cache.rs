//! Online query cache for the KIM service.
//!
//! Interactive workloads repeat themselves: trending keywords map to nearly
//! identical topic distributions. The cache stores recently answered
//! `(γ, k) → seeds` pairs and answers any query whose distribution lies
//! within an L1 `tolerance` of a cached one (spread is Lipschitz in `γ`, so
//! close queries share near-optimal seed sets — the same observation the
//! topic-sample algorithm exploits offline, applied to the online stream).
//!
//! Eviction is least-recently-used with a fixed capacity. The cache is
//! internally synchronized (`parking_lot::Mutex`) so the engine can stay
//! `&self` for concurrent query serving.

use crate::kim::KimResult;
use octopus_topics::TopicDistribution;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: usize,
    /// Queries that had to be computed.
    pub misses: usize,
    /// Entries evicted by capacity pressure.
    pub evictions: usize,
}

struct Entry {
    gamma: TopicDistribution,
    k: usize,
    result: KimResult,
}

/// An LRU cache over answered KIM queries.
pub struct QueryCache {
    capacity: usize,
    tolerance: f64,
    inner: Mutex<Inner>,
}

struct Inner {
    /// Most-recently used at the back.
    entries: VecDeque<Entry>,
    stats: CacheStats,
}

impl QueryCache {
    /// Create a cache holding up to `capacity` answers, matching queries
    /// within L1 `tolerance`.
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or not finite.
    pub fn new(capacity: usize, tolerance: f64) -> Self {
        assert!(
            tolerance >= 0.0 && tolerance.is_finite(),
            "tolerance must be ≥ 0"
        );
        QueryCache {
            capacity,
            tolerance,
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// A cache that never matches (capacity 0) — the disabled state.
    pub fn disabled() -> Self {
        Self::new(0, 0.0)
    }

    /// Whether caching is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up a query; moves the hit to the MRU position.
    pub fn get(&self, gamma: &TopicDistribution, k: usize) -> Option<KimResult> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        let pos = inner
            .entries
            .iter()
            .position(|e| e.k == k && e.gamma.l1_distance(gamma) <= self.tolerance);
        match pos {
            Some(i) => {
                let entry = inner.entries.remove(i).expect("position valid under lock");
                let result = entry.result.clone();
                inner.entries.push_back(entry);
                inner.stats.hits += 1;
                Some(result)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Insert an answered query.
    pub fn put(&self, gamma: TopicDistribution, k: usize, result: KimResult) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        // replace an existing equivalent entry instead of duplicating
        if let Some(i) = inner
            .entries
            .iter()
            .position(|e| e.k == k && e.gamma.l1_distance(&gamma) <= self.tolerance)
        {
            inner.entries.remove(i);
        }
        if inner.entries.len() >= self.capacity {
            inner.entries.pop_front();
            inner.stats.evictions += 1;
        }
        inner.entries.push_back(Entry { gamma, k, result });
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::KimStats;
    use octopus_graph::NodeId;

    fn result(tag: u32) -> KimResult {
        KimResult {
            seeds: vec![NodeId(tag)],
            spread: tag as f64,
            stats: KimStats::default(),
        }
    }

    #[test]
    fn exact_hit_and_miss() {
        let cache = QueryCache::new(4, 1e-9);
        let g = TopicDistribution::uniform(3);
        assert!(cache.get(&g, 5).is_none());
        cache.put(g.clone(), 5, result(1));
        assert_eq!(cache.get(&g, 5).unwrap().seeds, vec![NodeId(1)]);
        // different k misses
        assert!(cache.get(&g, 6).is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn tolerance_matches_nearby_queries() {
        let cache = QueryCache::new(4, 0.1);
        let g = TopicDistribution::new(vec![0.5, 0.5]).unwrap();
        cache.put(g, 3, result(7));
        let near = TopicDistribution::new(vec![0.52, 0.48]).unwrap(); // L1 = 0.04
        assert!(cache.get(&near, 3).is_some());
        let far = TopicDistribution::new(vec![0.9, 0.1]).unwrap(); // L1 = 0.8
        assert!(cache.get(&far, 3).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let cache = QueryCache::new(2, 1e-9);
        let a = TopicDistribution::pure(3, 0);
        let b = TopicDistribution::pure(3, 1);
        let c = TopicDistribution::pure(3, 2);
        cache.put(a.clone(), 1, result(1));
        cache.put(b.clone(), 1, result(2));
        // touch a so b becomes LRU
        assert!(cache.get(&a, 1).is_some());
        cache.put(c.clone(), 1, result(3));
        assert!(cache.get(&b, 1).is_none(), "b was evicted");
        assert!(cache.get(&a, 1).is_some());
        assert!(cache.get(&c, 1).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn duplicate_put_replaces() {
        let cache = QueryCache::new(2, 1e-9);
        let g = TopicDistribution::uniform(2);
        cache.put(g.clone(), 1, result(1));
        cache.put(g.clone(), 1, result(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&g, 1).unwrap().seeds, vec![NodeId(2)]);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = QueryCache::disabled();
        let g = TopicDistribution::uniform(2);
        cache.put(g.clone(), 1, result(1));
        assert!(cache.get(&g, 1).is_none());
        assert!(!cache.is_enabled());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = QueryCache::new(2, 1e-9);
        let g = TopicDistribution::uniform(2);
        cache.put(g.clone(), 1, result(1));
        let _ = cache.get(&g, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }
}
