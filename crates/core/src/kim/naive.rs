//! The naive per-query baseline (§II-C): "compute `pp_{u,v}` for each edge
//! given the query and then employ the traditional IM algorithms. Obviously,
//! this solution would be very expensive, and cannot be used for answering
//! online keyword queries." — implemented faithfully so the online engines
//! have something to beat.

use super::{KimAlgorithm, KimResult, KimStats};
use octopus_cascade::{opim_select, OpimOptions};
use octopus_graph::TopicGraph;
use octopus_topics::TopicDistribution;

/// Naive engine: materialize the query graph, run OPIM (RR-sampling greedy
/// with a `(1−1/e−ε)` certificate) from scratch.
#[derive(Debug, Clone)]
pub struct NaiveKim<'g> {
    graph: &'g TopicGraph,
    opts: OpimOptions,
}

impl<'g> NaiveKim<'g> {
    /// Create the baseline with default OPIM parameters.
    pub fn new(graph: &'g TopicGraph) -> Self {
        NaiveKim {
            graph,
            opts: OpimOptions::default(),
        }
    }

    /// Override the OPIM parameters (ε/δ/sample schedule).
    pub fn with_opim(mut self, opts: OpimOptions) -> Self {
        self.opts = opts;
        self
    }
}

impl KimAlgorithm for NaiveKim<'_> {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let probs = self
            .graph
            .materialize(gamma.as_slice())
            .expect("gamma dimension validated at facade entry");
        let mut opts = self.opts.clone();
        opts.k = k;
        let res = opim_select(self.graph, &probs, &opts);
        KimResult {
            seeds: res.seeds,
            spread: res.spread,
            stats: KimStats {
                // every RR set is "exact work" the online engines avoid
                exact_evaluations: res.rr_sets,
                ..KimStats::default()
            },
        }
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

/// The *classical* naive engine: CELF greedy with Monte-Carlo spread
/// estimation (Kempe et al., KDD'03 — what "the traditional IM algorithms"
/// meant when the topic-aware line of work began). Kept alongside
/// [`NaiveKim`] so the harness can show both generations of baseline:
/// MC-greedy is the one that is "extremely expensive" online.
#[derive(Debug, Clone)]
pub struct McGreedyKim<'g> {
    graph: &'g TopicGraph,
    /// Simulations per spread evaluation.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl<'g> McGreedyKim<'g> {
    /// Create the MC-greedy baseline (`runs` simulations per evaluation).
    pub fn new(graph: &'g TopicGraph, runs: usize, seed: u64) -> Self {
        McGreedyKim { graph, runs, seed }
    }
}

impl KimAlgorithm for McGreedyKim<'_> {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let probs = self
            .graph
            .materialize(gamma.as_slice())
            .expect("gamma dimension validated at facade entry");
        let mut oracle = octopus_cascade::McOracle::new(self.graph, &probs, self.runs, self.seed);
        let res = octopus_cascade::celf_select(&mut oracle, k);
        KimResult {
            seeds: res.seeds,
            spread: res.spread,
            stats: KimStats {
                exact_evaluations: res.evaluations,
                ..KimStats::default()
            },
        }
    }

    fn name(&self) -> &'static str {
        "mc-greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::testutil::two_topic_hubs;
    use octopus_graph::NodeId;

    #[test]
    fn finds_topic_specific_hub() {
        let g = two_topic_hubs();
        let engine = NaiveKim::new(&g);
        let t0 = TopicDistribution::pure(2, 0);
        let res = engine.select(&t0, 1);
        assert_eq!(res.seeds, vec![NodeId(0)], "topic-0 query must pick hub 0");
        let t1 = TopicDistribution::pure(2, 1);
        let res = engine.select(&t1, 1);
        assert_eq!(res.seeds, vec![NodeId(1)], "topic-1 query must pick hub 1");
    }

    #[test]
    fn mc_greedy_finds_hubs_too() {
        let g = two_topic_hubs();
        let engine = McGreedyKim::new(&g, 300, 5);
        let res = engine.select(&TopicDistribution::uniform(2), 2);
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
        assert!(res.stats.exact_evaluations >= g.node_count());
    }

    #[test]
    fn mixed_query_selects_both_hubs() {
        let g = two_topic_hubs();
        let engine = NaiveKim::new(&g);
        let mix = TopicDistribution::uniform(2);
        let res = engine.select(&mix, 2);
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
        assert!(res.spread > 2.0);
        assert!(res.stats.exact_evaluations > 0);
    }
}
