//! Marginal Influence Sort (MIS): the precomputation-heavy fast path of the
//! online topic-aware IM framework \[3\].
//!
//! Offline, run CELF once per *pure* topic and record each selected user's
//! marginal gain `MG_z(u)`. Online, score every recorded user by
//! `Σ_z γ_z · MG_z(u)` and return the top-`k` by score. Under the
//! topic-disjointness observed in real networks (an edge's probability mass
//! concentrates on one topic) the aggregate marginal gains are close to the
//! true mixed-query gains, which is why this heuristic answers in
//! microseconds with near-greedy quality — experiment E4 quantifies the gap.

use super::{KimAlgorithm, KimResult, KimStats};
use octopus_cascade::{celf_select, stream_seed, RrOracle};
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rayon::prelude::*;
use std::collections::HashMap;

/// The MIS engine: per-topic CELF marginal gains, aggregated at query time.
#[derive(Debug, Clone, PartialEq)]
pub struct MisKim {
    /// `gains[z]` maps user → marginal gain in topic `z`'s CELF run.
    gains: Vec<HashMap<NodeId, f64>>,
    /// Union of all per-topic seed users (the only scorable candidates).
    candidates: Vec<NodeId>,
    num_topics: usize,
}

impl MisKim {
    /// Precompute per-topic seed tables.
    ///
    /// * `k_max` — deepest seed set a query may ask for (`k ≤ k_max`);
    /// * `rr_per_topic` — RR sets per pure-topic CELF run;
    /// * `seed` — sampling seed.
    ///
    /// The per-topic CELF runs are independent and execute in parallel;
    /// topic `z` samples from the stream `stream_seed(seed, z)`, so the
    /// tables do not depend on the thread count.
    pub fn build(graph: &TopicGraph, k_max: usize, rr_per_topic: usize, seed: u64) -> Self {
        let z_count = graph.num_topics();
        let gains: Vec<HashMap<NodeId, f64>> = (0..z_count)
            .into_par_iter()
            .map(|z| {
                let gamma = TopicDistribution::pure(z_count, z);
                let probs = graph
                    .materialize(gamma.as_slice())
                    .expect("valid corner gamma");
                let mut oracle =
                    RrOracle::new(graph, &probs, rr_per_topic, stream_seed(seed, z as u64));
                let res = celf_select(&mut oracle, k_max);
                res.seeds
                    .iter()
                    .copied()
                    .zip(res.gains.iter().copied())
                    .collect()
            })
            .collect();
        let mut candidate_set: Vec<NodeId> = gains
            .iter()
            .flat_map(|table| table.keys().copied())
            .collect();
        candidate_set.sort();
        candidate_set.dedup();
        MisKim {
            gains,
            candidates: candidate_set,
            num_topics: z_count,
        }
    }

    /// Users appearing in at least one per-topic seed table.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// The per-topic marginal-gain tables (the artifact-codec path).
    pub fn gains(&self) -> &[HashMap<NodeId, f64>] {
        &self.gains
    }

    /// Reassemble from decoded per-topic gain tables; the candidate union
    /// is re-derived exactly as [`MisKim::build`] derives it.
    pub fn from_parts(gains: Vec<HashMap<NodeId, f64>>) -> Self {
        let mut candidate_set: Vec<NodeId> = gains
            .iter()
            .flat_map(|table| table.keys().copied())
            .collect();
        candidate_set.sort();
        candidate_set.dedup();
        let num_topics = gains.len();
        MisKim {
            gains,
            candidates: candidate_set,
            num_topics,
        }
    }

    /// The incremental-rebuild cache key of the `mis-tables` offline stage.
    ///
    /// [`MisKim::build`] reads the graph's topology (RR-set traversals) and
    /// per-edge topic probabilities (pure-topic materialization), plus
    /// `k_max`, the RR budget, and the sampling seed. Node **names are
    /// deliberately absent** — MIS never reads them, so a rename reuses the
    /// cached tables. `enabled` records whether the configured engine
    /// builds the tables at all (see `PrecompBound::input_key` for why the
    /// flag is part of the key). `topology`/`weights` are the graph slice
    /// hashes from `octopus_graph::codec`.
    pub fn input_key(
        topology: u64,
        weights: u64,
        k_max: usize,
        rr_per_topic: usize,
        seed: u64,
        enabled: bool,
    ) -> u64 {
        let mut h = octopus_graph::wire::Fnv64::new();
        h.write(b"octa:mis-tables");
        h.write_u8(enabled as u8);
        if enabled {
            h.write_u64(topology);
            h.write_u64(weights);
            h.write_u64(k_max as u64);
            h.write_u64(rr_per_topic as u64);
            h.write_u64(seed);
        }
        h.finish()
    }

    /// The aggregated MIS score of a user under `gamma`.
    pub fn score(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        (0..self.num_topics)
            .map(|z| gamma[z] * self.gains[z].get(&u).copied().unwrap_or(0.0))
            .sum()
    }
}

// ---------------------------------------------------------------------------
// v4 flat layout of the mis-tables section (zero-copy mapped read path)
// ---------------------------------------------------------------------------

/// Encode the `mis-tables` OCTA v4 section: `present u64` (0 or 1), then —
/// when present —
///
/// ```text
/// z u64 @8 | total u64 @16 | union u64 @24
/// topic_offsets (z+1) × u64 @32        -- prefix entry counts into ids/gains
/// ids      total × u32                 -- per topic, sorted by id ascending
/// [zero pad to 8]
/// gains    total × f64
/// union_ids union × u32                -- sorted ascending (the candidates)
/// [zero pad to 8]
/// ```
///
/// `total` is the sum of per-topic entry counts; `union_ids` is the sorted
/// deduplicated union of all per-topic ids — exactly the candidate order
/// [`MisKim::select`] scans, so a mapped reader reproduces its answers
/// bit for bit.
pub fn encode_mis_section(mis: Option<&MisKim>, buf: &mut bytes::BytesMut) {
    use bytes::BufMut;
    use octopus_graph::wire::pad8;
    let Some(m) = mis else {
        buf.put_u64_le(0);
        return;
    };
    let per_topic: Vec<Vec<(NodeId, f64)>> = m
        .gains
        .iter()
        .map(|table| {
            let mut rows: Vec<(NodeId, f64)> = table.iter().map(|(&u, &g)| (u, g)).collect();
            rows.sort_by_key(|&(u, _)| u);
            rows
        })
        .collect();
    let total: usize = per_topic.iter().map(Vec::len).sum();
    buf.put_u64_le(1);
    buf.put_u64_le(m.num_topics as u64);
    buf.put_u64_le(total as u64);
    buf.put_u64_le(m.candidates.len() as u64);
    let mut cum = 0u64;
    buf.put_u64_le(0);
    for rows in &per_topic {
        cum += rows.len() as u64;
        buf.put_u64_le(cum);
    }
    for rows in &per_topic {
        for &(u, _) in rows {
            buf.put_u32_le(u.0);
        }
    }
    buf.put_bytes(0, pad8(4 * total));
    for rows in &per_topic {
        for &(_, g) in rows {
            buf.put_f64_le(g);
        }
    }
    for &u in &m.candidates {
        buf.put_u32_le(u.0);
    }
    buf.put_bytes(0, pad8(4 * m.candidates.len()));
}

/// A zero-copy view of a persisted `mis-tables` section: scores and selects
/// directly off the mapped section bytes, bit-identically to the owned
/// [`MisKim`] (same candidate scan order, same summation order).
#[derive(Debug, Clone, Copy)]
pub struct MisView<'a> {
    raw: &'a [u8],
    z: usize,
    union: usize,
    ids_off: usize,
    gains_off: usize,
    union_off: usize,
}

impl<'a> MisView<'a> {
    /// Parse and structurally validate a v4 `mis-tables` payload. Returns
    /// `Ok(None)` for a persisted-absent section. Validates the offset
    /// table (monotone prefix counts), exact section length, per-topic id
    /// sortedness, id bounds, and that `union_ids` is exactly the sorted
    /// union of the per-topic ids — everything [`MisView::select`] relies
    /// on to mirror the owned engine.
    pub fn parse(
        raw: &'a [u8],
        num_topics: usize,
        node_count: usize,
    ) -> Result<Option<Self>, octopus_graph::wire::WireError> {
        use octopus_graph::wire::{align8, WireError};
        let word = |at: usize| u64::from_le_bytes(raw[at..at + 8].try_into().expect("8 bytes"));
        if raw.len() < 8 {
            return Err(WireError(
                "mis section shorter than its present flag".into(),
            ));
        }
        match word(0) {
            0 => {
                if raw.len() != 8 {
                    return Err(WireError("absent mis section has trailing bytes".into()));
                }
                Ok(None)
            }
            1 => {
                if raw.len() < 32 {
                    return Err(WireError("mis section header truncated".into()));
                }
                let z = word(8) as usize;
                let total = word(16) as usize;
                let union = word(24) as usize;
                if z != num_topics {
                    return Err(WireError(format!(
                        "mis table has {z} topics, graph has {num_topics}"
                    )));
                }
                let offs_at = 32;
                let ids_off = offs_at + 8 * (z + 1);
                if raw.len() < ids_off {
                    return Err(WireError("mis topic offsets truncated".into()));
                }
                let gains_off = align8(ids_off + 4 * total);
                let union_off = gains_off + 8 * total;
                let want = align8(union_off + 4 * union);
                if raw.len() != want {
                    return Err(WireError(format!(
                        "mis section length {} does not match its counts (want {want})",
                        raw.len()
                    )));
                }
                let view = MisView {
                    raw,
                    z,
                    union,
                    ids_off,
                    gains_off,
                    union_off,
                };
                // prefix counts must be monotone and end at `total`
                let mut prev = view.prefix(0);
                if prev != 0 {
                    return Err(WireError("mis topic offsets must start at 0".into()));
                }
                for t in 1..=z {
                    let cur = view.prefix(t);
                    if cur < prev {
                        return Err(WireError("mis topic offsets must be monotone".into()));
                    }
                    prev = cur;
                }
                if prev != total {
                    return Err(WireError("mis topic offsets must end at total".into()));
                }
                // per-topic ids strictly ascending and in bounds
                let mut all_ids: Vec<u32> = Vec::with_capacity(total);
                for t in 0..z {
                    let (lo, hi) = view.topic_bounds(t);
                    for i in lo..hi {
                        let id = view.id_at(i);
                        if id as usize >= node_count {
                            return Err(WireError(format!("mis id {id} out of bounds")));
                        }
                        if i > lo && view.id_at(i - 1) >= id {
                            return Err(WireError(
                                "mis topic ids must be strictly ascending".into(),
                            ));
                        }
                        all_ids.push(id);
                    }
                }
                // union_ids must be exactly the sorted union of the topic ids
                all_ids.sort_unstable();
                all_ids.dedup();
                if all_ids.len() != union || (0..union).any(|i| view.union_id_at(i) != all_ids[i]) {
                    return Err(WireError(
                        "mis union_ids do not match the per-topic id union".into(),
                    ));
                }
                Ok(Some(view))
            }
            other => Err(WireError(format!("invalid mis present flag {other}"))),
        }
    }

    #[inline]
    fn prefix(&self, t: usize) -> usize {
        let at = 32 + 8 * t;
        u64::from_le_bytes(self.raw[at..at + 8].try_into().expect("validated len")) as usize
    }

    /// Entry range of topic `t` within the ids/gains arrays.
    #[inline]
    fn topic_bounds(&self, t: usize) -> (usize, usize) {
        (self.prefix(t), self.prefix(t + 1))
    }

    #[inline]
    fn id_at(&self, i: usize) -> u32 {
        let at = self.ids_off + 4 * i;
        u32::from_le_bytes(self.raw[at..at + 4].try_into().expect("validated len"))
    }

    #[inline]
    fn gain_at(&self, i: usize) -> f64 {
        let at = self.gains_off + 8 * i;
        f64::from_le_bytes(self.raw[at..at + 8].try_into().expect("validated len"))
    }

    #[inline]
    fn union_id_at(&self, i: usize) -> u32 {
        let at = self.union_off + 4 * i;
        u32::from_le_bytes(self.raw[at..at + 4].try_into().expect("validated len"))
    }

    /// Candidate users (the persisted sorted union of per-topic seeds).
    pub fn candidate_count(&self) -> usize {
        self.union
    }

    /// The aggregated MIS score of a user under `gamma` — the same
    /// expression as [`MisKim::score`], with per-topic lookups served by
    /// binary search over the sorted id arrays.
    pub fn score(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        (0..self.z)
            .map(|t| {
                let (lo, hi) = self.topic_bounds(t);
                let mut left = lo;
                let mut right = hi;
                let mut gain = 0.0;
                while left < right {
                    let mid = left + (right - left) / 2;
                    match self.id_at(mid).cmp(&u.0) {
                        std::cmp::Ordering::Less => left = mid + 1,
                        std::cmp::Ordering::Greater => right = mid,
                        std::cmp::Ordering::Equal => {
                            gain = self.gain_at(mid);
                            break;
                        }
                    }
                }
                gamma[t] * gain
            })
            .sum()
    }

    /// Top-`k` selection, mirroring [`MisKim::select`] exactly: same
    /// candidate order, same comparator, same spread summation.
    pub fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let mut scored: Vec<(NodeId, f64)> = (0..self.union)
            .map(|i| {
                let u = NodeId(self.union_id_at(i));
                (u, self.score(u, gamma))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        let spread = scored.iter().map(|&(_, s)| s).sum();
        KimResult {
            seeds: scored.iter().map(|&(u, _)| u).collect(),
            spread,
            stats: KimStats {
                bound_evaluations: self.union,
                ..KimStats::default()
            },
        }
    }

    /// Decode into the owned form (the non-mapped artifact-cache path).
    pub fn to_mis(&self) -> MisKim {
        let gains = (0..self.z)
            .map(|t| {
                let (lo, hi) = self.topic_bounds(t);
                (lo..hi)
                    .map(|i| (NodeId(self.id_at(i)), self.gain_at(i)))
                    .collect()
            })
            .collect();
        MisKim::from_parts(gains)
    }
}

impl KimAlgorithm for MisKim {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let mut scored: Vec<(NodeId, f64)> = self
            .candidates
            .iter()
            .map(|&u| (u, self.score(u, gamma)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        let spread = scored.iter().map(|&(_, s)| s).sum();
        KimResult {
            seeds: scored.iter().map(|&(u, _)| u).collect(),
            spread,
            stats: KimStats {
                bound_evaluations: self.candidates.len(),
                ..KimStats::default()
            },
        }
    }

    fn name(&self) -> &'static str {
        "mis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::testutil::two_topic_hubs;

    fn engine() -> MisKim {
        MisKim::build(&two_topic_hubs(), 5, 3000, 42)
    }

    #[test]
    fn pure_topic_queries_pick_matching_hub() {
        let m = engine();
        let res = m.select(&TopicDistribution::pure(2, 0), 1);
        assert_eq!(res.seeds, vec![NodeId(0)]);
        let res = m.select(&TopicDistribution::pure(2, 1), 1);
        assert_eq!(res.seeds, vec![NodeId(1)]);
    }

    #[test]
    fn mixed_query_ranks_both_hubs_top() {
        let m = engine();
        let res = m.select(&TopicDistribution::uniform(2), 2);
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn score_is_linear_in_gamma() {
        let m = engine();
        let u = NodeId(0);
        let g0 = m.score(u, &TopicDistribution::pure(2, 0));
        let g1 = m.score(u, &TopicDistribution::pure(2, 1));
        let mix = m.score(u, &TopicDistribution::uniform(2));
        assert!((mix - 0.5 * (g0 + g1)).abs() < 1e-9);
    }

    #[test]
    fn skewed_gamma_reorders_results() {
        let m = engine();
        let skew0 = TopicDistribution::new(vec![0.9, 0.1]).unwrap();
        let res = m.select(&skew0, 2);
        assert_eq!(
            res.seeds[0],
            NodeId(0),
            "topic-0-heavy query ranks hub 0 first"
        );
        let skew1 = TopicDistribution::new(vec![0.1, 0.9]).unwrap();
        let res = m.select(&skew1, 2);
        assert_eq!(res.seeds[0], NodeId(1));
    }

    #[test]
    fn candidates_are_union_of_topic_seeds() {
        let m = engine();
        assert!(m.candidates().contains(&NodeId(0)));
        assert!(m.candidates().contains(&NodeId(1)));
        // leaves never selected by any pure-topic CELF run are not candidates
        assert!(m.candidates().len() <= 13);
    }

    #[test]
    fn k_larger_than_candidates_is_safe() {
        let m = engine();
        let res = m.select(&TopicDistribution::uniform(2), 100);
        assert!(res.seeds.len() <= m.candidates().len());
    }

    #[test]
    fn mis_view_round_trips_and_selects_bit_identically() {
        let g = two_topic_hubs();
        let m = engine();
        let mut buf = bytes::BytesMut::new();
        encode_mis_section(Some(&m), &mut buf);
        assert_eq!(buf.len() % 8, 0, "section records are padded to 8");
        let view = MisView::parse(&buf, g.num_topics(), g.node_count())
            .unwrap()
            .expect("present");
        assert_eq!(view.candidate_count(), m.candidates().len());
        for gamma in [
            TopicDistribution::pure(2, 0),
            TopicDistribution::pure(2, 1),
            TopicDistribution::uniform(2),
            TopicDistribution::new(vec![0.9, 0.1]).unwrap(),
        ] {
            for &u in m.candidates() {
                assert_eq!(
                    view.score(u, &gamma).to_bits(),
                    m.score(u, &gamma).to_bits()
                );
            }
            for k in [1, 2, 5, 100] {
                let a = view.select(&gamma, k);
                let b = m.select(&gamma, k);
                assert_eq!(a.seeds, b.seeds);
                assert_eq!(a.spread.to_bits(), b.spread.to_bits());
                assert_eq!(a.stats, b.stats);
            }
        }
        assert_eq!(view.to_mis(), m);

        // absent tables parse to None; truncation fails closed
        let mut absent = bytes::BytesMut::new();
        encode_mis_section(None, &mut absent);
        assert!(MisView::parse(&absent, 2, g.node_count())
            .unwrap()
            .is_none());
        assert!(MisView::parse(&buf[..buf.len() - 8], 2, g.node_count()).is_err());
        assert!(MisView::parse(&buf, 3, g.node_count()).is_err());
    }
}
