//! Marginal Influence Sort (MIS): the precomputation-heavy fast path of the
//! online topic-aware IM framework \[3\].
//!
//! Offline, run CELF once per *pure* topic and record each selected user's
//! marginal gain `MG_z(u)`. Online, score every recorded user by
//! `Σ_z γ_z · MG_z(u)` and return the top-`k` by score. Under the
//! topic-disjointness observed in real networks (an edge's probability mass
//! concentrates on one topic) the aggregate marginal gains are close to the
//! true mixed-query gains, which is why this heuristic answers in
//! microseconds with near-greedy quality — experiment E4 quantifies the gap.

use super::{KimAlgorithm, KimResult, KimStats};
use octopus_cascade::{celf_select, stream_seed, RrOracle};
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rayon::prelude::*;
use std::collections::HashMap;

/// The MIS engine: per-topic CELF marginal gains, aggregated at query time.
#[derive(Debug, Clone, PartialEq)]
pub struct MisKim {
    /// `gains[z]` maps user → marginal gain in topic `z`'s CELF run.
    gains: Vec<HashMap<NodeId, f64>>,
    /// Union of all per-topic seed users (the only scorable candidates).
    candidates: Vec<NodeId>,
    num_topics: usize,
}

impl MisKim {
    /// Precompute per-topic seed tables.
    ///
    /// * `k_max` — deepest seed set a query may ask for (`k ≤ k_max`);
    /// * `rr_per_topic` — RR sets per pure-topic CELF run;
    /// * `seed` — sampling seed.
    ///
    /// The per-topic CELF runs are independent and execute in parallel;
    /// topic `z` samples from the stream `stream_seed(seed, z)`, so the
    /// tables do not depend on the thread count.
    pub fn build(graph: &TopicGraph, k_max: usize, rr_per_topic: usize, seed: u64) -> Self {
        let z_count = graph.num_topics();
        let gains: Vec<HashMap<NodeId, f64>> = (0..z_count)
            .into_par_iter()
            .map(|z| {
                let gamma = TopicDistribution::pure(z_count, z);
                let probs = graph
                    .materialize(gamma.as_slice())
                    .expect("valid corner gamma");
                let mut oracle =
                    RrOracle::new(graph, &probs, rr_per_topic, stream_seed(seed, z as u64));
                let res = celf_select(&mut oracle, k_max);
                res.seeds
                    .iter()
                    .copied()
                    .zip(res.gains.iter().copied())
                    .collect()
            })
            .collect();
        let mut candidate_set: Vec<NodeId> = gains
            .iter()
            .flat_map(|table| table.keys().copied())
            .collect();
        candidate_set.sort();
        candidate_set.dedup();
        MisKim {
            gains,
            candidates: candidate_set,
            num_topics: z_count,
        }
    }

    /// Users appearing in at least one per-topic seed table.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// The per-topic marginal-gain tables (the artifact-codec path).
    pub fn gains(&self) -> &[HashMap<NodeId, f64>] {
        &self.gains
    }

    /// Reassemble from decoded per-topic gain tables; the candidate union
    /// is re-derived exactly as [`MisKim::build`] derives it.
    pub fn from_parts(gains: Vec<HashMap<NodeId, f64>>) -> Self {
        let mut candidate_set: Vec<NodeId> = gains
            .iter()
            .flat_map(|table| table.keys().copied())
            .collect();
        candidate_set.sort();
        candidate_set.dedup();
        let num_topics = gains.len();
        MisKim {
            gains,
            candidates: candidate_set,
            num_topics,
        }
    }

    /// The incremental-rebuild cache key of the `mis-tables` offline stage.
    ///
    /// [`MisKim::build`] reads the graph's topology (RR-set traversals) and
    /// per-edge topic probabilities (pure-topic materialization), plus
    /// `k_max`, the RR budget, and the sampling seed. Node **names are
    /// deliberately absent** — MIS never reads them, so a rename reuses the
    /// cached tables. `enabled` records whether the configured engine
    /// builds the tables at all (see `PrecompBound::input_key` for why the
    /// flag is part of the key). `topology`/`weights` are the graph slice
    /// hashes from `octopus_graph::codec`.
    pub fn input_key(
        topology: u64,
        weights: u64,
        k_max: usize,
        rr_per_topic: usize,
        seed: u64,
        enabled: bool,
    ) -> u64 {
        let mut h = octopus_graph::wire::Fnv64::new();
        h.write(b"octa:mis-tables");
        h.write_u8(enabled as u8);
        if enabled {
            h.write_u64(topology);
            h.write_u64(weights);
            h.write_u64(k_max as u64);
            h.write_u64(rr_per_topic as u64);
            h.write_u64(seed);
        }
        h.finish()
    }

    /// The aggregated MIS score of a user under `gamma`.
    pub fn score(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        (0..self.num_topics)
            .map(|z| gamma[z] * self.gains[z].get(&u).copied().unwrap_or(0.0))
            .sum()
    }
}

impl KimAlgorithm for MisKim {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let mut scored: Vec<(NodeId, f64)> = self
            .candidates
            .iter()
            .map(|&u| (u, self.score(u, gamma)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        let spread = scored.iter().map(|&(_, s)| s).sum();
        KimResult {
            seeds: scored.iter().map(|&(u, _)| u).collect(),
            spread,
            stats: KimStats {
                bound_evaluations: self.candidates.len(),
                ..KimStats::default()
            },
        }
    }

    fn name(&self) -> &'static str {
        "mis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::testutil::two_topic_hubs;

    fn engine() -> MisKim {
        MisKim::build(&two_topic_hubs(), 5, 3000, 42)
    }

    #[test]
    fn pure_topic_queries_pick_matching_hub() {
        let m = engine();
        let res = m.select(&TopicDistribution::pure(2, 0), 1);
        assert_eq!(res.seeds, vec![NodeId(0)]);
        let res = m.select(&TopicDistribution::pure(2, 1), 1);
        assert_eq!(res.seeds, vec![NodeId(1)]);
    }

    #[test]
    fn mixed_query_ranks_both_hubs_top() {
        let m = engine();
        let res = m.select(&TopicDistribution::uniform(2), 2);
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn score_is_linear_in_gamma() {
        let m = engine();
        let u = NodeId(0);
        let g0 = m.score(u, &TopicDistribution::pure(2, 0));
        let g1 = m.score(u, &TopicDistribution::pure(2, 1));
        let mix = m.score(u, &TopicDistribution::uniform(2));
        assert!((mix - 0.5 * (g0 + g1)).abs() < 1e-9);
    }

    #[test]
    fn skewed_gamma_reorders_results() {
        let m = engine();
        let skew0 = TopicDistribution::new(vec![0.9, 0.1]).unwrap();
        let res = m.select(&skew0, 2);
        assert_eq!(
            res.seeds[0],
            NodeId(0),
            "topic-0-heavy query ranks hub 0 first"
        );
        let skew1 = TopicDistribution::new(vec![0.1, 0.9]).unwrap();
        let res = m.select(&skew1, 2);
        assert_eq!(res.seeds[0], NodeId(1));
    }

    #[test]
    fn candidates_are_union_of_topic_seeds() {
        let m = engine();
        assert!(m.candidates().contains(&NodeId(0)));
        assert!(m.candidates().contains(&NodeId(1)));
        // leaves never selected by any pure-topic CELF run are not candidates
        assert!(m.candidates().len() <= 13);
    }

    #[test]
    fn k_larger_than_candidates_is_safe() {
        let m = engine();
        let res = m.select(&TopicDistribution::uniform(2), 100);
        assert!(res.seeds.len() <= m.candidates().len());
    }
}
