//! Marginal Influence Sort (MIS): the precomputation-heavy fast path of the
//! online topic-aware IM framework \[3\].
//!
//! Offline, run CELF once per *pure* topic and record each selected user's
//! marginal gain `MG_z(u)`. Online, score every recorded user by
//! `Σ_z γ_z · MG_z(u)` and return the top-`k` by score. Under the
//! topic-disjointness observed in real networks (an edge's probability mass
//! concentrates on one topic) the aggregate marginal gains are close to the
//! true mixed-query gains, which is why this heuristic answers in
//! microseconds with near-greedy quality — experiment E4 quantifies the gap.

use super::{KimAlgorithm, KimResult, KimStats};
use octopus_cascade::{celf_select, stream_seed, RrOracle};
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rayon::prelude::*;
use std::collections::HashMap;

/// The MIS engine: per-topic CELF marginal gains, aggregated at query time.
#[derive(Debug, Clone, PartialEq)]
pub struct MisKim {
    /// `gains[z]` maps user → marginal gain in topic `z`'s CELF run.
    gains: Vec<HashMap<NodeId, f64>>,
    /// Union of all per-topic seed users (the only scorable candidates).
    candidates: Vec<NodeId>,
    num_topics: usize,
}

impl MisKim {
    /// Precompute per-topic seed tables.
    ///
    /// * `k_max` — deepest seed set a query may ask for (`k ≤ k_max`);
    /// * `rr_per_topic` — RR sets per pure-topic CELF run;
    /// * `seed` — sampling seed.
    ///
    /// The per-topic CELF runs are independent and execute in parallel;
    /// topic `z` samples from the stream `stream_seed(seed, z)`, so the
    /// tables do not depend on the thread count.
    pub fn build(graph: &TopicGraph, k_max: usize, rr_per_topic: usize, seed: u64) -> Self {
        let z_count = graph.num_topics();
        let gains: Vec<HashMap<NodeId, f64>> = (0..z_count)
            .into_par_iter()
            .map(|z| Self::build_topic(graph, z, k_max, rr_per_topic, seed))
            .collect();
        Self::from_parts(gains)
    }

    /// Build one topic's marginal-gain table — the per-topic rebuild unit
    /// of the `mis-tables` stage. Topic `z` samples from its own stream
    /// (`stream_seed(seed, z)`), and the pure-topic RR sampler consumes no
    /// randomness on zero-probability edges, so the table is a function of
    /// the topic-`z` edge triples, the node universe, and `(k_max,
    /// rr_per_topic, seed)` alone: a partial rebuild assembling reused and
    /// fresh tables equals a monolithic [`MisKim::build`] exactly.
    pub fn build_topic(
        graph: &TopicGraph,
        z: usize,
        k_max: usize,
        rr_per_topic: usize,
        seed: u64,
    ) -> HashMap<NodeId, f64> {
        let gamma = TopicDistribution::pure(graph.num_topics(), z);
        let probs = graph
            .materialize(gamma.as_slice())
            .expect("valid corner gamma");
        let mut oracle = RrOracle::new(graph, &probs, rr_per_topic, stream_seed(seed, z as u64));
        let res = celf_select(&mut oracle, k_max);
        res.seeds
            .iter()
            .copied()
            .zip(res.gains.iter().copied())
            .collect()
    }

    /// Users appearing in at least one per-topic seed table.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// The per-topic marginal-gain tables (the artifact-codec path).
    pub fn gains(&self) -> &[HashMap<NodeId, f64>] {
        &self.gains
    }

    /// Reassemble from decoded per-topic gain tables; the candidate union
    /// is re-derived exactly as [`MisKim::build`] derives it.
    pub fn from_parts(gains: Vec<HashMap<NodeId, f64>>) -> Self {
        let mut candidate_set: Vec<NodeId> = gains
            .iter()
            .flat_map(|table| table.keys().copied())
            .collect();
        candidate_set.sort();
        candidate_set.dedup();
        let num_topics = gains.len();
        MisKim {
            gains,
            candidates: candidate_set,
            num_topics,
        }
    }

    /// The incremental-rebuild cache key of one **topic's** `mis-tables`
    /// unit.
    ///
    /// [`MisKim::build_topic`] reads exactly the topic-`z` probability
    /// slice (`weights_topic` =
    /// [`hash_weights_topic`](octopus_graph::codec::hash_weights_topic),
    /// which pins the topic index, the edge triples, and the node universe
    /// the RR roots are drawn from), plus `k_max`, the RR budget, and the
    /// sampling seed. Node **names are deliberately absent** — MIS never
    /// reads them, so a rename reuses the cached tables — and so are the
    /// other topics' probabilities, so a topic-confined nudge rebuilds one
    /// unit. `enabled` records whether the configured engine builds the
    /// tables at all (see `PrecompBound::input_key_topic` for why the flag
    /// is part of the key).
    pub fn input_key_topic(
        weights_topic: u64,
        k_max: usize,
        rr_per_topic: usize,
        seed: u64,
        enabled: bool,
    ) -> u64 {
        let mut h = octopus_graph::wire::Fnv64::new();
        h.write(b"octa:mis-topic");
        h.write_u8(enabled as u8);
        if enabled {
            h.write_u64(weights_topic);
            h.write_u64(k_max as u64);
            h.write_u64(rr_per_topic as u64);
            h.write_u64(seed);
        }
        h.finish()
    }

    /// The aggregated MIS score of a user under `gamma`.
    pub fn score(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        (0..self.num_topics)
            .map(|z| gamma[z] * self.gains[z].get(&u).copied().unwrap_or(0.0))
            .sum()
    }
}

// ---------------------------------------------------------------------------
// v5 per-topic flat layout of the mis-tables units (zero-copy mapped read
// path)
// ---------------------------------------------------------------------------

/// Encode one topic's `mis-tables` OCTA v5 unit: `present u64` (0 or 1),
/// then — when present —
///
/// ```text
/// count u64 @8
/// ids   count × u32 @16                -- sorted by id ascending
/// [zero pad to 8]
/// gains count × f64
/// ```
///
/// Each topic is its own container section with its own key and checksum.
/// The candidate union [`MisKim::select`] scans is **derived** at parse
/// time (exactly as [`MisKim::from_parts`] derives it), not persisted —
/// a unit reused from one epoch and a unit rebuilt in another always
/// reassemble the same union.
pub fn encode_mis_topic_section(table: Option<&HashMap<NodeId, f64>>, buf: &mut bytes::BytesMut) {
    use bytes::BufMut;
    use octopus_graph::wire::pad8;
    let Some(table) = table else {
        buf.put_u64_le(0);
        return;
    };
    let mut rows: Vec<(NodeId, f64)> = table.iter().map(|(&u, &g)| (u, g)).collect();
    rows.sort_by_key(|&(u, _)| u);
    buf.reserve(16 + rows.len() * 12 + 8);
    buf.put_u64_le(1);
    buf.put_u64_le(rows.len() as u64);
    for &(u, _) in &rows {
        buf.put_u32_le(u.0);
    }
    buf.put_bytes(0, pad8(4 * rows.len()));
    for &(_, g) in &rows {
        buf.put_f64_le(g);
    }
}

/// One topic's validated unit within a [`MisView`].
#[derive(Debug, Clone, Copy)]
struct MisTopicView<'a> {
    /// The u32 id area (`count` entries, strictly ascending).
    ids: &'a [u8],
    /// The f64 gain area (`count` entries, parallel to `ids`).
    gains: &'a [u8],
    count: usize,
}

/// A zero-copy view of the persisted per-topic `mis-tables` units: scores
/// and selects directly off the mapped section bytes, bit-identically to
/// the owned [`MisKim`] (same candidate scan order, same summation order).
/// The candidate union is computed once at parse time — the same k-way
/// merge the v4 validator already paid.
#[derive(Debug, Clone)]
pub struct MisView<'a> {
    topics: Vec<MisTopicView<'a>>,
    union: Vec<NodeId>,
}

impl<'a> MisView<'a> {
    /// Parse and structurally validate one topic's v5 `mis-tables` payload
    /// into `Ok(None)` (persisted absent) or the validated unit. Checks the
    /// exact unit length, strict id sortedness, and id bounds.
    fn parse_topic_inner(
        raw: &'a [u8],
        node_count: usize,
    ) -> Result<Option<MisTopicView<'a>>, octopus_graph::wire::WireError> {
        use octopus_graph::wire::{align8, WireError};
        if raw.len() < 8 {
            return Err(WireError("mis topic unit shorter than its flag".into()));
        }
        let word = |at: usize| u64::from_le_bytes(raw[at..at + 8].try_into().expect("8 bytes"));
        match word(0) {
            0 => {
                if raw.len() != 8 {
                    return Err(WireError("absent mis topic unit has trailing bytes".into()));
                }
                Ok(None)
            }
            1 => {
                if raw.len() < 16 {
                    return Err(WireError("mis topic unit header truncated".into()));
                }
                let count = word(8) as usize;
                let ids_off = 16;
                let gains_off = align8(ids_off + 4 * count);
                let want = gains_off + 8 * count;
                if raw.len() != want {
                    return Err(WireError(format!(
                        "mis topic unit length {} does not match its count (want {want})",
                        raw.len()
                    )));
                }
                let view = MisTopicView {
                    ids: &raw[ids_off..ids_off + 4 * count],
                    gains: &raw[gains_off..],
                    count,
                };
                for i in 0..count {
                    let id = view.id_at(i);
                    if id as usize >= node_count {
                        return Err(WireError(format!("mis id {id} out of bounds")));
                    }
                    if i > 0 && view.id_at(i - 1) >= id {
                        return Err(WireError("mis topic ids must be strictly ascending".into()));
                    }
                }
                Ok(Some(view))
            }
            other => Err(WireError(format!("invalid mis present flag {other}"))),
        }
    }

    /// Structurally validate one topic's unit without assembling a view
    /// (the independent-parser and salvage paths).
    pub fn validate_topic(
        raw: &'a [u8],
        node_count: usize,
    ) -> Result<bool, octopus_graph::wire::WireError> {
        Ok(Self::parse_topic_inner(raw, node_count)?.is_some())
    }

    /// Decode one topic's unit into its owned gains table (the non-mapped
    /// artifact-cache path; `Ok(None)` = persisted-absent marker).
    pub fn decode_topic(
        raw: &'a [u8],
        node_count: usize,
    ) -> Result<Option<HashMap<NodeId, f64>>, octopus_graph::wire::WireError> {
        Ok(Self::parse_topic_inner(raw, node_count)?.map(|unit| {
            (0..unit.count)
                .map(|i| (NodeId(unit.id_at(i)), unit.gain_at(i)))
                .collect()
        }))
    }

    /// Assemble the view from every topic's v5 unit payload (canonical
    /// ascending topic order). Returns `Ok(None)` when all units are
    /// persisted-absent; mixed presence fails closed — a valid writer
    /// never produces it.
    pub fn parse(
        slices: &[&'a [u8]],
        node_count: usize,
    ) -> Result<Option<Self>, octopus_graph::wire::WireError> {
        use octopus_graph::wire::WireError;
        let mut topics = Vec::with_capacity(slices.len());
        let mut absent = 0usize;
        for (z, raw) in slices.iter().enumerate() {
            match Self::parse_topic_inner(raw, node_count)? {
                Some(unit) => topics.push(unit),
                None => {
                    if z != absent {
                        return Err(WireError(format!("mis unit {z} absent amid present")));
                    }
                    absent += 1;
                }
            }
        }
        if absent == slices.len() {
            return Ok(None);
        }
        if absent != 0 {
            return Err(WireError("mis units mix absent and present".into()));
        }
        // candidate union: sorted dedup of all per-topic ids, exactly as
        // MisKim::from_parts derives it
        let mut union: Vec<NodeId> = topics
            .iter()
            .flat_map(|t| (0..t.count).map(|i| NodeId(t.id_at(i))))
            .collect();
        union.sort();
        union.dedup();
        Ok(Some(MisView { topics, union }))
    }

    /// Candidate users (the derived sorted union of per-topic seeds).
    pub fn candidate_count(&self) -> usize {
        self.union.len()
    }

    /// The aggregated MIS score of a user under `gamma` — the same
    /// expression as [`MisKim::score`], with per-topic lookups served by
    /// binary search over the sorted id arrays.
    pub fn score(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        self.topics
            .iter()
            .enumerate()
            .map(|(t, unit)| {
                let mut left = 0usize;
                let mut right = unit.count;
                let mut gain = 0.0;
                while left < right {
                    let mid = left + (right - left) / 2;
                    match unit.id_at(mid).cmp(&u.0) {
                        std::cmp::Ordering::Less => left = mid + 1,
                        std::cmp::Ordering::Greater => right = mid,
                        std::cmp::Ordering::Equal => {
                            gain = unit.gain_at(mid);
                            break;
                        }
                    }
                }
                gamma[t] * gain
            })
            .sum()
    }

    /// Top-`k` selection, mirroring [`MisKim::select`] exactly: same
    /// candidate order, same comparator, same spread summation.
    pub fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let mut scored: Vec<(NodeId, f64)> = self
            .union
            .iter()
            .map(|&u| (u, self.score(u, gamma)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        let spread = scored.iter().map(|&(_, s)| s).sum();
        KimResult {
            seeds: scored.iter().map(|&(u, _)| u).collect(),
            spread,
            stats: KimStats {
                bound_evaluations: self.union.len(),
                ..KimStats::default()
            },
        }
    }

    /// Decode into the owned form (the non-mapped artifact-cache path).
    pub fn to_mis(&self) -> MisKim {
        let gains = self
            .topics
            .iter()
            .map(|unit| {
                (0..unit.count)
                    .map(|i| (NodeId(unit.id_at(i)), unit.gain_at(i)))
                    .collect()
            })
            .collect();
        MisKim::from_parts(gains)
    }
}

impl MisTopicView<'_> {
    #[inline]
    fn id_at(&self, i: usize) -> u32 {
        let at = 4 * i;
        u32::from_le_bytes(self.ids[at..at + 4].try_into().expect("validated len"))
    }

    #[inline]
    fn gain_at(&self, i: usize) -> f64 {
        let at = 8 * i;
        f64::from_le_bytes(self.gains[at..at + 8].try_into().expect("validated len"))
    }
}

impl KimAlgorithm for MisKim {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let mut scored: Vec<(NodeId, f64)> = self
            .candidates
            .iter()
            .map(|&u| (u, self.score(u, gamma)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        let spread = scored.iter().map(|&(_, s)| s).sum();
        KimResult {
            seeds: scored.iter().map(|&(u, _)| u).collect(),
            spread,
            stats: KimStats {
                bound_evaluations: self.candidates.len(),
                ..KimStats::default()
            },
        }
    }

    fn name(&self) -> &'static str {
        "mis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::testutil::two_topic_hubs;

    fn engine() -> MisKim {
        MisKim::build(&two_topic_hubs(), 5, 3000, 42)
    }

    #[test]
    fn pure_topic_queries_pick_matching_hub() {
        let m = engine();
        let res = m.select(&TopicDistribution::pure(2, 0), 1);
        assert_eq!(res.seeds, vec![NodeId(0)]);
        let res = m.select(&TopicDistribution::pure(2, 1), 1);
        assert_eq!(res.seeds, vec![NodeId(1)]);
    }

    #[test]
    fn mixed_query_ranks_both_hubs_top() {
        let m = engine();
        let res = m.select(&TopicDistribution::uniform(2), 2);
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn score_is_linear_in_gamma() {
        let m = engine();
        let u = NodeId(0);
        let g0 = m.score(u, &TopicDistribution::pure(2, 0));
        let g1 = m.score(u, &TopicDistribution::pure(2, 1));
        let mix = m.score(u, &TopicDistribution::uniform(2));
        assert!((mix - 0.5 * (g0 + g1)).abs() < 1e-9);
    }

    #[test]
    fn skewed_gamma_reorders_results() {
        let m = engine();
        let skew0 = TopicDistribution::new(vec![0.9, 0.1]).unwrap();
        let res = m.select(&skew0, 2);
        assert_eq!(
            res.seeds[0],
            NodeId(0),
            "topic-0-heavy query ranks hub 0 first"
        );
        let skew1 = TopicDistribution::new(vec![0.1, 0.9]).unwrap();
        let res = m.select(&skew1, 2);
        assert_eq!(res.seeds[0], NodeId(1));
    }

    #[test]
    fn candidates_are_union_of_topic_seeds() {
        let m = engine();
        assert!(m.candidates().contains(&NodeId(0)));
        assert!(m.candidates().contains(&NodeId(1)));
        // leaves never selected by any pure-topic CELF run are not candidates
        assert!(m.candidates().len() <= 13);
    }

    #[test]
    fn k_larger_than_candidates_is_safe() {
        let m = engine();
        let res = m.select(&TopicDistribution::uniform(2), 100);
        assert!(res.seeds.len() <= m.candidates().len());
    }

    #[test]
    fn mis_view_round_trips_and_selects_bit_identically() {
        let g = two_topic_hubs();
        let m = engine();
        let units: Vec<bytes::BytesMut> = m
            .gains()
            .iter()
            .map(|table| {
                let mut buf = bytes::BytesMut::new();
                encode_mis_topic_section(Some(table), &mut buf);
                assert_eq!(buf.len() % 8, 0, "unit records are padded to 8");
                buf
            })
            .collect();
        let slices: Vec<&[u8]> = units.iter().map(|u| &u[..]).collect();
        let view = MisView::parse(&slices, g.node_count())
            .unwrap()
            .expect("present");
        assert_eq!(view.candidate_count(), m.candidates().len());
        for gamma in [
            TopicDistribution::pure(2, 0),
            TopicDistribution::pure(2, 1),
            TopicDistribution::uniform(2),
            TopicDistribution::new(vec![0.9, 0.1]).unwrap(),
        ] {
            for &u in m.candidates() {
                assert_eq!(
                    view.score(u, &gamma).to_bits(),
                    m.score(u, &gamma).to_bits()
                );
            }
            for k in [1, 2, 5, 100] {
                let a = view.select(&gamma, k);
                let b = m.select(&gamma, k);
                assert_eq!(a.seeds, b.seeds);
                assert_eq!(a.spread.to_bits(), b.spread.to_bits());
                assert_eq!(a.stats, b.stats);
            }
        }
        assert_eq!(view.to_mis(), m);

        // per-topic rebuild units match the monolithic build exactly
        for (z, table) in m.gains().iter().enumerate() {
            assert_eq!(&MisKim::build_topic(&g, z, 5, 3000, 42), table);
        }

        // absent units parse to None; truncation and mixed presence fail
        // closed
        let mut absent = bytes::BytesMut::new();
        encode_mis_topic_section(None, &mut absent);
        let absent_slices: Vec<&[u8]> = vec![&absent, &absent];
        assert!(MisView::parse(&absent_slices, g.node_count())
            .unwrap()
            .is_none());
        let s0 = slices[0];
        assert!(MisView::parse(&[&s0[..s0.len() - 8], slices[1]], g.node_count()).is_err());
        assert!(MisView::parse(&[s0, &absent], g.node_count()).is_err());
        assert!(MisView::parse(&[&absent, s0], g.node_count()).is_err());
        assert!(MisView::validate_topic(s0, g.node_count()).unwrap());
        assert!(!MisView::validate_topic(&absent, g.node_count()).unwrap());
    }
}
