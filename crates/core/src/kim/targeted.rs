//! Targeted keyword-based influence maximization — the extension the paper's
//! reference \[7\] (Li, Zhang, Tan: "Real-time targeted influence
//! maximization for online advertisements", PVLDB'15) supplies for the QQ
//! advertising deployment: maximize influence **over a target audience**
//! rather than the whole network.
//!
//! An advertiser pushing a game ad cares about reaching *gamers*; seeds that
//! reach a million food enthusiasts are worthless. Formally, given a weight
//! `w(v) ∈ [0, 1]` per user, the objective becomes the weighted spread
//! `σ_w(S) = E[Σ_{v activated} w(v)]`.
//!
//! The RR-set machinery adapts with one change: roots are drawn
//! proportionally to `w(v)` instead of uniformly, making coverage an
//! unbiased estimator of `σ_w/Σw` — greedy max-coverage then optimizes the
//! weighted objective directly.

use super::{KimAlgorithm, KimResult, KimStats};
use octopus_graph::{EdgeProbs, NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Audience definition: a weight per user.
#[derive(Debug, Clone)]
pub struct Audience {
    weights: Vec<f64>,
    total: f64,
}

impl Audience {
    /// Build from per-user weights (must match the graph's node count;
    /// negative weights are clamped to zero).
    pub fn new(mut weights: Vec<f64>) -> Self {
        for w in weights.iter_mut() {
            if !w.is_finite() || *w < 0.0 {
                *w = 0.0;
            }
        }
        let total = weights.iter().sum();
        Audience { weights, total }
    }

    /// Everyone counts equally — reduces targeted IM to plain IM.
    pub fn everyone(n: usize) -> Self {
        Audience::new(vec![1.0; n])
    }

    /// Users whose *interest profile* matches the query: weight = the share
    /// of a user's incoming influence mass that lies on the query's topics
    /// (a user heavily influenced on "games" edges is a gamer).
    pub fn from_topic_affinity(g: &TopicGraph, gamma: &TopicDistribution) -> Self {
        let mut weights = vec![0.0f64; g.node_count()];
        for v in g.nodes() {
            let mut on_topic = 0.0f64;
            let mut total = 0.0f64;
            for (_, e) in g.in_edges(v) {
                on_topic += g.edge_prob(e, gamma.as_slice());
                total += g.edge_prob_max(e) as f64;
            }
            weights[v.index()] = if total > 0.0 {
                (on_topic / total).min(1.0)
            } else {
                0.0
            };
        }
        Audience::new(weights)
    }

    /// Weight of one user.
    pub fn weight(&self, u: NodeId) -> f64 {
        self.weights[u.index()]
    }

    /// Total audience mass `Σ_v w(v)`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of users with positive weight.
    pub fn support(&self) -> usize {
        self.weights.iter().filter(|&&w| w > 0.0).count()
    }
}

/// Weighted-root RR collection for the targeted objective.
struct WeightedRr {
    sets: Vec<Vec<u32>>,
    node_to_sets: Vec<Vec<u32>>,
}

impl WeightedRr {
    fn generate(
        g: &TopicGraph,
        probs: &EdgeProbs,
        audience: &Audience,
        count: usize,
        seed: u64,
    ) -> Self {
        let n = g.node_count();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sets = Vec::with_capacity(count);
        let mut node_to_sets = vec![Vec::new(); n];
        if n == 0 || audience.total() <= 0.0 {
            return WeightedRr { sets, node_to_sets };
        }
        // cumulative table for weighted root sampling
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for u in 0..n {
            acc += audience.weights[u];
            cdf.push(acc);
        }
        let mut visited = vec![false; n];
        let mut queue: Vec<u32> = Vec::new();
        for _ in 0..count {
            let x: f64 = rng.random::<f64>() * acc;
            let root = match cdf.binary_search_by(|c| c.partial_cmp(&x).expect("finite")) {
                Ok(i) => i,
                Err(i) => i.min(n - 1),
            };
            queue.clear();
            queue.push(root as u32);
            visited[root] = true;
            let mut head = 0;
            while head < queue.len() {
                let v = NodeId(queue[head]);
                head += 1;
                for (u, e) in g.in_edges(v) {
                    if !visited[u.index()] {
                        let p = probs.get(e);
                        if p > 0.0 && rng.random::<f32>() < p {
                            visited[u.index()] = true;
                            queue.push(u.0);
                        }
                    }
                }
            }
            let id = sets.len() as u32;
            for &u in &queue {
                visited[u as usize] = false;
                node_to_sets[u as usize].push(id);
            }
            sets.push(queue.clone());
        }
        WeightedRr { sets, node_to_sets }
    }

    fn select(&self, k: usize, n: usize) -> (Vec<NodeId>, usize) {
        let mut cov: Vec<usize> = self.node_to_sets.iter().map(Vec::len).collect();
        let mut covered = vec![false; self.sets.len()];
        let mut chosen = vec![false; n];
        let mut seeds = Vec::with_capacity(k);
        let mut total = 0usize;
        for _ in 0..k.min(n) {
            let Some(best) = (0..n).filter(|&u| !chosen[u]).max_by_key(|&u| cov[u]) else {
                break;
            };
            chosen[best] = true;
            seeds.push(NodeId(best as u32));
            total += cov[best];
            for &j in &self.node_to_sets[best] {
                if !covered[j as usize] {
                    covered[j as usize] = true;
                    for &u in &self.sets[j as usize] {
                        cov[u as usize] = cov[u as usize].saturating_sub(1);
                    }
                }
            }
        }
        (seeds, total)
    }
}

/// The targeted KIM engine.
pub struct TargetedKim<'g> {
    graph: &'g TopicGraph,
    audience: Audience,
    /// RR sets per query.
    pub rr_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl<'g> TargetedKim<'g> {
    /// Create the engine for a fixed audience.
    pub fn new(graph: &'g TopicGraph, audience: Audience) -> Self {
        assert_eq!(
            audience.weights.len(),
            graph.node_count(),
            "audience weights must cover every user"
        );
        TargetedKim {
            graph,
            audience,
            rr_count: 8192,
            seed: 0x7A46,
        }
    }

    /// The audience being targeted.
    pub fn audience(&self) -> &Audience {
        &self.audience
    }

    /// Weighted spread estimate of a seed set under `gamma`.
    pub fn weighted_spread(&self, gamma: &TopicDistribution, seeds: &[NodeId]) -> f64 {
        let probs = self
            .graph
            .materialize(gamma.as_slice())
            .expect("validated gamma");
        let rr = WeightedRr::generate(self.graph, &probs, &self.audience, self.rr_count, self.seed);
        if rr.sets.is_empty() {
            return 0.0;
        }
        let mut covered = vec![false; rr.sets.len()];
        let mut hits = 0usize;
        for &s in seeds {
            for &j in &rr.node_to_sets[s.index()] {
                if !covered[j as usize] {
                    covered[j as usize] = true;
                    hits += 1;
                }
            }
        }
        self.audience.total() * hits as f64 / rr.sets.len() as f64
    }
}

impl KimAlgorithm for TargetedKim<'_> {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        let probs = self
            .graph
            .materialize(gamma.as_slice())
            .expect("gamma dimension validated at facade entry");
        let rr = WeightedRr::generate(self.graph, &probs, &self.audience, self.rr_count, self.seed);
        let (seeds, covered) = rr.select(k, self.graph.node_count());
        let spread = if rr.sets.is_empty() {
            0.0
        } else {
            self.audience.total() * covered as f64 / rr.sets.len() as f64
        };
        KimResult {
            seeds,
            spread,
            stats: KimStats {
                exact_evaluations: rr.sets.len(),
                ..KimStats::default()
            },
        }
    }

    fn name(&self) -> &'static str {
        "targeted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::GraphBuilder;

    /// Hub 0 reaches audience A (nodes 2..=5); hub 1 reaches non-audience
    /// B (nodes 6..=11, more of them). Untargeted IM prefers hub 1; targeted
    /// IM must prefer hub 0.
    fn split_audience() -> (TopicGraph, Audience) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(12);
        for v in 2..=5u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.9)]).unwrap();
        }
        for v in 6..=11u32 {
            b.add_edge(NodeId(1), NodeId(v), &[(0, 0.9)]).unwrap();
        }
        let g = b.build().unwrap();
        let mut w = vec![0.0; 12];
        w[2..=5].fill(1.0);
        (g, Audience::new(w))
    }

    #[test]
    fn targeted_prefers_audience_hub() {
        let (g, aud) = split_audience();
        let gamma = TopicDistribution::pure(1, 0);
        let targeted = TargetedKim::new(&g, aud);
        let res = targeted.select(&gamma, 1);
        assert_eq!(
            res.seeds,
            vec![NodeId(0)],
            "must pick the audience-reaching hub"
        );
        // whereas with everyone weighted, hub 1 wins (more reachable users)
        let all = TargetedKim::new(&g, Audience::everyone(12));
        let res = all.select(&gamma, 1);
        assert_eq!(res.seeds, vec![NodeId(1)]);
    }

    #[test]
    fn weighted_spread_counts_only_audience() {
        let (g, aud) = split_audience();
        let gamma = TopicDistribution::pure(1, 0);
        let t = TargetedKim::new(&g, aud);
        let s_good = t.weighted_spread(&gamma, &[NodeId(0)]);
        let s_bad = t.weighted_spread(&gamma, &[NodeId(1)]);
        // hub 0 reaches ~0.9·4 audience members; hub 1 reaches none
        assert!(s_good > 3.0, "audience spread {s_good}");
        assert!(s_bad < 0.2, "non-audience hub must score ~0, got {s_bad}");
    }

    #[test]
    fn everyone_audience_matches_plain_im_shape() {
        let (g, _) = split_audience();
        let gamma = TopicDistribution::pure(1, 0);
        let t = TargetedKim::new(&g, Audience::everyone(12));
        let res = t.select(&gamma, 2);
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn topic_affinity_audience_detects_interest() {
        // users with strong topic-0 in-edges get high weight under a
        // topic-0 query
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.8)]).unwrap(); // gamer
        b.add_edge(NodeId(0), NodeId(2), &[(1, 0.8)]).unwrap(); // foodie
        let g = b.build().unwrap();
        let aud = Audience::from_topic_affinity(&g, &TopicDistribution::pure(2, 0));
        assert!(aud.weight(NodeId(1)) > 0.9);
        assert!(aud.weight(NodeId(2)) < 0.1);
        assert_eq!(aud.weight(NodeId(3)), 0.0, "no in-edges, no signal");
        assert_eq!(aud.support(), 1);
    }

    #[test]
    fn negative_and_nan_weights_clamped() {
        let aud = Audience::new(vec![1.0, -5.0, f64::NAN, 2.0]);
        assert_eq!(aud.weight(NodeId(1)), 0.0);
        assert_eq!(aud.weight(NodeId(2)), 0.0);
        assert_eq!(aud.total(), 3.0);
    }

    #[test]
    fn empty_audience_is_safe() {
        let (g, _) = split_audience();
        let t = TargetedKim::new(&g, Audience::new(vec![0.0; 12]));
        let res = t.select(&TopicDistribution::pure(1, 0), 2);
        assert_eq!(res.spread, 0.0);
        assert!(res.seeds.is_empty() || res.spread == 0.0);
    }
}
