//! The best-effort framework (§II-C): "estimates an upper bound of the
//! influence spread for each user and then preferentially computes the exact
//! influence spread for the users with larger upper bounds, so as to prune
//! insignificant users."
//!
//! The engine runs a three-level lazy CELF: every candidate enters the
//! priority queue with a cheap *bound*; a candidate only pays for an exact
//! singleton evaluation when its bound reaches the top; and only pays for
//! marginal-gain re-evaluation when its singleton value reaches the top
//! again. With a discriminative bound the vast majority of users never get
//! an exact evaluation at all — the pruning ratio experiment E4 reports.
//!
//! "Exact" influence here is the deterministic MIA spread \[4\] with
//! threshold `θ` (the same model the path-visualization service uses),
//! giving fully reproducible selections.

use super::bounds::BoundEstimator;
use super::{KimAlgorithm, KimResult, KimStats};
use octopus_graph::{NodeId, TopicGraph};
use octopus_mia::mia_spread_set;
use octopus_topics::TopicDistribution;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority-queue state of a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Value is an upper bound.
    Bound,
    /// Value is an exact marginal gain computed when the seed set had the
    /// given size (0 = singleton spread −, valid for an empty seed set).
    Exact(usize),
}

struct Entry {
    value: f64,
    node: NodeId,
    state: State,
}

impl PartialEq for Entry {
    fn eq(&self, o: &Self) -> bool {
        self.value == o.value && self.node == o.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Entry {
    fn cmp(&self, o: &Self) -> Ordering {
        self.value
            .partial_cmp(&o.value)
            .unwrap_or(Ordering::Equal)
            // On equal values prefer exact entries (no further work needed),
            // then lower node id for determinism.
            .then_with(|| match (self.state, o.state) {
                (State::Exact(_), State::Bound) => Ordering::Greater,
                (State::Bound, State::Exact(_)) => Ordering::Less,
                _ => Ordering::Equal,
            })
            .then_with(|| o.node.cmp(&self.node))
    }
}

/// The best-effort keyword IM engine, generic over the bound estimator.
pub struct BestEffortKim<'g, B: BoundEstimator> {
    graph: &'g TopicGraph,
    bound: B,
    /// MIA threshold for exact spread computations.
    theta: f64,
}

impl<'g, B: BoundEstimator> BestEffortKim<'g, B> {
    /// Create the engine. `theta` is the MIA pruning threshold of the exact
    /// evaluator (1/320 is the classic PMIA default).
    pub fn new(graph: &'g TopicGraph, bound: B, theta: f64) -> Self {
        BestEffortKim {
            graph,
            bound,
            theta,
        }
    }

    /// The bound estimator in use.
    pub fn bound(&self) -> &B {
        &self.bound
    }

    /// Run the selection with an optional warm-start candidate list whose
    /// members are exactly evaluated up front (used by the topic-sample
    /// engine to inject a strong lower bound before any pruning decisions).
    pub fn select_warm(&self, gamma: &TopicDistribution, k: usize, warm: &[NodeId]) -> KimResult {
        let probs = self
            .graph
            .materialize(gamma.as_slice())
            .expect("gamma dimension validated at facade entry");
        let n = self.graph.node_count();
        let mut stats = KimStats::default();
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n + warm.len());
        let mut exactly_evaluated = vec![false; n];

        // warm-start: exact singleton spreads for the injected candidates
        for &u in warm {
            let s = mia_spread_set(self.graph, &probs, &[u], self.theta);
            stats.exact_evaluations += 1;
            exactly_evaluated[u.index()] = true;
            heap.push(Entry {
                value: s,
                node: u,
                state: State::Exact(0),
            });
        }
        // everyone else enters with a bound
        for u in self.graph.nodes() {
            if exactly_evaluated[u.index()] {
                continue;
            }
            let b = self.bound.upper_bound(u, gamma);
            stats.bound_evaluations += 1;
            heap.push(Entry {
                value: b,
                node: u,
                state: State::Bound,
            });
        }

        let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
        let mut chosen = vec![false; n];
        let mut current_spread = 0.0f64;
        while seeds.len() < k {
            let Some(top) = heap.pop() else { break };
            if chosen[top.node.index()] {
                continue;
            }
            match top.state {
                State::Bound => {
                    // pay for the exact singleton (== marginal at round 0);
                    // for later rounds it is still an upper bound on the
                    // marginal gain by submodularity.
                    let s = mia_spread_set(self.graph, &probs, &[top.node], self.theta);
                    stats.exact_evaluations += 1;
                    exactly_evaluated[top.node.index()] = true;
                    heap.push(Entry {
                        value: s,
                        node: top.node,
                        state: State::Exact(0),
                    });
                }
                State::Exact(round) if round == seeds.len() => {
                    seeds.push(top.node);
                    chosen[top.node.index()] = true;
                    current_spread += top.value;
                }
                State::Exact(_) => {
                    // stale marginal: recompute against the current seed set
                    let mut with: Vec<NodeId> = seeds.clone();
                    with.push(top.node);
                    let s = mia_spread_set(self.graph, &probs, &with, self.theta);
                    stats.exact_evaluations += 1;
                    let gain = (s - current_spread).max(0.0);
                    heap.push(Entry {
                        value: gain,
                        node: top.node,
                        state: State::Exact(seeds.len()),
                    });
                }
            }
        }
        stats.pruned_candidates = n - exactly_evaluated.iter().filter(|&&b| b).count();
        let spread = if seeds.is_empty() {
            0.0
        } else {
            mia_spread_set(self.graph, &probs, &seeds, self.theta)
        };
        KimResult {
            seeds,
            spread,
            stats,
        }
    }
}

impl<B: BoundEstimator> KimAlgorithm for BestEffortKim<'_, B> {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        self.select_warm(gamma, k, &[])
    }

    fn name(&self) -> &'static str {
        "best-effort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::bounds::{global_spread_cap, LocalGraphBound, NeighborhoodBound, PrecompBound};
    use crate::kim::testutil::two_topic_hubs;

    const THETA: f64 = 1.0 / 320.0;

    #[test]
    fn selects_topic_hubs_like_the_naive_engine() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let engine = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA);
        let res = engine.select(&TopicDistribution::pure(2, 0), 1);
        assert_eq!(res.seeds, vec![NodeId(0)]);
        let res = engine.select(&TopicDistribution::uniform(2), 2);
        let mut s = res.seeds.clone();
        s.sort();
        assert_eq!(s, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn prunes_most_candidates() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let engine = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA);
        let res = engine.select(&TopicDistribution::pure(2, 0), 1);
        assert!(
            res.stats.pruned_candidates > 0,
            "expected pruning on a 13-node graph: {:?}",
            res.stats
        );
        assert!(res.stats.exact_evaluations < g.node_count());
        assert_eq!(res.stats.bound_evaluations, g.node_count());
    }

    #[test]
    fn all_three_bounds_agree_on_selection() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let gamma = TopicDistribution::uniform(2);
        let nb = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA).select(&gamma, 2);
        let pb =
            BestEffortKim::new(&g, PrecompBound::build(&g, THETA, 1.2), THETA).select(&gamma, 2);
        let lg =
            BestEffortKim::new(&g, LocalGraphBound::new(&g, 2, cap, 1.1), THETA).select(&gamma, 2);
        assert_eq!(nb.seeds, pb.seeds);
        assert_eq!(nb.seeds, lg.seeds);
        assert!((nb.spread - pb.spread).abs() < 1e-9);
    }

    #[test]
    fn warm_start_reduces_exact_evaluations() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let gamma = TopicDistribution::pure(2, 1);
        let engine = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA);
        let cold = engine.select(&gamma, 1);
        let warm = engine.select_warm(&gamma, 1, &[NodeId(1)]);
        assert_eq!(cold.seeds, warm.seeds);
        assert!(warm.stats.exact_evaluations <= cold.stats.exact_evaluations);
    }

    #[test]
    fn zero_k_and_oversized_k() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let engine = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA);
        let res = engine.select(&TopicDistribution::uniform(2), 0);
        assert!(res.seeds.is_empty());
        assert_eq!(res.spread, 0.0);
        let res = engine.select(&TopicDistribution::uniform(2), 100);
        assert_eq!(res.seeds.len(), 13, "k capped at node count");
    }

    #[test]
    fn marginal_gains_reflect_overlap() {
        // selecting hub 0 twice-over is useless; second seed must be hub 1
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let engine = BestEffortKim::new(&g, NeighborhoodBound::new(&g, cap), THETA);
        let res = engine.select(&TopicDistribution::uniform(2), 3);
        assert_eq!(res.seeds[0].0.min(res.seeds[1].0), 0);
        assert_eq!(res.seeds[0].0.max(res.seeds[1].0), 1);
        // third seed is the dual-topic node 12 (feeds both stars)
        assert_eq!(res.seeds[2], NodeId(12));
    }
}
