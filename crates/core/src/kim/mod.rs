//! Keyword-based influence maximization (§II-C).
//!
//! "Given a set `W` of keywords that describes some topic, find the seed
//! users with the maximum influence spread in that topic." The challenge is
//! that *every query induces a different probabilistic graph*, so classical
//! IM precomputation does not apply directly. This module contains the
//! paper's algorithm family:
//!
//! | engine | offline work | online work | section |
//! |---|---|---|---|
//! | [`NaiveKim`] | none | full IM per query (RR sampling + greedy) | the "very expensive" baseline |
//! | [`MisKim`] | per-topic CELF | weighted gain aggregation | precomputation-heavy heuristic |
//! | [`BestEffortKim`] | bound tables | bound-pruned exact evaluations | the best-effort framework |
//! | [`TopicSampleKim`] | seed sets for sampled `γ`s | nearest-sample reuse + pruned refinement | the topic-sample algorithm |
//!
//! All engines implement [`KimAlgorithm`] so the experiment harness can
//! sweep them uniformly, and all report [`KimStats`] — the evaluation
//! counters behind the pruning-effectiveness experiment (E4).

pub mod best_effort;
pub mod bounds;
pub mod mis;
pub mod naive;
pub mod targeted;
pub mod topic_sample;

pub use best_effort::BestEffortKim;
pub use bounds::{
    BoundEstimator, BoundKind, LocalGraphBound, NeighborhoodBound, PrecompBound, TrivialBound,
};
pub use mis::MisKim;
pub use naive::{McGreedyKim, NaiveKim};
pub use targeted::{Audience, TargetedKim};
pub use topic_sample::TopicSampleKim;

use octopus_graph::NodeId;
use octopus_topics::TopicDistribution;

/// Work counters for one KIM query — the pruning-effectiveness metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KimStats {
    /// Exact (expensive) spread/marginal evaluations performed.
    pub exact_evaluations: usize,
    /// Cheap bound evaluations performed.
    pub bound_evaluations: usize,
    /// Candidates pruned without any exact evaluation.
    pub pruned_candidates: usize,
    /// Whether a precomputed topic sample answered the query directly.
    pub answered_from_sample: bool,
    /// Whether the online query cache answered the query.
    pub answered_from_cache: bool,
}

/// Result of a keyword-based IM query.
#[derive(Debug, Clone, PartialEq)]
pub struct KimResult {
    /// Selected seeds, in selection order.
    pub seeds: Vec<NodeId>,
    /// The engine's own spread estimate for the seed set (engines use
    /// different estimators; cross-engine quality comparisons should re-
    /// score seeds with a common referee, as the harness does).
    pub spread: f64,
    /// Work counters.
    pub stats: KimStats,
}

/// A keyword-based influence maximization engine.
///
/// The query is already resolved to a topic distribution `γ` (the engine
/// facade handles keywords → `γ` via the topic model).
pub trait KimAlgorithm {
    /// Select up to `k` seeds maximizing spread under `gamma`.
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult;

    /// Engine name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    use octopus_graph::{GraphBuilder, NodeId, TopicGraph};

    /// Two-topic fixture with topic-disjoint hubs:
    /// hub 0 dominates topic 0 (star over 2..=6), hub 1 dominates topic 1
    /// (star over 7..=11); node 12 is a minor dual-topic player.
    pub fn two_topic_hubs() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(13);
        for v in 2..=6u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.8)]).unwrap();
        }
        for v in 7..=11u32 {
            b.add_edge(NodeId(1), NodeId(v), &[(1, 0.8)]).unwrap();
        }
        b.add_edge(NodeId(12), NodeId(2), &[(0, 0.3), (1, 0.3)])
            .unwrap();
        b.add_edge(NodeId(12), NodeId(7), &[(0, 0.3), (1, 0.3)])
            .unwrap();
        b.build().unwrap()
    }
}
