//! Upper-bound estimators for the best-effort framework (§II-C): "for
//! effective bound estimation, we devise precomputation based, local graph
//! based, and neighborhood based methods."
//!
//! All three bound the **MIA spread** `σ_MIA({u})` that [`super::BestEffortKim`]
//! uses as its exact influence computation:
//!
//! * [`NeighborhoodBound`] (NB) — provable under the MIA model:
//!   `σ(u) ≤ 1 + Σ_v pp_{u,v}(γ)·(1 + Σ_w pp_{v,w}(γ)·C)` where `C` is the
//!   precomputed global spread cap on the max-probability graph (spread is
//!   monotone in edge probabilities, and `pp_e(γ) ≤ max_z pp^z_e`).
//! * [`PrecompBound`] (PB) — `safety · Σ_z γ_z·σ̂_z(u)` from per-topic
//!   offline MIA spreads. Exact when edges are topic-disjoint (the regime
//!   real networks approximate); the safety factor absorbs mixed edges, and
//!   experiment E4 measures the residual violation rate.
//! * [`LocalGraphBound`] (LG) — depth-`d` truncated Dijkstra around `u`
//!   under the query `γ`, plus a `C`-capped tail for frontier mass; also
//!   calibrated with a safety factor (long detour paths can re-enter the
//!   ball with higher probability than any short path).

use octopus_graph::{NodeId, TopicGraph};
use octopus_mia::mioa_spread;
use octopus_topics::TopicDistribution;
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which bound estimator an engine uses (for reports and sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Precomputation-based (per-topic offline spreads).
    Precomputation,
    /// Local-graph-based (truncated query-time Dijkstra).
    LocalGraph,
    /// Neighborhood-based (two-hop probability expansion).
    Neighborhood,
    /// No information (ablation: degenerates best-effort into plain CELF).
    Trivial,
}

impl BoundKind {
    /// Short name for tables.
    pub fn label(self) -> &'static str {
        match self {
            BoundKind::Precomputation => "PB",
            BoundKind::LocalGraph => "LG",
            BoundKind::Neighborhood => "NB",
            BoundKind::Trivial => "∅",
        }
    }
}

/// An upper-bound estimator on the singleton MIA spread `σ_MIA({u} | γ)`.
pub trait BoundEstimator {
    /// Upper bound for user `u` under query `gamma`.
    fn upper_bound(&self, u: NodeId, gamma: &TopicDistribution) -> f64;

    /// Which estimator this is.
    fn kind(&self) -> BoundKind;
}

impl<B: BoundEstimator + ?Sized> BoundEstimator for &B {
    fn upper_bound(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        (**self).upper_bound(u, gamma)
    }

    fn kind(&self) -> BoundKind {
        (**self).kind()
    }
}

/// The incremental-rebuild cache key of one **topic's** `spread-cap` unit.
///
/// [`topic_arrival_cap`] reads exactly the topic-`z` probability slice —
/// the `(src, dst, p_z)` edge triples plus the node universe, all captured
/// by [`hash_weights_topic`](octopus_graph::codec::hash_weights_topic) —
/// and nothing else: no names, no seed, no `theta` (the arrival cap is
/// threshold-free), no other topics. A nudge confined to topic `z` moves
/// only topic `z`'s key; a rename or reseed moves none.
pub fn spread_cap_topic_key(weights_topic: u64) -> u64 {
    let mut h = octopus_graph::wire::Fnv64::new();
    h.write(b"octa:spread-cap-topic");
    h.write_u64(weights_topic);
    h.finish()
}

/// Per-topic unit of the global spread cap: `cap_z = 1 + Σ_v t_z(v)` where
/// `t_z(v)` is the largest topic-`z` probability over `v`'s in-edges (0 for
/// a node with none).
///
/// **Soundness.** Under MIA on the max-probability graph, every maximum
/// path probability `pp_max(u, v)` is at most its final edge's probability,
/// which is at most `max_z t_z(v)`; summing over destinations,
/// `σ_maxgraph(u) ≤ 1 + Σ_v max_z t_z(v) ≤ 1 + Σ_z (cap_z − 1)` — so the
/// per-topic units combine ([`combine_topic_caps`]) into a valid global cap
/// `C ≥ max_u σ_MIA(u)` at any `theta`. It is looser than the exact
/// [`global_spread_cap`] (NB/LG prune a little less), but each unit is a
/// pure function of one topic's edge triples: a foreign-topic delta leaves
/// `cap_z` bit-identical, which is what makes the `spread-cap` stage
/// reusable per topic.
pub fn topic_arrival_cap(graph: &TopicGraph, z: usize) -> f64 {
    let zt = octopus_graph::TopicId(z as u16);
    let mut total = 0.0f64;
    for v in graph.nodes() {
        let mut best = 0.0f32;
        for (_, e) in graph.in_edges(v) {
            let p = graph.edge_prob_topic(e, zt);
            if p > best {
                best = p;
            }
        }
        total += best as f64;
    }
    1.0 + total
}

/// Combine per-topic cap units into the global spread cap the NB/LG
/// estimators consume: `C = 1 + Σ_z (cap_z − 1)`, summed in ascending
/// topic order so the result is bit-identical no matter which topics were
/// rebuilt and which were reused.
pub fn combine_topic_caps(caps: &[f64]) -> f64 {
    let mut c = 1.0f64;
    for &cz in caps {
        c += cz - 1.0;
    }
    c.max(1.0)
}

/// Compute the exact global spread cap `C = max_u σ_MIA(u)` on the
/// max-probability graph — the tight reference constant the per-topic
/// arrival caps ([`topic_arrival_cap`]) over-approximate. The offline
/// pipeline builds the per-topic units (reusable under topic-confined
/// deltas); this monolithic form remains the oracle the cap tests compare
/// against.
pub fn global_spread_cap(graph: &TopicGraph, theta: f64) -> f64 {
    // materialize the per-edge maxima as a fake single-query table
    let max_probs =
        octopus_graph::EdgeProbs::from_vec(graph.edges().map(|e| graph.edge_prob_max(e)).collect());
    graph
        .nodes()
        .map(|u| mioa_spread_with(graph, &max_probs, u, theta))
        .fold(1.0f64, f64::max)
}

fn mioa_spread_with(
    graph: &TopicGraph,
    probs: &octopus_graph::EdgeProbs,
    u: NodeId,
    theta: f64,
) -> f64 {
    octopus_mia::Arborescence::build(graph, probs, u, theta, octopus_mia::ArbDirection::Out)
        .total_influence()
}

// ---------------------------------------------------------------------------
// Trivial bound (ablation)
// ---------------------------------------------------------------------------

/// The no-information bound: every user is bounded by the node count.
///
/// Plugging this into [`super::BestEffortKim`] degenerates it into plain
/// CELF over the MIA spread (every candidate pays one exact evaluation) —
/// the ablation that isolates how much the real bound estimators save.
#[derive(Debug, Clone)]
pub struct TrivialBound {
    n: f64,
}

impl TrivialBound {
    /// Bound every user by `node_count`.
    pub fn new(node_count: usize) -> Self {
        TrivialBound {
            n: node_count as f64,
        }
    }
}

impl BoundEstimator for TrivialBound {
    fn upper_bound(&self, _u: NodeId, _gamma: &TopicDistribution) -> f64 {
        self.n
    }

    fn kind(&self) -> BoundKind {
        BoundKind::Trivial
    }
}

// ---------------------------------------------------------------------------
// Neighborhood bound
// ---------------------------------------------------------------------------

/// Two-hop neighborhood expansion bound (cheap, query-dependent, provable
/// w.r.t. the MIA spread).
#[derive(Debug, Clone)]
pub struct NeighborhoodBound<'g> {
    graph: &'g TopicGraph,
    cap: f64,
}

impl<'g> NeighborhoodBound<'g> {
    /// Build with a precomputed global cap (see [`global_spread_cap`]).
    pub fn new(graph: &'g TopicGraph, cap: f64) -> Self {
        NeighborhoodBound {
            graph,
            cap: cap.max(1.0),
        }
    }
}

impl BoundEstimator for NeighborhoodBound<'_> {
    fn upper_bound(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        let g = self.graph;
        let mut total = 1.0f64;
        for (v, e) in g.out_edges(u) {
            let p_uv = g.edge_prob(e, gamma.as_slice());
            if p_uv <= 0.0 {
                continue;
            }
            let mut inner = 1.0f64;
            for (_, e2) in g.out_edges(v) {
                inner += g.edge_prob(e2, gamma.as_slice()) * self.cap;
            }
            total += p_uv * inner;
        }
        total
    }

    fn kind(&self) -> BoundKind {
        BoundKind::Neighborhood
    }
}

// ---------------------------------------------------------------------------
// Precomputation bound
// ---------------------------------------------------------------------------

/// Per-topic offline spread tables: `bound(u|γ) = safety · Σ_z γ_z σ̂_z(u)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecompBound {
    /// `sigma[z][u]` = MIA spread of `u` under pure topic `z`.
    sigma: Vec<Vec<f64>>,
    safety: f64,
}

impl PrecompBound {
    /// Precompute per-topic MIA spreads for every node.
    ///
    /// `theta` is the MIA pruning threshold for the offline builds; `safety`
    /// inflates the aggregated bound to absorb mixed-topic edges (1.2 is a
    /// good default — see experiment E4 for the measured violation rate).
    ///
    /// The per-topic tables are deterministic MIA computations and build in
    /// parallel across topics.
    pub fn build(graph: &TopicGraph, theta: f64, safety: f64) -> Self {
        let z_count = graph.num_topics();
        let sigma: Vec<Vec<f64>> = (0..z_count)
            .into_par_iter()
            .map(|z| Self::build_topic(graph, z, theta))
            .collect();
        PrecompBound { sigma, safety }
    }

    /// Build one topic's σ̂ row — the per-topic rebuild unit of the
    /// `pb-bound` stage. Pure-topic MIA touches only edges carrying a
    /// topic-`z` probability (zero-probability edges are skipped before any
    /// state change), so the row is bit-identical across any foreign-topic
    /// delta, and a partial rebuild assembling reused and fresh rows equals
    /// a monolithic [`PrecompBound::build`] exactly.
    pub fn build_topic(graph: &TopicGraph, z: usize, theta: f64) -> Vec<f64> {
        let gamma = TopicDistribution::pure(graph.num_topics(), z);
        let probs = graph.materialize(gamma.as_slice()).expect("valid corner");
        graph
            .nodes()
            .map(|u| mioa_spread(graph, &probs, u, theta))
            .collect()
    }

    /// The stored pure-topic spread `σ̂_z(u)`.
    pub fn topic_spread(&self, u: NodeId, z: usize) -> f64 {
        self.sigma[z][u.index()]
    }

    /// Reassemble from raw parts (the artifact-codec path). `sigma[z][u]`
    /// must hold one spread per node for every topic.
    pub fn from_parts(sigma: Vec<Vec<f64>>, safety: f64) -> Self {
        PrecompBound { sigma, safety }
    }

    /// The raw `(sigma, safety)` parts, in canonical `[topic][node]` order
    /// (the artifact-codec path).
    pub fn parts(&self) -> (&[Vec<f64>], f64) {
        (&self.sigma, self.safety)
    }

    /// The incremental-rebuild cache key of one **topic's** `pb-bound` unit.
    ///
    /// [`PrecompBound::build_topic`] is a deterministic pure-topic MIA
    /// computation: it reads exactly the topic-`z` probability slice
    /// (`weights_topic` =
    /// [`hash_weights_topic`](octopus_graph::codec::hash_weights_topic),
    /// which also pins the node universe) under `(theta, safety)` — no
    /// seed, no names, no other topics. `enabled` records whether the
    /// configured engine needs the tables at all: a unit persisted as
    /// "absent" must never satisfy a config that requires the tables, and
    /// vice versa.
    pub fn input_key_topic(weights_topic: u64, theta: f64, safety: f64, enabled: bool) -> u64 {
        let mut h = octopus_graph::wire::Fnv64::new();
        h.write(b"octa:pb-topic");
        h.write_u8(enabled as u8);
        if enabled {
            h.write_u64(weights_topic);
            h.write_f64(theta);
            h.write_f64(safety);
        }
        h.finish()
    }
}

impl BoundEstimator for PrecompBound {
    fn upper_bound(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        let agg: f64 = (0..self.sigma.len())
            .map(|z| gamma[z] * self.sigma[z][u.index()])
            .sum();
        // every spread includes the node itself (mass 1); the convex part is
        // the remainder, so keep the "+1" exact and scale only the rest
        (1.0 + self.safety * (agg - 1.0)).max(1.0)
    }

    fn kind(&self) -> BoundKind {
        BoundKind::Precomputation
    }
}

// ---------------------------------------------------------------------------
// v5 per-topic flat layout of the pb-bound units (zero-copy mapped read path)
// ---------------------------------------------------------------------------

/// Encode one topic's `pb-bound` OCTA v5 unit: `present u64` (0 or 1),
/// then — when present — `safety f64 | n u64 | row n × f64` with `σ̂_z(u)`
/// at byte `24 + u·8`. Every field is 8-aligned relative to the (8-aligned)
/// section start, so a mapped reader serves `upper_bound` straight off the
/// file bytes. Each topic is its own container section with its own key and
/// checksum; `safety` is repeated per unit and must agree bitwise across
/// the assembled table.
pub fn encode_pb_topic_section(row: Option<&[f64]>, safety: f64, buf: &mut bytes::BytesMut) {
    use bytes::BufMut;
    match row {
        None => buf.put_u64_le(0),
        Some(row) => {
            buf.reserve(24 + row.len() * 8);
            buf.put_u64_le(1);
            buf.put_f64_le(safety);
            buf.put_u64_le(row.len() as u64);
            for &s in row {
                buf.put_f64_le(s);
            }
        }
    }
}

/// A zero-copy view of the persisted per-topic `pb-bound` units: answers
/// [`BoundEstimator::upper_bound`] directly off the mapped section bytes,
/// bit-identically to the owned [`PrecompBound`] (same summation order,
/// same float ops).
#[derive(Debug, Clone)]
pub struct PbTableView<'a> {
    /// Per-topic f64 row areas (`n` values each), indexed by topic.
    rows: Vec<&'a [u8]>,
    n: usize,
    safety: f64,
}

impl<'a> PbTableView<'a> {
    /// Parse and structurally validate one topic's v5 `pb-bound` payload
    /// into `Ok(None)` (persisted absent) or `Ok(Some((safety, row_bytes)))`.
    /// Validation is O(1): the row length must match the graph exactly,
    /// after which every read is in bounds by construction.
    pub fn parse_topic(
        raw: &'a [u8],
        node_count: usize,
    ) -> Result<Option<(f64, &'a [u8])>, octopus_graph::wire::WireError> {
        use octopus_graph::wire::WireError;
        if raw.len() < 8 {
            return Err(WireError(
                "pb topic unit shorter than its present flag".into(),
            ));
        }
        let word = |at: usize| u64::from_le_bytes(raw[at..at + 8].try_into().expect("8 bytes"));
        match word(0) {
            0 => {
                if raw.len() != 8 {
                    return Err(WireError("absent pb topic unit has trailing bytes".into()));
                }
                Ok(None)
            }
            1 => {
                if raw.len() < 24 {
                    return Err(WireError("pb topic unit header truncated".into()));
                }
                let safety = f64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
                let n = word(16) as usize;
                if n != node_count {
                    return Err(WireError(format!(
                        "pb row has {n} nodes, graph has {node_count}"
                    )));
                }
                let want = 24 + n * 8;
                if raw.len() != want {
                    return Err(WireError(format!(
                        "pb topic unit length {} does not match row (want {want})",
                        raw.len()
                    )));
                }
                Ok(Some((safety, &raw[24..])))
            }
            other => Err(WireError(format!("invalid pb present flag {other}"))),
        }
    }

    /// Assemble the view from every topic's v5 unit payload (canonical
    /// ascending topic order). Returns `Ok(None)` when all units are
    /// persisted-absent; mixed presence or a bitwise `safety` disagreement
    /// across units fails closed — a valid writer never produces either.
    pub fn parse(
        slices: &[&'a [u8]],
        node_count: usize,
    ) -> Result<Option<Self>, octopus_graph::wire::WireError> {
        use octopus_graph::wire::WireError;
        let mut rows = Vec::with_capacity(slices.len());
        let mut safety: Option<f64> = None;
        for (z, raw) in slices.iter().enumerate() {
            match (Self::parse_topic(raw, node_count)?, z) {
                (None, 0) => return Self::expect_all_absent(slices, node_count),
                (None, _) => return Err(WireError(format!("pb unit {z} absent amid present"))),
                (Some((s, row)), _) => {
                    if let Some(prev) = safety {
                        if prev.to_bits() != s.to_bits() {
                            return Err(WireError(format!(
                                "pb unit {z} safety {s} disagrees with {prev}"
                            )));
                        }
                    }
                    safety = Some(s);
                    rows.push(row);
                }
            }
        }
        Ok(safety.map(|safety| PbTableView {
            rows,
            n: node_count,
            safety,
        }))
    }

    fn expect_all_absent(
        slices: &[&'a [u8]],
        node_count: usize,
    ) -> Result<Option<Self>, octopus_graph::wire::WireError> {
        use octopus_graph::wire::WireError;
        for (z, raw) in slices.iter().enumerate() {
            if Self::parse_topic(raw, node_count)?.is_some() {
                return Err(WireError(format!("pb unit {z} present amid absent")));
            }
        }
        Ok(None)
    }

    /// The stored pure-topic spread `σ̂_z(u)`.
    #[inline]
    pub fn topic_spread(&self, u: NodeId, z: usize) -> f64 {
        let at = u.index() * 8;
        f64::from_le_bytes(self.rows[z][at..at + 8].try_into().expect("validated len"))
    }

    /// Decode into the owned form (the non-mapped artifact-cache path).
    pub fn to_precomp(&self) -> PrecompBound {
        let sigma = (0..self.rows.len())
            .map(|z| {
                (0..self.n)
                    .map(|u| self.topic_spread(NodeId(u as u32), z))
                    .collect()
            })
            .collect();
        PrecompBound::from_parts(sigma, self.safety)
    }
}

impl BoundEstimator for PbTableView<'_> {
    fn upper_bound(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        let agg: f64 = (0..self.rows.len())
            .map(|z| gamma[z] * self.topic_spread(u, z))
            .sum();
        // identical expression to PrecompBound::upper_bound — mapped and
        // owned engines must answer bit-identically
        (1.0 + self.safety * (agg - 1.0)).max(1.0)
    }

    fn kind(&self) -> BoundKind {
        BoundKind::Precomputation
    }
}

// ---------------------------------------------------------------------------
// Local-graph bound
// ---------------------------------------------------------------------------

/// Depth-limited query-time Dijkstra plus capped frontier tail.
#[derive(Debug, Clone)]
pub struct LocalGraphBound<'g> {
    graph: &'g TopicGraph,
    depth: u32,
    cap: f64,
    safety: f64,
}

struct Hop {
    prob: f64,
    node: NodeId,
    depth: u32,
}
impl PartialEq for Hop {
    fn eq(&self, o: &Self) -> bool {
        self.prob == o.prob && self.node == o.node
    }
}
impl Eq for Hop {}
impl PartialOrd for Hop {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Hop {
    fn cmp(&self, o: &Self) -> Ordering {
        self.prob.partial_cmp(&o.prob).unwrap_or(Ordering::Equal)
    }
}

impl<'g> LocalGraphBound<'g> {
    /// Build with exploration `depth`, global `cap` and `safety` factor.
    pub fn new(graph: &'g TopicGraph, depth: u32, cap: f64, safety: f64) -> Self {
        assert!(depth >= 1, "local graph needs at least one hop");
        LocalGraphBound {
            graph,
            depth,
            cap: cap.max(1.0),
            safety,
        }
    }
}

impl BoundEstimator for LocalGraphBound<'_> {
    fn upper_bound(&self, u: NodeId, gamma: &TopicDistribution) -> f64 {
        let g = self.graph;
        // depth-limited max-prob Dijkstra from u
        let mut best: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
        let mut settled: std::collections::HashMap<NodeId, (f64, u32)> =
            std::collections::HashMap::new();
        let mut heap = BinaryHeap::new();
        heap.push(Hop {
            prob: 1.0,
            node: u,
            depth: 0,
        });
        best.insert(u, 1.0);
        while let Some(h) = heap.pop() {
            if settled.contains_key(&h.node) {
                continue;
            }
            settled.insert(h.node, (h.prob, h.depth));
            if h.depth == self.depth {
                continue;
            }
            for (v, e) in g.out_edges(h.node) {
                if settled.contains_key(&v) {
                    continue;
                }
                let p = h.prob * g.edge_prob(e, gamma.as_slice());
                if p <= 1e-9 {
                    continue;
                }
                let entry = best.entry(v).or_insert(0.0);
                if p > *entry {
                    *entry = p;
                    heap.push(Hop {
                        prob: p,
                        node: v,
                        depth: h.depth + 1,
                    });
                }
            }
        }
        let mut interior = 0.0f64;
        let mut frontier_tail = 0.0f64;
        for (&_node, &(prob, depth)) in &settled {
            interior += prob;
            if depth == self.depth {
                frontier_tail += prob * (self.cap - 1.0);
            }
        }
        (1.0 + self.safety * (interior - 1.0 + frontier_tail)).max(1.0)
    }

    fn kind(&self) -> BoundKind {
        BoundKind::LocalGraph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::testutil::two_topic_hubs;
    use octopus_mia::mia_spread_set;

    const THETA: f64 = 1.0 / 320.0;

    fn exact(g: &TopicGraph, u: NodeId, gamma: &TopicDistribution) -> f64 {
        let probs = g.materialize(gamma.as_slice()).unwrap();
        mia_spread_set(g, &probs, &[u], THETA)
    }

    #[test]
    fn nb_bounds_every_node_on_fixture() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let nb = NeighborhoodBound::new(&g, cap);
        for gamma in [
            TopicDistribution::pure(2, 0),
            TopicDistribution::pure(2, 1),
            TopicDistribution::uniform(2),
        ] {
            for u in g.nodes() {
                let b = nb.upper_bound(u, &gamma);
                let s = exact(&g, u, &gamma);
                assert!(
                    b >= s - 1e-9,
                    "NB violated at {u:?}: bound {b} < spread {s}"
                );
            }
        }
    }

    #[test]
    fn pb_bounds_on_topic_disjoint_fixture() {
        // the fixture's hub edges are topic-disjoint, so PB should hold even
        // with a modest safety factor
        let g = two_topic_hubs();
        let pb = PrecompBound::build(&g, THETA, 1.2);
        for gamma in [TopicDistribution::uniform(2), TopicDistribution::pure(2, 0)] {
            for u in g.nodes() {
                let b = pb.upper_bound(u, &gamma);
                let s = exact(&g, u, &gamma);
                assert!(
                    b >= s - 1e-9,
                    "PB violated at {u:?}: bound {b} < spread {s}"
                );
            }
        }
    }

    #[test]
    fn lg_bounds_on_fixture() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let lg = LocalGraphBound::new(&g, 2, cap, 1.1);
        let gamma = TopicDistribution::uniform(2);
        for u in g.nodes() {
            let b = lg.upper_bound(u, &gamma);
            let s = exact(&g, u, &gamma);
            assert!(
                b >= s - 1e-9,
                "LG violated at {u:?}: bound {b} < spread {s}"
            );
        }
    }

    #[test]
    fn bounds_are_discriminative_not_vacuous() {
        // bounds must separate hubs from leaves, else pruning is useless
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        let nb = NeighborhoodBound::new(&g, cap);
        let gamma = TopicDistribution::pure(2, 0);
        let hub = nb.upper_bound(NodeId(0), &gamma);
        let leaf = nb.upper_bound(NodeId(3), &gamma);
        assert!(hub > 2.0 * leaf, "hub bound {hub} vs leaf bound {leaf}");
    }

    #[test]
    fn pb_aggregates_linearly() {
        let g = two_topic_hubs();
        let pb = PrecompBound::build(&g, THETA, 1.0);
        let u = NodeId(0);
        let b0 = pb.upper_bound(u, &TopicDistribution::pure(2, 0));
        let b1 = pb.upper_bound(u, &TopicDistribution::pure(2, 1));
        let mix = pb.upper_bound(u, &TopicDistribution::uniform(2));
        assert!((mix - 0.5 * (b0 + b1)).abs() < 1e-9);
        assert!(
            (pb.topic_spread(u, 0) - b0).abs() < 1e-9,
            "safety=1 corner equals table"
        );
    }

    #[test]
    fn global_cap_dominates_every_pure_topic_spread() {
        let g = two_topic_hubs();
        let cap = global_spread_cap(&g, THETA);
        for z in 0..2 {
            let gamma = TopicDistribution::pure(2, z);
            for u in g.nodes() {
                assert!(cap >= exact(&g, u, &gamma) - 1e-9);
            }
        }
    }

    #[test]
    fn trivial_bound_is_vacuous_but_valid() {
        let g = two_topic_hubs();
        let b = TrivialBound::new(g.node_count());
        let gamma = TopicDistribution::uniform(2);
        for u in g.nodes() {
            let bound = b.upper_bound(u, &gamma);
            assert_eq!(bound, 13.0);
            assert!(bound >= exact(&g, u, &gamma));
        }
        assert_eq!(b.kind(), BoundKind::Trivial);
    }

    #[test]
    fn kinds_and_labels() {
        assert_eq!(BoundKind::Precomputation.label(), "PB");
        assert_eq!(BoundKind::LocalGraph.label(), "LG");
        assert_eq!(BoundKind::Neighborhood.label(), "NB");
    }

    #[test]
    fn pb_view_round_trips_and_answers_bit_identically() {
        let g = two_topic_hubs();
        let pb = PrecompBound::build(&g, THETA, 1.2);
        let (sigma, safety) = pb.parts();
        let units: Vec<bytes::BytesMut> = sigma
            .iter()
            .map(|row| {
                let mut buf = bytes::BytesMut::new();
                encode_pb_topic_section(Some(row), safety, &mut buf);
                buf
            })
            .collect();
        let slices: Vec<&[u8]> = units.iter().map(|u| &u[..]).collect();
        let view = PbTableView::parse(&slices, g.node_count())
            .unwrap()
            .expect("present");
        for gamma in [
            TopicDistribution::pure(2, 0),
            TopicDistribution::pure(2, 1),
            TopicDistribution::uniform(2),
        ] {
            for u in g.nodes() {
                assert_eq!(
                    view.upper_bound(u, &gamma).to_bits(),
                    pb.upper_bound(u, &gamma).to_bits(),
                    "mapped and owned bounds must be bit-identical at {u:?}"
                );
            }
        }
        assert_eq!(view.to_precomp(), pb);
        assert_eq!(view.clone().kind(), BoundKind::Precomputation);

        // per-topic rebuild units match the monolithic build exactly
        for (z, row) in sigma.iter().enumerate() {
            assert_eq!(&PrecompBound::build_topic(&g, z, THETA), row);
        }

        // persisted-absent units parse to None
        let mut absent = bytes::BytesMut::new();
        encode_pb_topic_section(None, safety, &mut absent);
        assert_eq!(absent.len(), 8);
        let absent_slices: Vec<&[u8]> = vec![&absent, &absent];
        assert!(PbTableView::parse(&absent_slices, g.node_count())
            .unwrap()
            .is_none());

        // truncation, dimension mismatches, and mixed presence fail closed
        let s0 = slices[0];
        assert!(PbTableView::parse_topic(&s0[..s0.len() - 1], g.node_count()).is_err());
        assert!(PbTableView::parse_topic(s0, g.node_count() + 1).is_err());
        assert!(PbTableView::parse_topic(&s0[..4], g.node_count()).is_err());
        assert!(PbTableView::parse(&[s0, &absent], g.node_count()).is_err());
        assert!(PbTableView::parse(&[&absent, s0], g.node_count()).is_err());
        // bitwise safety disagreement across units fails closed
        let mut other = bytes::BytesMut::new();
        encode_pb_topic_section(Some(&sigma[1]), safety + 0.1, &mut other);
        assert!(PbTableView::parse(&[s0, &other], g.node_count()).is_err());
    }

    #[test]
    fn topic_caps_combine_soundly() {
        let g = two_topic_hubs();
        let caps: Vec<f64> = (0..g.num_topics())
            .map(|z| topic_arrival_cap(&g, z))
            .collect();
        let combined = combine_topic_caps(&caps);
        // the combined arrival cap dominates the exact reference cap, hence
        // every MIA spread NB/LG compare against
        assert!(combined >= global_spread_cap(&g, THETA) - 1e-12);
        for z in 0..2 {
            let gamma = TopicDistribution::pure(2, z);
            for u in g.nodes() {
                assert!(combined >= exact(&g, u, &gamma) - 1e-9);
            }
        }
        // each unit is at least the empty-spread floor
        assert!(caps.iter().all(|&c| c >= 1.0));
        assert_eq!(combine_topic_caps(&[]), 1.0);
    }

    #[test]
    fn topic_caps_ignore_foreign_topic_deltas() {
        use octopus_graph::GraphBuilder;
        let g = two_topic_hubs();
        // re-build the fixture with one extra pure-topic-1 edge
        let mut b = GraphBuilder::new(2);
        for u in g.nodes() {
            b.add_node(g.name(u).unwrap_or(""));
        }
        for u in g.nodes() {
            for (v, e) in g.out_edges(u) {
                let probs: Vec<(usize, f64)> = g
                    .edge_topic_probs(e)
                    .map(|(z, p)| (z.index(), p as f64))
                    .collect();
                b.add_edge(u, v, &probs).unwrap();
            }
        }
        // target node 3, which has no topic-1 in-edge in the fixture, so
        // the insert raises its topic-1 arrival mass from zero
        b.add_edge(NodeId(9), NodeId(3), &[(1, 0.4)]).unwrap();
        let g2 = b.build().unwrap();
        // topic 0's arrival cap is bit-identical; topic 1's moved
        assert_eq!(
            topic_arrival_cap(&g, 0).to_bits(),
            topic_arrival_cap(&g2, 0).to_bits()
        );
        assert!(topic_arrival_cap(&g2, 1) > topic_arrival_cap(&g, 1));
        // and NB stays sound under the combined arrival cap
        let caps: Vec<f64> = (0..2).map(|z| topic_arrival_cap(&g2, z)).collect();
        let nb = NeighborhoodBound::new(&g2, combine_topic_caps(&caps));
        let gamma = TopicDistribution::uniform(2);
        for u in g2.nodes() {
            let probs = g2.materialize(gamma.as_slice()).unwrap();
            let s = mia_spread_set(&g2, &probs, &[u], THETA);
            assert!(nb.upper_bound(u, &gamma) >= s - 1e-9);
        }
    }
}
