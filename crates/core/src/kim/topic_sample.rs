//! The topic-sample algorithm (§II-C): "pre-computes seed sets for some
//! offline-sampled topic distributions. Then, we use the samples to better
//! estimate upper and lower bounds for pruning instead of directly answering
//! the query."
//!
//! Offline, the engine materializes seed sets for the `Z` simplex corners
//! plus `extra` Dirichlet-sampled distributions. Online, the nearest sample
//! under L1 distance either answers the query directly (distance `≤
//! direct_eps` — spread is Lipschitz in `γ`, so a close sample's seeds are
//! near-optimal) or warm-starts the best-effort engine: the sample's seeds
//! are exactly evaluated first, which plants a strong lower bound in the
//! CELF queue and lets the upper bounds prune far more aggressively than a
//! cold start.

use super::best_effort::BestEffortKim;
use super::bounds::BoundEstimator;
use super::{KimAlgorithm, KimResult, KimStats};
use octopus_graph::NodeId;
use octopus_topics::TopicDistribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// One precomputed sample: a topic distribution and its seed set.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicSample {
    /// The sampled distribution.
    pub gamma: TopicDistribution,
    /// Seeds precomputed for it (length = offline `k_max`).
    pub seeds: Vec<NodeId>,
    /// The engine's spread estimate of the full seed set.
    pub spread: f64,
}

/// The topic-sample engine, wrapping a best-effort core.
pub struct TopicSampleKim<'g, B: BoundEstimator> {
    inner: BestEffortKim<'g, B>,
    samples: Vec<TopicSample>,
    /// Queries within this L1 distance of a sample are answered directly.
    direct_eps: f64,
}

impl<'g, B: BoundEstimator> TopicSampleKim<'g, B> {
    /// Precompute seed sets over `Z` corners + `extra` Dirichlet samples.
    ///
    /// `alpha` is the Dirichlet concentration of the extra samples (sparse
    /// draws `< 1` mirror real query distributions, which concentrate on a
    /// few topics); `k_max` bounds the query `k` a sample can answer
    /// directly.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        inner: BestEffortKim<'g, B>,
        num_topics: usize,
        extra: usize,
        alpha: f64,
        k_max: usize,
        direct_eps: f64,
        seed: u64,
    ) -> Self
    where
        B: Sync,
    {
        let gammas = Self::sample_gammas(num_topics, extra, alpha, seed);
        let samples = Self::solve_samples(&inner, gammas, k_max);
        TopicSampleKim {
            inner,
            samples,
            direct_eps,
        }
    }

    /// Compute the seed set of every sampled distribution — the expensive
    /// half of the offline phase. The per-gamma best-effort runs are
    /// deterministic and independent, so they execute in parallel; results
    /// come back in input order regardless of the thread count.
    pub fn solve_samples(
        inner: &BestEffortKim<'g, B>,
        gammas: Vec<TopicDistribution>,
        k_max: usize,
    ) -> Vec<TopicSample>
    where
        B: Sync,
    {
        gammas
            .par_iter()
            .map(|gamma| {
                let res = inner.select(gamma, k_max);
                TopicSample {
                    gamma: gamma.clone(),
                    seeds: res.seeds,
                    spread: res.spread,
                }
            })
            .collect()
    }

    /// Precompute only the sample distributions (no seed sets) — exposed so
    /// callers can own the offline state and re-wrap it per query.
    pub fn sample_gammas(
        num_topics: usize,
        extra: usize,
        alpha: f64,
        seed: u64,
    ) -> Vec<TopicDistribution> {
        let mut gammas: Vec<TopicDistribution> = (0..num_topics)
            .map(|z| TopicDistribution::pure(num_topics, z))
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..extra {
            let draws: Vec<f64> = (0..num_topics)
                .map(|_| {
                    let u: f64 = 1.0 - rng.random::<f64>();
                    u.powf(1.0 / alpha)
                })
                .collect();
            if let Ok(g) = TopicDistribution::from_weights(draws) {
                gammas.push(g);
            }
        }
        gammas
    }

    /// Wrap previously computed samples (the engine facade stores them
    /// offline and reconstructs the cheap wrapper per query).
    pub fn from_prebuilt(
        inner: BestEffortKim<'g, B>,
        samples: Vec<TopicSample>,
        direct_eps: f64,
    ) -> Self {
        TopicSampleKim {
            inner,
            samples,
            direct_eps,
        }
    }

    /// The precomputed samples.
    pub fn samples(&self) -> &[TopicSample] {
        &self.samples
    }

    /// Index and L1 distance of the nearest sample.
    pub fn nearest_sample(&self, gamma: &TopicDistribution) -> (usize, f64) {
        nearest_sample(&self.samples, gamma).expect("samples checked non-empty by callers")
    }
}

/// Index and L1 distance of the sample nearest to `gamma` (`None` for an
/// empty slice). Shared by [`TopicSampleKim`] and the engine facade, which
/// borrows the offline samples instead of wrapping them.
pub fn nearest_sample(samples: &[TopicSample], gamma: &TopicDistribution) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, s) in samples.iter().enumerate() {
        let d = s.gamma.l1_distance(gamma);
        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
            best = Some((i, d));
        }
    }
    best
}

/// The direct-answer rule: if the nearest sample (`idx`) is within
/// `direct_eps` and holds at least `k` seeds, answer from it — `k`-prefix
/// seeds, full-sample spread, `answered_from_sample` set.
pub fn direct_answer(
    samples: &[TopicSample],
    idx: usize,
    dist: f64,
    direct_eps: f64,
    k: usize,
) -> Option<KimResult> {
    let sample = &samples[idx];
    (dist <= direct_eps && sample.seeds.len() >= k).then(|| KimResult {
        seeds: sample.seeds[..k].to_vec(),
        spread: sample.spread,
        stats: KimStats {
            answered_from_sample: true,
            ..KimStats::default()
        },
    })
}

impl<B: BoundEstimator> KimAlgorithm for TopicSampleKim<'_, B> {
    fn select(&self, gamma: &TopicDistribution, k: usize) -> KimResult {
        if self.samples.is_empty() {
            return self.inner.select(gamma, k);
        }
        let (idx, dist) = self.nearest_sample(gamma);
        if let Some(res) = direct_answer(&self.samples, idx, dist, self.direct_eps, k) {
            return res;
        }
        // warm-start the best-effort run with the sample's seeds
        let sample = &self.samples[idx];
        let warm: Vec<NodeId> = sample.seeds.iter().copied().take(k.max(1)).collect();
        self.inner.select_warm(gamma, k, &warm)
    }

    fn name(&self) -> &'static str {
        "topic-sample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kim::bounds::{global_spread_cap, NeighborhoodBound};
    use crate::kim::testutil::two_topic_hubs;
    use octopus_graph::TopicGraph;

    const THETA: f64 = 1.0 / 320.0;

    fn engine(g: &TopicGraph, extra: usize, eps: f64) -> TopicSampleKim<'_, NeighborhoodBound<'_>> {
        let cap = global_spread_cap(g, THETA);
        let inner = BestEffortKim::new(g, NeighborhoodBound::new(g, cap), THETA);
        TopicSampleKim::build(inner, g.num_topics(), extra, 0.3, 3, eps, 99)
    }

    #[test]
    fn corner_queries_answered_directly() {
        let g = two_topic_hubs();
        let ts = engine(&g, 0, 0.05);
        let res = ts.select(&TopicDistribution::pure(2, 0), 1);
        assert!(res.stats.answered_from_sample);
        assert_eq!(res.seeds, vec![NodeId(0)]);
        assert_eq!(res.stats.exact_evaluations, 0, "no online work at all");
    }

    #[test]
    fn near_corner_queries_reuse_samples() {
        let g = two_topic_hubs();
        let ts = engine(&g, 0, 0.1);
        let near = TopicDistribution::new(vec![0.96, 0.04]).unwrap();
        let res = ts.select(&near, 1);
        assert!(
            res.stats.answered_from_sample,
            "L1 distance 0.08 < 0.1 ⇒ direct"
        );
        assert_eq!(res.seeds, vec![NodeId(0)]);
    }

    #[test]
    fn far_queries_fall_back_to_warm_started_exact() {
        let g = two_topic_hubs();
        let ts = engine(&g, 0, 0.05);
        let mid = TopicDistribution::uniform(2);
        let res = ts.select(&mid, 2);
        assert!(!res.stats.answered_from_sample);
        let mut s = res.seeds.clone();
        s.sort();
        assert_eq!(s, vec![NodeId(0), NodeId(1)]);
        assert!(res.stats.exact_evaluations > 0);
    }

    #[test]
    fn more_samples_cover_more_queries_directly() {
        let g = two_topic_hubs();
        let few = engine(&g, 0, 0.15);
        let many = engine(&g, 64, 0.15);
        let queries: Vec<TopicDistribution> = (0..=10)
            .map(|i| TopicDistribution::new(vec![i as f64 / 10.0, 1.0 - i as f64 / 10.0]).unwrap())
            .collect();
        let direct = |ts: &TopicSampleKim<'_, NeighborhoodBound<'_>>| {
            queries
                .iter()
                .filter(|q| ts.select(q, 1).stats.answered_from_sample)
                .count()
        };
        assert!(
            direct(&many) > direct(&few),
            "denser samples must hit more often"
        );
    }

    #[test]
    fn nearest_sample_distance_is_zero_on_corners() {
        let g = two_topic_hubs();
        let ts = engine(&g, 4, 0.05);
        let (_, d) = ts.nearest_sample(&TopicDistribution::pure(2, 1));
        assert!(d < 1e-12);
    }
}
