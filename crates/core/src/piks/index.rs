//! The influencer index (§II-D): "to achieve real-time influence spread
//! computation, we introduce a novel index structure that maintains
//! 'influencers' of uniformly sampled users to avoid online sampling from
//! scratch."
//!
//! ## Construction
//!
//! `R` possible worlds are drawn. World `j` picks a uniform root `rⱼ` and
//! performs a reverse BFS collecting every edge that could *possibly* be
//! live under **any** query (coin `c_e < max_z pp^z_e`). The reached nodes
//! are `rⱼ`'s potential influencers; the traversed sub-DAG is stored in a
//! compact per-sample CSR.
//!
//! ## Querying
//!
//! Coins are derived by hashing (shared coins, see
//! [`octopus_cascade::EdgeCoins`]), so for any online `γ` the same world is
//! re-evaluated exactly: edge `e` is live iff `c_e < pp_e(γ)` — a subset of
//! the stored superset since `pp_e(γ) ≤ max_z pp^z_e`. The live influencer
//! set of sample `j` is materialized **lazily on first touch per query**
//! (the "delay materialization" technique) and cached in the query session;
//! the spread of a target `u` is then the classic RR estimate
//! `n/R · #{j : u ∈ live_j}`.

use bytes::{Buf, BufMut, BytesMut};
use octopus_cascade::{stream_seed, EdgeCoins};
use octopus_graph::wire::{self, WireError};
use octopus_graph::{EdgeId, NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rayon::prelude::*;

/// One stored world: the potential-influencer DAG of a sampled root.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Sample {
    root: NodeId,
    coins: EdgeCoins,
    /// Nodes of the sub-DAG (root first; position = local id).
    nodes: Vec<u32>,
    /// Local id lookup: `local_of[global]` or `u32::MAX`.
    /// Kept sparse via a sorted pairs list to stay memory-proportional.
    local_of: Vec<(u32, u32)>,
    /// CSR over local node ids: for each local node, its incoming stored
    /// edges as `(source local id, edge id)`.
    in_offsets: Vec<u32>,
    in_edges: Vec<(u32, EdgeId)>,
    /// [`footprint_hash`] of this world over the graph it was built on —
    /// the world's incremental-rebuild cache key.
    footprint: u64,
    /// Edges the construction BFS examined (per-world work counter; summed
    /// into [`IndexStats::edges_examined`]).
    edges_examined: usize,
}

impl Sample {
    fn local(&self, global: NodeId) -> Option<u32> {
        self.local_of
            .binary_search_by_key(&global.0, |&(g, _)| g)
            .ok()
            .map(|i| self.local_of[i].1)
    }
}

/// Work/size counters of an index build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Worlds stored.
    pub samples: usize,
    /// Total nodes across stored sub-DAGs.
    pub stored_nodes: usize,
    /// Total edges across stored sub-DAGs.
    pub stored_edges: usize,
    /// Edges examined during construction.
    pub edges_examined: usize,
}

/// The influencer index.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluencerIndex {
    n: usize,
    samples: Vec<Sample>,
    stats: IndexStats,
}

/// Tag separating the root-selection stream from the coin streams (which
/// derive from the untagged seed in [`EdgeCoins::worlds`]).
const ROOT_STREAM_TAG: u64 = 0x5EED_2007_D00D_1DE5;

/// Hash of everything one world's construction and evaluation read from the
/// graph: for every node of the world's sub-DAG (in BFS discovery order),
/// the node's global id and its full in-edge list — source id, [`EdgeId`]
/// (the coin input), and the edge's sparse topic-probability row (which
/// determines both the build-time `max_z pp^z_e` superset test and the
/// query-time `pp_e(γ)` liveness test).
///
/// This is the world's incremental-rebuild key. The reverse BFS only ever
/// expands through in-edges of nodes it has reached, so if this hash is
/// unchanged on a *new* graph, rebuilding the world there would reproduce
/// the stored sample bit for bit (given the same root and coins, which are
/// keyed separately on `(seed, n, j)`); and any graph delta the world's
/// construction or evaluation could observe — a new in-edge on a reached
/// node, a weight change, an edge-id shift — moves it.
pub fn footprint_hash(graph: &TopicGraph, nodes: &[u32]) -> u64 {
    let mut h = octopus_graph::wire::Fnv64::new();
    h.write(b"octa:piks-world");
    for &g in nodes {
        h.write_u32(g);
        for (u, e) in graph.in_edges(NodeId(g)) {
            h.write_u32(u.0);
            h.write_u32(e.0);
            for (z, p) in graph.edge_topic_probs(e) {
                h.write_u16(z.0);
                h.write_f32(p);
            }
        }
    }
    h.finish()
}

/// Build one world: pick the root from the world's index-derived stream and
/// reverse-BFS the max-probability superset DAG.
fn build_world(graph: &TopicGraph, j: u64, seed: u64, coins: EdgeCoins) -> Sample {
    let n = graph.node_count();
    // root: uniform from the world's own stream (stable under parallelism,
    // decorrelated from the world's coin stream by the tag)
    let root = NodeId(((stream_seed(seed ^ ROOT_STREAM_TAG, j) >> 11) % n as u64) as u32);
    let mut edges_examined = 0usize;
    // reverse BFS in the max-probability world; membership is tracked in
    // the sorted `local_ids` list (no shared visited array — each world
    // builds independently, possibly on its own thread)
    let mut nodes: Vec<u32> = vec![root.0];
    let mut local_edges: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new()];
    let mut local_ids: Vec<(u32, u32)> = vec![(root.0, 0)];
    let mut head = 0usize;
    while head < nodes.len() {
        let v = NodeId(nodes[head]);
        let v_local = head as u32;
        head += 1;
        for (u, e) in graph.in_edges(v) {
            edges_examined += 1;
            let pmax = graph.edge_prob_max(e) as f64;
            if !coins.is_live(e, pmax) {
                continue;
            }
            let u_local = match local_ids.binary_search_by_key(&u.0, |&(g, _)| g) {
                Ok(i) => local_ids[i].1,
                Err(pos) => {
                    let lid = nodes.len() as u32;
                    nodes.push(u.0);
                    local_edges.push(Vec::new());
                    local_ids.insert(pos, (u.0, lid));
                    lid
                }
            };
            // stored edge: u → v (u can influence v); in the
            // evaluation BFS we walk from v to u, so index by v.
            local_edges[v_local as usize].push((u_local, e));
        }
    }
    // flatten to CSR
    let mut in_offsets = Vec::with_capacity(nodes.len() + 1);
    let mut in_edges = Vec::new();
    in_offsets.push(0u32);
    for le in &local_edges {
        in_edges.extend_from_slice(le);
        in_offsets.push(in_edges.len() as u32);
    }
    let footprint = footprint_hash(graph, &nodes);
    Sample {
        root,
        coins,
        nodes,
        local_of: local_ids,
        in_offsets,
        in_edges,
        footprint,
        edges_examined,
    }
}

/// Per-world reuse slots decoded from a persisted index, produced by
/// [`InfluencerIndex::load_reusable`] and consumed by
/// [`InfluencerIndex::build_with_reuse`].
///
/// Slot `j` is `Some` iff the stored world `j` decoded cleanly **and** its
/// stored [`footprint_hash`] matches the hash recomputed over the live
/// graph — i.e. rebuilding that world now would reproduce the stored bytes.
/// Worlds whose BFS footprint intersects a graph delta come back `None`
/// and are rebuilt; untouched worlds are reloaded as-is.
#[derive(Debug, Default)]
pub struct PiksReuse {
    slots: Vec<Option<Sample>>,
}

impl PiksReuse {
    /// Number of stored worlds (reusable or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no worlds were stored at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of worlds that survived footprint validation.
    pub fn available(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of validated worlds among the first `r` slots — the count
    /// that actually matters to a build of `r` worlds, since reuse is
    /// positional (world `j` is keyed by `(seed, j)`). A donor persisted
    /// under a larger index size may have plenty of valid late worlds that
    /// an `r`-world build can never use; compare donors by this, not by
    /// [`PiksReuse::available`].
    pub fn available_in(&self, r: usize) -> usize {
        self.slots.iter().take(r).filter(|s| s.is_some()).count()
    }

    /// Per-world reusability pattern (diagnostics / invalidation tests).
    pub fn reusable_worlds(&self) -> Vec<bool> {
        self.slots.iter().map(|s| s.is_some()).collect()
    }

    /// Positional union with another donor: fill every empty slot from
    /// `other`, returning how many slots were newly filled.
    ///
    /// Sound because reuse is positional and both donors must have matched
    /// the same section key — world `j` is the same `(seed, j)` derivation
    /// in every donor (and [`InfluencerIndex::build_with_reuse`] re-checks
    /// the coin seed before trusting any slot). Two deltas that invalidated
    /// disjoint world sets in different epoch files thus reassemble full
    /// coverage here instead of rebuilding either set.
    pub fn merge_from(&mut self, other: PiksReuse) -> usize {
        if other.slots.len() > self.slots.len() {
            self.slots.resize_with(other.slots.len(), || None);
        }
        let mut filled = 0;
        for (slot, donor) in self.slots.iter_mut().zip(other.slots) {
            if slot.is_none() && donor.is_some() {
                *slot = donor;
                filled += 1;
            }
        }
        filled
    }
}

impl InfluencerIndex {
    /// Build an index of `r` worlds over `graph`.
    ///
    /// Worlds build in parallel, one per work unit on the claiming
    /// executor — per-world costs are wildly skewed (a hub-rooted reverse
    /// BFS can touch most of the graph while a leaf-rooted one touches a
    /// handful of nodes), so dynamic claiming is what keeps every core
    /// busy. World `j`'s coins and root both derive from `(seed, j)`, so
    /// the index is bit-identical for any thread count or schedule.
    pub fn build(graph: &TopicGraph, r: usize, seed: u64) -> Self {
        Self::build_with_reuse(graph, r, seed, &PiksReuse::default()).0
    }

    /// Build an index of `r` worlds, reloading every world whose slot in
    /// `reuse` is populated and rebuilding only the rest. Returns the index
    /// and the number of worlds actually reused.
    ///
    /// World `j`'s randomness derives from `(seed, j)` alone — never from
    /// `r` — so a reuse set persisted under a different index size
    /// contributes its prefix. A reused world is bit-identical to what a
    /// fresh world build would produce (that is what its footprint key
    /// certifies), so the assembled index equals a from-scratch
    /// [`InfluencerIndex::build`] no matter which subset was reused —
    /// pinned by the `delta_invalidation` integration tests.
    pub fn build_with_reuse(
        graph: &TopicGraph,
        r: usize,
        seed: u64,
        reuse: &PiksReuse,
    ) -> (Self, usize) {
        let n = graph.node_count();
        let mut stats = IndexStats {
            samples: r,
            ..IndexStats::default()
        };
        if n == 0 {
            return (
                InfluencerIndex {
                    n,
                    samples: Vec::new(),
                    stats,
                },
                0,
            );
        }
        let worlds = EdgeCoins::worlds(seed, r);
        let reusable = |j: usize| -> Option<&Sample> {
            // a slot is only trusted when its coins agree with this build's
            // derivation (the footprint key does not cover the coin seed)
            reuse
                .slots
                .get(j)?
                .as_ref()
                .filter(|s| s.coins.seed() == worlds[j].seed())
        };
        let reused = (0..r).filter(|&j| reusable(j).is_some()).count();
        // delta rebuilds are the skew worst case: most units are cheap
        // clones of reused worlds with expensive fresh BFS builds sprinkled
        // between them — the executor's dynamic claiming load-balances the
        // mix, no chunking heuristic needed here
        let samples: Vec<Sample> = (0..r)
            .into_par_iter()
            .map(|j| match reusable(j) {
                Some(sample) => sample.clone(),
                None => build_world(graph, j as u64, seed, worlds[j]),
            })
            .collect();
        for sample in &samples {
            stats.stored_nodes += sample.nodes.len();
            stats.stored_edges += sample.in_edges.len();
            stats.edges_examined += sample.edges_examined;
        }
        (InfluencerIndex { n, samples, stats }, reused)
    }

    /// The cache key of the index's *derivation inputs*: node count (the
    /// root-selection modulus) and the world seed. Graph content is
    /// deliberately absent — it is covered per world by [`footprint_hash`],
    /// which is what makes world-granular delta reuse possible. The index
    /// size is also absent: worlds are keyed by `(seed, j)`, so a resize
    /// reuses the shared prefix.
    pub fn section_key(node_count: usize, seed: u64) -> u64 {
        let mut h = octopus_graph::wire::Fnv64::new();
        h.write(b"octa:piks-index");
        h.write_u64(node_count as u64);
        h.write_u64(seed);
        h.finish()
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the index holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The sampled root of world `j` (diagnostics / tests).
    pub fn root_of(&self, j: usize) -> NodeId {
        self.samples[j].root
    }

    /// Global node ids of world `j`'s stored sub-DAG, in BFS discovery
    /// order (diagnostics / invalidation tests — this is the node set whose
    /// in-edges form the world's [`footprint_hash`]).
    pub fn world_nodes(&self, j: usize) -> &[u32] {
        &self.samples[j].nodes
    }

    /// Serialize the index into `buf` (the artifact-codec path).
    ///
    /// Layout (the OCTA v3 `piks-worlds` section payload; normative spec in
    /// `ARCHITECTURE.md`):
    ///
    /// ```text
    /// n u32 | world count R u32
    /// R × world:
    ///   footprint u64 | coin seed u64 | edges_examined u64
    ///   node count W u32 | W × global node u32 (BFS order, root first)
    ///   (W+1) × u32 CSR in-offsets
    ///   edge count u32 | edges × (source local id u32, edge id u32)
    /// ```
    ///
    /// Each world carries its own [`footprint_hash`] so a later open can
    /// reuse it independently of every other world. The sparse `local_of`
    /// lookup is derived data and is rebuilt on decode instead of stored.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.n as u32);
        buf.put_u32_le(self.samples.len() as u32);
        for s in &self.samples {
            buf.put_u64_le(s.footprint);
            buf.put_u64_le(s.coins.seed());
            buf.put_u64_le(s.edges_examined as u64);
            buf.put_u32_le(s.nodes.len() as u32);
            for &g in &s.nodes {
                buf.put_u32_le(g);
            }
            for &o in &s.in_offsets {
                buf.put_u32_le(o);
            }
            buf.put_u32_le(s.in_edges.len() as u32);
            for &(src, e) in &s.in_edges {
                buf.put_u32_le(src);
                buf.put_u32_le(e.0);
            }
        }
    }

    /// Decode worlds serialized by [`InfluencerIndex::encode_into`] into
    /// per-world reuse slots validated against the **live** graph.
    ///
    /// Structural framing damage (truncation, malformed CSR) is an error —
    /// the caller treats the whole section as a miss. A world that decodes
    /// cleanly is screened semantically instead: its stored node and edge
    /// ids must fall inside `graph`, and its stored [`footprint_hash`] must
    /// equal the hash recomputed over `graph`'s current in-edge content.
    /// Screening failures are not errors; the world's slot is simply `None`
    /// (it will be rebuilt), which is exactly the delta-reuse contract —
    /// a payload keyed to the wrong inputs, or touched by a graph delta,
    /// can never be served, only ignored.
    pub fn load_reusable<B: Buf + ?Sized>(
        buf: &mut B,
        graph: &TopicGraph,
    ) -> Result<PiksReuse, WireError> {
        let node_count = graph.node_count();
        let edge_count = graph.edge_count();
        wire::need(buf, 4 + 4, "piks index header")?;
        let n = buf.get_u32_le() as usize;
        let world_count = buf.get_u32_le() as usize;
        let derivation_ok = n == node_count;
        let mut slots = Vec::with_capacity(world_count.min(1 << 20));
        for j in 0..world_count {
            wire::need(buf, 8 + 8 + 8 + 4, "piks world header")?;
            let footprint = buf.get_u64_le();
            let coins = EdgeCoins::new(buf.get_u64_le());
            let edges_examined = buf.get_u64_le() as usize;
            let world_nodes = buf.get_u32_le() as usize;
            if world_nodes == 0 {
                return Err(WireError(format!("piks world {j} has no root")));
            }
            let nodes = wire::read_u32s(buf, world_nodes, "piks world nodes")?;
            let in_offsets = wire::read_u32s(buf, world_nodes + 1, "piks world offsets")?;
            wire::need(buf, 4, "piks world edge count")?;
            let world_edges = buf.get_u32_le() as usize;
            if in_offsets[0] != 0
                || in_offsets.windows(2).any(|w| w[0] > w[1])
                || in_offsets[world_nodes] as usize != world_edges
            {
                return Err(WireError(format!("piks world {j} CSR offsets malformed")));
            }
            wire::need(buf, world_edges.saturating_mul(8), "piks world edges")?;
            let mut in_edges = Vec::with_capacity(world_edges);
            let mut ids_ok = true;
            for _ in 0..world_edges {
                let src = buf.get_u32_le();
                let e = EdgeId(buf.get_u32_le());
                if src as usize >= world_nodes {
                    return Err(WireError(format!(
                        "piks world {j} edge source {src} out of bounds"
                    )));
                }
                ids_ok &= e.index() < edge_count;
                in_edges.push((src, e));
            }
            ids_ok &= nodes.iter().all(|&g| (g as usize) < node_count);
            if !(derivation_ok && ids_ok) || footprint_hash(graph, &nodes) != footprint {
                slots.push(None);
                continue;
            }
            // the sparse lookup is derived: sort (global, local) by global
            let mut local_of: Vec<(u32, u32)> = nodes
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, local as u32))
                .collect();
            local_of.sort_unstable();
            slots.push(Some(Sample {
                root: NodeId(nodes[0]),
                coins,
                nodes,
                local_of,
                in_offsets,
                in_edges,
                footprint,
                edges_examined,
            }));
        }
        Ok(PiksReuse { slots })
    }

    /// Start a query session for `gamma`. Live sets materialize lazily.
    pub fn session<'a>(
        &'a self,
        graph: &'a TopicGraph,
        gamma: &TopicDistribution,
    ) -> QuerySession<'a> {
        QuerySession {
            index: self,
            graph,
            gamma: gamma.as_slice().to_vec(),
            live: vec![None; self.samples.len()],
            materialized: 0,
        }
    }
}

/// A lazy per-query view of the index.
///
/// Each world's live influencer set is computed on first access and cached —
/// repeated spread evaluations (the inner loop of greedy keyword selection)
/// touch each world once regardless of how many candidates are scored.
pub struct QuerySession<'a> {
    index: &'a InfluencerIndex,
    graph: &'a TopicGraph,
    gamma: Vec<f64>,
    /// Per-sample live influencer sets (global node ids, sorted), lazily
    /// materialized.
    live: Vec<Option<Vec<u32>>>,
    materialized: usize,
}

impl QuerySession<'_> {
    /// Live influencer set of sample `j` under this query (sorted global
    /// ids). Materializes and caches on first call — delayed
    /// materialization.
    fn live_set(&mut self, j: usize) -> &[u32] {
        if self.live[j].is_none() {
            self.materialized += 1;
            let s = &self.index.samples[j];
            // BFS from the root (local id 0) over γ-live stored edges
            let mut live_local = vec![false; s.nodes.len()];
            live_local[0] = true;
            let mut queue = vec![0u32];
            let mut head = 0usize;
            let mut members = vec![s.nodes[0]];
            while head < queue.len() {
                let v = queue[head] as usize;
                head += 1;
                let lo = s.in_offsets[v] as usize;
                let hi = s.in_offsets[v + 1] as usize;
                for &(u_local, e) in &s.in_edges[lo..hi] {
                    if live_local[u_local as usize] {
                        continue;
                    }
                    let p = self.graph.edge_prob(e, &self.gamma);
                    if s.coins.is_live(e, p) {
                        live_local[u_local as usize] = true;
                        queue.push(u_local);
                        members.push(s.nodes[u_local as usize]);
                    }
                }
            }
            members.sort_unstable();
            self.live[j] = Some(members);
        }
        self.live[j].as_deref().expect("just materialized")
    }

    /// Estimated influence spread of a seed set under this query:
    /// `n/R · #{j : S ∩ live_j ≠ ∅}`.
    ///
    /// Worlds whose stored *superset* does not even contain a seed are
    /// skipped without materialization — the delayed-materialization fast
    /// path (live ⊆ superset for every query).
    pub fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        if self.index.is_empty() {
            return 0.0;
        }
        let r = self.index.len();
        let mut hits = 0usize;
        for j in 0..r {
            let sample = &self.index.samples[j];
            if seeds.iter().all(|&s| sample.local(s).is_none()) {
                continue;
            }
            let live = self.live_set(j);
            if seeds.iter().any(|s| live.binary_search(&s.0).is_ok()) {
                hits += 1;
            }
        }
        self.index.n as f64 * hits as f64 / r as f64
    }

    /// Single-target spread (the common PIKS case).
    pub fn spread_of(&mut self, u: NodeId) -> f64 {
        self.spread(&[u])
    }

    /// How many worlds have been materialized so far (work metric for the
    /// lazy-evaluation experiments).
    pub fn materialized_worlds(&self) -> usize {
        self.materialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_cascade::estimate_spread;
    use octopus_graph::GraphBuilder;

    /// hub 0 → {1..=8} with topic-0 prob .6 / topic-1 prob .1
    fn hub_graph() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(9);
        for v in 1..=8u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6), (1, 0.1)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn index_estimates_match_monte_carlo() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 12_000, 7);
        for (gamma, _label) in [
            (TopicDistribution::pure(2, 0), "t0"),
            (TopicDistribution::pure(2, 1), "t1"),
            (TopicDistribution::uniform(2), "mix"),
        ] {
            let mut session = idx.session(&g, &gamma);
            let est = session.spread_of(NodeId(0));
            let probs = g.materialize(gamma.as_slice()).unwrap();
            let mc = estimate_spread(&g, &probs, &[NodeId(0)], 20_000, 3);
            assert!(
                (est - mc).abs() < 0.35,
                "index {est} vs mc {mc} under {:?}",
                gamma.as_slice()
            );
        }
    }

    #[test]
    fn same_query_same_answer_lazy_cache() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 2000, 9);
        let gamma = TopicDistribution::uniform(2);
        let mut session = idx.session(&g, &gamma);
        let a = session.spread_of(NodeId(0));
        let worlds_after_first = session.materialized_worlds();
        let b = session.spread_of(NodeId(0));
        assert_eq!(a, b);
        assert_eq!(
            session.materialized_worlds(),
            worlds_after_first,
            "second evaluation must reuse cached live sets"
        );
    }

    #[test]
    fn spread_monotone_in_gamma_strength() {
        // topic 0 edges are stronger; shared coins make this deterministic
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 4000, 11);
        let strong = idx
            .session(&g, &TopicDistribution::pure(2, 0))
            .spread_of(NodeId(0));
        let weak = idx
            .session(&g, &TopicDistribution::pure(2, 1))
            .spread_of(NodeId(0));
        assert!(
            strong >= weak,
            "shared coins: stronger edges can only add live worlds ({strong} vs {weak})"
        );
    }

    #[test]
    fn leaf_nodes_have_spread_about_one() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 8000, 13);
        let mut session = idx.session(&g, &TopicDistribution::pure(2, 0));
        let s = session.spread_of(NodeId(4));
        assert!((s - 1.0).abs() < 0.25, "leaf spread {s}");
    }

    #[test]
    fn seed_set_spread_at_least_max_member() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 3000, 17);
        let gamma = TopicDistribution::uniform(2);
        let mut session = idx.session(&g, &gamma);
        let s0 = session.spread_of(NodeId(0));
        let s_both = session.spread(&[NodeId(0), NodeId(3)]);
        assert!(s_both >= s0 - 1e-9);
    }

    #[test]
    fn empty_graph_safe() {
        let g = GraphBuilder::new(1).build().unwrap();
        let idx = InfluencerIndex::build(&g, 100, 1);
        let gamma = TopicDistribution::uniform(1);
        let mut session = idx.session(&g, &gamma);
        assert_eq!(session.spread(&[]), 0.0);
    }

    #[test]
    fn superset_check_skips_worlds_for_irrelevant_seeds() {
        // node 8's only influencer is the hub; worlds rooted elsewhere whose
        // superset misses node 5 must not be materialized when querying 5
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 2000, 21);
        let gamma = TopicDistribution::pure(2, 0);
        let mut leaf_session = idx.session(&g, &gamma);
        let _ = leaf_session.spread_of(NodeId(5));
        let mut hub_session = idx.session(&g, &gamma);
        let _ = hub_session.spread_of(NodeId(0));
        assert!(
            leaf_session.materialized_worlds() < hub_session.materialized_worlds(),
            "leaf query must touch fewer worlds ({} vs {})",
            leaf_session.materialized_worlds(),
            hub_session.materialized_worlds()
        );
    }

    #[test]
    fn roots_are_spread_over_nodes() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 300, 5);
        let mut distinct: Vec<u32> = (0..idx.len()).map(|j| idx.root_of(j).0).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 5,
            "roots should cover many nodes: {distinct:?}"
        );
    }

    #[test]
    fn round_trip_reuses_every_world() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 64, 23);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();
        let reuse = InfluencerIndex::load_reusable(&mut &frozen[..], &g).unwrap();
        assert_eq!(reuse.available(), 64, "unchanged graph reuses all worlds");
        let (back, reused) = InfluencerIndex::build_with_reuse(&g, 64, 23, &reuse);
        assert_eq!(reused, 64);
        assert_eq!(back, idx, "reassembled index is bit-identical");
        // a wrong master seed distrusts every slot (coins disagree)
        let (fresh, reused) = InfluencerIndex::build_with_reuse(&g, 64, 99, &reuse);
        assert_eq!(reused, 0);
        assert_eq!(fresh, InfluencerIndex::build(&g, 64, 99));
    }

    #[test]
    fn weight_nudge_invalidates_exactly_touching_worlds() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 200, 31);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();
        // nudge the weight of hub→4; the footprint of a world covers the
        // in-edges of its reached nodes, so exactly the worlds that
        // reached node 4 must drop out
        let victim = g.find_edge(NodeId(0), NodeId(4)).unwrap();
        let g2 = octopus_graph::delta::nudge_weights(&g, &[victim], 0.07).unwrap();
        let reuse = InfluencerIndex::load_reusable(&mut &frozen[..], &g2).unwrap();
        let expected: Vec<bool> = (0..idx.len())
            .map(|j| !idx.world_nodes(j).contains(&4))
            .collect();
        assert_eq!(reuse.reusable_worlds(), expected);
        assert!(reuse.available() > 0, "some worlds must survive");
        assert!(reuse.available() < idx.len(), "some worlds must drop");
        // and the partial rebuild equals a from-scratch build on g2
        let (rebuilt, reused) = InfluencerIndex::build_with_reuse(&g2, 200, 31, &reuse);
        assert_eq!(reused, reuse.available());
        assert_eq!(rebuilt, InfluencerIndex::build(&g2, 200, 31));
    }

    #[test]
    fn resize_reuses_the_shared_prefix() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 100, 37);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();
        let reuse = InfluencerIndex::load_reusable(&mut &frozen[..], &g).unwrap();
        // the positional count: only slots below r can serve an r-world build
        assert_eq!(reuse.available(), 100);
        assert_eq!(reuse.available_in(40), 40);
        assert_eq!(reuse.available_in(150), 100);
        // shrink: reuse the first 40 worlds
        let (small, reused) = InfluencerIndex::build_with_reuse(&g, 40, 37, &reuse);
        assert_eq!(reused, 40);
        assert_eq!(small, InfluencerIndex::build(&g, 40, 37));
        // grow: reuse all 100, build 50 more
        let (big, reused) = InfluencerIndex::build_with_reuse(&g, 150, 37, &reuse);
        assert_eq!(reused, 100);
        assert_eq!(big, InfluencerIndex::build(&g, 150, 37));
    }

    #[test]
    fn stats_are_populated() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 500, 3);
        let st = idx.stats();
        assert_eq!(st.samples, 500);
        assert!(
            st.stored_nodes >= 500,
            "every sample stores at least its root"
        );
        assert!(st.edges_examined > 0);
    }
}
