//! The influencer index (§II-D): "to achieve real-time influence spread
//! computation, we introduce a novel index structure that maintains
//! 'influencers' of uniformly sampled users to avoid online sampling from
//! scratch."
//!
//! ## Construction
//!
//! `R` possible worlds are drawn. World `j` picks a uniform root `rⱼ` and
//! performs a reverse BFS collecting every edge that could *possibly* be
//! live under **any** query (coin `c_e < max_z pp^z_e`). The reached nodes
//! are `rⱼ`'s potential influencers; the traversed sub-DAG is stored in a
//! compact per-sample CSR.
//!
//! ## Querying
//!
//! Coins are derived by hashing (shared coins, see
//! [`octopus_cascade::EdgeCoins`]), so for any online `γ` the same world is
//! re-evaluated exactly: edge `e` is live iff `c_e < pp_e(γ)` — a subset of
//! the stored superset since `pp_e(γ) ≤ max_z pp^z_e`. The live influencer
//! set of sample `j` is materialized **lazily on first touch per query**
//! (the "delay materialization" technique) and cached in the query session;
//! the spread of a target `u` is then the classic RR estimate
//! `n/R · #{j : u ∈ live_j}`.

use bytes::{Buf, BufMut, BytesMut};
use octopus_cascade::{stream_seed, EdgeCoins};
use octopus_graph::wire::{self, WireError};
use octopus_graph::{EdgeId, NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rayon::prelude::*;

/// One stored world: the potential-influencer DAG of a sampled root.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Sample {
    root: NodeId,
    coins: EdgeCoins,
    /// Nodes of the sub-DAG (root first; position = local id).
    nodes: Vec<u32>,
    /// Local id lookup: `local_of[global]` or `u32::MAX`.
    /// Kept sparse via a sorted pairs list to stay memory-proportional.
    local_of: Vec<(u32, u32)>,
    /// CSR over local node ids: for each local node, its incoming stored
    /// edges as `(source local id, edge id)`.
    in_offsets: Vec<u32>,
    in_edges: Vec<(u32, EdgeId)>,
}

impl Sample {
    fn local(&self, global: NodeId) -> Option<u32> {
        self.local_of
            .binary_search_by_key(&global.0, |&(g, _)| g)
            .ok()
            .map(|i| self.local_of[i].1)
    }
}

/// Work/size counters of an index build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Worlds stored.
    pub samples: usize,
    /// Total nodes across stored sub-DAGs.
    pub stored_nodes: usize,
    /// Total edges across stored sub-DAGs.
    pub stored_edges: usize,
    /// Edges examined during construction.
    pub edges_examined: usize,
}

/// The influencer index.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluencerIndex {
    n: usize,
    samples: Vec<Sample>,
    stats: IndexStats,
}

/// Build one world: pick the root from the world's index-derived stream and
/// reverse-BFS the max-probability superset DAG. Returns the sample plus the
/// number of edges examined.
/// Tag separating the root-selection stream from the coin streams (which
/// derive from the untagged seed in [`EdgeCoins::worlds`]).
const ROOT_STREAM_TAG: u64 = 0x5EED_2007_D00D_1DE5;

fn build_world(graph: &TopicGraph, j: u64, seed: u64, coins: EdgeCoins) -> (Sample, usize) {
    let n = graph.node_count();
    // root: uniform from the world's own stream (stable under parallelism,
    // decorrelated from the world's coin stream by the tag)
    let root = NodeId(((stream_seed(seed ^ ROOT_STREAM_TAG, j) >> 11) % n as u64) as u32);
    let mut edges_examined = 0usize;
    // reverse BFS in the max-probability world; membership is tracked in
    // the sorted `local_ids` list (no shared visited array — each world
    // builds independently, possibly on its own thread)
    let mut nodes: Vec<u32> = vec![root.0];
    let mut local_edges: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new()];
    let mut local_ids: Vec<(u32, u32)> = vec![(root.0, 0)];
    let mut head = 0usize;
    while head < nodes.len() {
        let v = NodeId(nodes[head]);
        let v_local = head as u32;
        head += 1;
        for (u, e) in graph.in_edges(v) {
            edges_examined += 1;
            let pmax = graph.edge_prob_max(e) as f64;
            if !coins.is_live(e, pmax) {
                continue;
            }
            let u_local = match local_ids.binary_search_by_key(&u.0, |&(g, _)| g) {
                Ok(i) => local_ids[i].1,
                Err(pos) => {
                    let lid = nodes.len() as u32;
                    nodes.push(u.0);
                    local_edges.push(Vec::new());
                    local_ids.insert(pos, (u.0, lid));
                    lid
                }
            };
            // stored edge: u → v (u can influence v); in the
            // evaluation BFS we walk from v to u, so index by v.
            local_edges[v_local as usize].push((u_local, e));
        }
    }
    // flatten to CSR
    let mut in_offsets = Vec::with_capacity(nodes.len() + 1);
    let mut in_edges = Vec::new();
    in_offsets.push(0u32);
    for le in &local_edges {
        in_edges.extend_from_slice(le);
        in_offsets.push(in_edges.len() as u32);
    }
    (
        Sample {
            root,
            coins,
            nodes,
            local_of: local_ids,
            in_offsets,
            in_edges,
        },
        edges_examined,
    )
}

impl InfluencerIndex {
    /// Build an index of `r` worlds over `graph`.
    ///
    /// Worlds build in parallel; world `j`'s coins and root both derive
    /// from `(seed, j)`, so the index is bit-identical for any thread
    /// count.
    pub fn build(graph: &TopicGraph, r: usize, seed: u64) -> Self {
        let n = graph.node_count();
        let mut stats = IndexStats {
            samples: r,
            ..IndexStats::default()
        };
        if n == 0 {
            return InfluencerIndex {
                n,
                samples: Vec::new(),
                stats,
            };
        }
        let worlds = EdgeCoins::worlds(seed, r);
        let built: Vec<(Sample, usize)> = (0..r)
            .into_par_iter()
            .map(|j| build_world(graph, j as u64, seed, worlds[j]))
            .collect();
        let mut samples = Vec::with_capacity(r);
        for (sample, edges_examined) in built {
            stats.stored_nodes += sample.nodes.len();
            stats.stored_edges += sample.in_edges.len();
            stats.edges_examined += edges_examined;
            samples.push(sample);
        }
        InfluencerIndex { n, samples, stats }
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the index holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The sampled root of world `j` (diagnostics / tests).
    pub fn root_of(&self, j: usize) -> NodeId {
        self.samples[j].root
    }

    /// Serialize the index into `buf` (the artifact-codec path).
    ///
    /// Worlds are written in index order; each world stores its coin seed,
    /// its sub-DAG nodes, and the local CSR. The sparse `local_of` lookup is
    /// derived data and is rebuilt on decode instead of stored.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.n as u32);
        buf.put_u64_le(self.stats.samples as u64);
        buf.put_u64_le(self.stats.stored_nodes as u64);
        buf.put_u64_le(self.stats.stored_edges as u64);
        buf.put_u64_le(self.stats.edges_examined as u64);
        buf.put_u32_le(self.samples.len() as u32);
        for s in &self.samples {
            buf.put_u64_le(s.coins.seed());
            buf.put_u32_le(s.nodes.len() as u32);
            for &g in &s.nodes {
                buf.put_u32_le(g);
            }
            for &o in &s.in_offsets {
                buf.put_u32_le(o);
            }
            buf.put_u32_le(s.in_edges.len() as u32);
            for &(src, e) in &s.in_edges {
                buf.put_u32_le(src);
                buf.put_u32_le(e.0);
            }
        }
    }

    /// Decode an index serialized by [`InfluencerIndex::encode_into`].
    ///
    /// `node_count`/`edge_count` are the dimensions of the graph this index
    /// will be queried against: stored global node ids and edge ids are
    /// validated here, because a payload that passes the outer checksum can
    /// still be keyed to the wrong inputs by construction — and an
    /// out-of-range [`EdgeId`] would otherwise panic inside
    /// [`TopicGraph::edge_prob`] at query time instead of failing the load.
    pub fn decode_from<B: Buf + ?Sized>(
        buf: &mut B,
        node_count: usize,
        edge_count: usize,
    ) -> Result<Self, WireError> {
        wire::need(buf, 4 + 8 * 4 + 4, "piks index header")?;
        let n = buf.get_u32_le() as usize;
        if n != node_count {
            return Err(WireError(format!(
                "piks index built over {n} nodes, graph has {node_count}"
            )));
        }
        let stats = IndexStats {
            samples: buf.get_u64_le() as usize,
            stored_nodes: buf.get_u64_le() as usize,
            stored_edges: buf.get_u64_le() as usize,
            edges_examined: buf.get_u64_le() as usize,
        };
        let world_count = buf.get_u32_le() as usize;
        let mut samples = Vec::with_capacity(world_count.min(1 << 20));
        for j in 0..world_count {
            wire::need(buf, 8 + 4, "piks world header")?;
            let coins = EdgeCoins::new(buf.get_u64_le());
            let world_nodes = buf.get_u32_le() as usize;
            if world_nodes == 0 {
                return Err(WireError(format!("piks world {j} has no root")));
            }
            let nodes = wire::read_u32s(buf, world_nodes, "piks world nodes")?;
            if let Some(&bad) = nodes.iter().find(|&&g| g as usize >= node_count) {
                return Err(WireError(format!(
                    "piks world {j} stores node {bad} outside the graph ({node_count} nodes)"
                )));
            }
            let in_offsets = wire::read_u32s(buf, world_nodes + 1, "piks world offsets")?;
            wire::need(buf, 4, "piks world edge count")?;
            let world_edges = buf.get_u32_le() as usize;
            if in_offsets[0] != 0
                || in_offsets.windows(2).any(|w| w[0] > w[1])
                || in_offsets[world_nodes] as usize != world_edges
            {
                return Err(WireError(format!("piks world {j} CSR offsets malformed")));
            }
            wire::need(buf, world_edges.saturating_mul(8), "piks world edges")?;
            let mut in_edges = Vec::with_capacity(world_edges);
            for _ in 0..world_edges {
                let src = buf.get_u32_le();
                let e = EdgeId(buf.get_u32_le());
                if src as usize >= world_nodes {
                    return Err(WireError(format!(
                        "piks world {j} edge source {src} out of bounds"
                    )));
                }
                if e.index() >= edge_count {
                    return Err(WireError(format!(
                        "piks world {j} stores edge {e} outside the graph ({edge_count} edges)"
                    )));
                }
                in_edges.push((src, e));
            }
            // the sparse lookup is derived: sort (global, local) by global
            let mut local_of: Vec<(u32, u32)> = nodes
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, local as u32))
                .collect();
            local_of.sort_unstable();
            samples.push(Sample {
                root: NodeId(nodes[0]),
                coins,
                nodes,
                local_of,
                in_offsets,
                in_edges,
            });
        }
        Ok(InfluencerIndex { n, samples, stats })
    }

    /// Start a query session for `gamma`. Live sets materialize lazily.
    pub fn session<'a>(
        &'a self,
        graph: &'a TopicGraph,
        gamma: &TopicDistribution,
    ) -> QuerySession<'a> {
        QuerySession {
            index: self,
            graph,
            gamma: gamma.as_slice().to_vec(),
            live: vec![None; self.samples.len()],
            materialized: 0,
        }
    }
}

/// A lazy per-query view of the index.
///
/// Each world's live influencer set is computed on first access and cached —
/// repeated spread evaluations (the inner loop of greedy keyword selection)
/// touch each world once regardless of how many candidates are scored.
pub struct QuerySession<'a> {
    index: &'a InfluencerIndex,
    graph: &'a TopicGraph,
    gamma: Vec<f64>,
    /// Per-sample live influencer sets (global node ids, sorted), lazily
    /// materialized.
    live: Vec<Option<Vec<u32>>>,
    materialized: usize,
}

impl QuerySession<'_> {
    /// Live influencer set of sample `j` under this query (sorted global
    /// ids). Materializes and caches on first call — delayed
    /// materialization.
    fn live_set(&mut self, j: usize) -> &[u32] {
        if self.live[j].is_none() {
            self.materialized += 1;
            let s = &self.index.samples[j];
            // BFS from the root (local id 0) over γ-live stored edges
            let mut live_local = vec![false; s.nodes.len()];
            live_local[0] = true;
            let mut queue = vec![0u32];
            let mut head = 0usize;
            let mut members = vec![s.nodes[0]];
            while head < queue.len() {
                let v = queue[head] as usize;
                head += 1;
                let lo = s.in_offsets[v] as usize;
                let hi = s.in_offsets[v + 1] as usize;
                for &(u_local, e) in &s.in_edges[lo..hi] {
                    if live_local[u_local as usize] {
                        continue;
                    }
                    let p = self.graph.edge_prob(e, &self.gamma);
                    if s.coins.is_live(e, p) {
                        live_local[u_local as usize] = true;
                        queue.push(u_local);
                        members.push(s.nodes[u_local as usize]);
                    }
                }
            }
            members.sort_unstable();
            self.live[j] = Some(members);
        }
        self.live[j].as_deref().expect("just materialized")
    }

    /// Estimated influence spread of a seed set under this query:
    /// `n/R · #{j : S ∩ live_j ≠ ∅}`.
    ///
    /// Worlds whose stored *superset* does not even contain a seed are
    /// skipped without materialization — the delayed-materialization fast
    /// path (live ⊆ superset for every query).
    pub fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        if self.index.is_empty() {
            return 0.0;
        }
        let r = self.index.len();
        let mut hits = 0usize;
        for j in 0..r {
            let sample = &self.index.samples[j];
            if seeds.iter().all(|&s| sample.local(s).is_none()) {
                continue;
            }
            let live = self.live_set(j);
            if seeds.iter().any(|s| live.binary_search(&s.0).is_ok()) {
                hits += 1;
            }
        }
        self.index.n as f64 * hits as f64 / r as f64
    }

    /// Single-target spread (the common PIKS case).
    pub fn spread_of(&mut self, u: NodeId) -> f64 {
        self.spread(&[u])
    }

    /// How many worlds have been materialized so far (work metric for the
    /// lazy-evaluation experiments).
    pub fn materialized_worlds(&self) -> usize {
        self.materialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_cascade::estimate_spread;
    use octopus_graph::GraphBuilder;

    /// hub 0 → {1..=8} with topic-0 prob .6 / topic-1 prob .1
    fn hub_graph() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(9);
        for v in 1..=8u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6), (1, 0.1)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn index_estimates_match_monte_carlo() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 12_000, 7);
        for (gamma, _label) in [
            (TopicDistribution::pure(2, 0), "t0"),
            (TopicDistribution::pure(2, 1), "t1"),
            (TopicDistribution::uniform(2), "mix"),
        ] {
            let mut session = idx.session(&g, &gamma);
            let est = session.spread_of(NodeId(0));
            let probs = g.materialize(gamma.as_slice()).unwrap();
            let mc = estimate_spread(&g, &probs, &[NodeId(0)], 20_000, 3);
            assert!(
                (est - mc).abs() < 0.35,
                "index {est} vs mc {mc} under {:?}",
                gamma.as_slice()
            );
        }
    }

    #[test]
    fn same_query_same_answer_lazy_cache() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 2000, 9);
        let gamma = TopicDistribution::uniform(2);
        let mut session = idx.session(&g, &gamma);
        let a = session.spread_of(NodeId(0));
        let worlds_after_first = session.materialized_worlds();
        let b = session.spread_of(NodeId(0));
        assert_eq!(a, b);
        assert_eq!(
            session.materialized_worlds(),
            worlds_after_first,
            "second evaluation must reuse cached live sets"
        );
    }

    #[test]
    fn spread_monotone_in_gamma_strength() {
        // topic 0 edges are stronger; shared coins make this deterministic
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 4000, 11);
        let strong = idx
            .session(&g, &TopicDistribution::pure(2, 0))
            .spread_of(NodeId(0));
        let weak = idx
            .session(&g, &TopicDistribution::pure(2, 1))
            .spread_of(NodeId(0));
        assert!(
            strong >= weak,
            "shared coins: stronger edges can only add live worlds ({strong} vs {weak})"
        );
    }

    #[test]
    fn leaf_nodes_have_spread_about_one() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 8000, 13);
        let mut session = idx.session(&g, &TopicDistribution::pure(2, 0));
        let s = session.spread_of(NodeId(4));
        assert!((s - 1.0).abs() < 0.25, "leaf spread {s}");
    }

    #[test]
    fn seed_set_spread_at_least_max_member() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 3000, 17);
        let gamma = TopicDistribution::uniform(2);
        let mut session = idx.session(&g, &gamma);
        let s0 = session.spread_of(NodeId(0));
        let s_both = session.spread(&[NodeId(0), NodeId(3)]);
        assert!(s_both >= s0 - 1e-9);
    }

    #[test]
    fn empty_graph_safe() {
        let g = GraphBuilder::new(1).build().unwrap();
        let idx = InfluencerIndex::build(&g, 100, 1);
        let gamma = TopicDistribution::uniform(1);
        let mut session = idx.session(&g, &gamma);
        assert_eq!(session.spread(&[]), 0.0);
    }

    #[test]
    fn superset_check_skips_worlds_for_irrelevant_seeds() {
        // node 8's only influencer is the hub; worlds rooted elsewhere whose
        // superset misses node 5 must not be materialized when querying 5
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 2000, 21);
        let gamma = TopicDistribution::pure(2, 0);
        let mut leaf_session = idx.session(&g, &gamma);
        let _ = leaf_session.spread_of(NodeId(5));
        let mut hub_session = idx.session(&g, &gamma);
        let _ = hub_session.spread_of(NodeId(0));
        assert!(
            leaf_session.materialized_worlds() < hub_session.materialized_worlds(),
            "leaf query must touch fewer worlds ({} vs {})",
            leaf_session.materialized_worlds(),
            hub_session.materialized_worlds()
        );
    }

    #[test]
    fn roots_are_spread_over_nodes() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 300, 5);
        let mut distinct: Vec<u32> = (0..idx.len()).map(|j| idx.root_of(j).0).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 5,
            "roots should cover many nodes: {distinct:?}"
        );
    }

    #[test]
    fn stats_are_populated() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 500, 3);
        let st = idx.stats();
        assert_eq!(st.samples, 500);
        assert!(
            st.stored_nodes >= 500,
            "every sample stores at least its root"
        );
        assert!(st.edges_examined > 0);
    }
}
