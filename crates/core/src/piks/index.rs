//! The influencer index (§II-D): "to achieve real-time influence spread
//! computation, we introduce a novel index structure that maintains
//! 'influencers' of uniformly sampled users to avoid online sampling from
//! scratch."
//!
//! ## Construction
//!
//! `R` possible worlds are drawn. World `j` picks a uniform root `rⱼ` and
//! performs a reverse BFS collecting every edge that could *possibly* be
//! live under **any** query (coin `c_e < max_z pp^z_e`). The reached nodes
//! are `rⱼ`'s potential influencers; the traversed sub-DAG is stored in a
//! compact per-sample CSR.
//!
//! ## Querying
//!
//! Coins are derived by hashing (shared coins, see
//! [`octopus_cascade::EdgeCoins`]), so for any online `γ` the same world is
//! re-evaluated exactly: edge `e` is live iff `c_e < pp_e(γ)` — a subset of
//! the stored superset since `pp_e(γ) ≤ max_z pp^z_e`. The live influencer
//! set of sample `j` is materialized **lazily on first touch per query**
//! (the "delay materialization" technique) and cached in the query session;
//! the spread of a target `u` is then the classic RR estimate
//! `n/R · #{j : u ∈ live_j}`.

use bytes::{BufMut, BytesMut};
use octopus_cascade::{stream_seed, EdgeCoins};
use octopus_graph::wire::{self, WireError};
use octopus_graph::{EdgeId, NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rayon::prelude::*;

/// One stored world: the potential-influencer DAG of a sampled root.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Sample {
    root: NodeId,
    coins: EdgeCoins,
    /// Nodes of the sub-DAG (root first; position = local id).
    nodes: Vec<u32>,
    /// Local id lookup: `local_of[global]` or `u32::MAX`.
    /// Kept sparse via a sorted pairs list to stay memory-proportional.
    local_of: Vec<(u32, u32)>,
    /// CSR over local node ids: for each local node, its incoming stored
    /// edges as `(source local id, edge id)`.
    in_offsets: Vec<u32>,
    in_edges: Vec<(u32, EdgeId)>,
    /// [`footprint_hash`] of this world over the graph it was built on —
    /// the world's incremental-rebuild cache key.
    footprint: u64,
    /// Edges the construction BFS examined (per-world work counter; summed
    /// into [`IndexStats::edges_examined`]).
    edges_examined: usize,
}

impl Sample {
    fn local(&self, global: NodeId) -> Option<u32> {
        self.local_of
            .binary_search_by_key(&global.0, |&(g, _)| g)
            .ok()
            .map(|i| self.local_of[i].1)
    }
}

/// Work/size counters of an index build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Worlds stored.
    pub samples: usize,
    /// Total nodes across stored sub-DAGs.
    pub stored_nodes: usize,
    /// Total edges across stored sub-DAGs.
    pub stored_edges: usize,
    /// Edges examined during construction.
    pub edges_examined: usize,
}

/// The influencer index.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluencerIndex {
    n: usize,
    samples: Vec<Sample>,
    stats: IndexStats,
}

/// Tag separating the root-selection stream from the coin streams (which
/// derive from the untagged seed in [`EdgeCoins::worlds`]).
const ROOT_STREAM_TAG: u64 = 0x5EED_2007_D00D_1DE5;

/// Hash of everything one world's construction and evaluation read from the
/// graph: for every node of the world's sub-DAG (in BFS discovery order),
/// the node's global id and its full in-edge list — source id, [`EdgeId`]
/// (the coin input), and the edge's sparse topic-probability row (which
/// determines both the build-time `max_z pp^z_e` superset test and the
/// query-time `pp_e(γ)` liveness test).
///
/// This is the world's incremental-rebuild key. The reverse BFS only ever
/// expands through in-edges of nodes it has reached, so if this hash is
/// unchanged on a *new* graph, rebuilding the world there would reproduce
/// the stored sample bit for bit (given the same root and coins, which are
/// keyed separately on `(seed, n, j)`); and any graph delta the world's
/// construction or evaluation could observe — a new in-edge on a reached
/// node, a weight change, an edge-id shift — moves it.
pub fn footprint_hash(graph: &TopicGraph, nodes: &[u32]) -> u64 {
    let mut h = octopus_graph::wire::Fnv64::new();
    h.write(b"octa:piks-world");
    for &g in nodes {
        h.write_u32(g);
        for (u, e) in graph.in_edges(NodeId(g)) {
            h.write_u32(u.0);
            h.write_u32(e.0);
            for (z, p) in graph.edge_topic_probs(e) {
                h.write_u16(z.0);
                h.write_f32(p);
            }
        }
    }
    h.finish()
}

/// Build one world: pick the root from the world's index-derived stream and
/// reverse-BFS the max-probability superset DAG.
fn build_world(graph: &TopicGraph, j: u64, seed: u64, coins: EdgeCoins) -> Sample {
    let n = graph.node_count();
    // root: uniform from the world's own stream (stable under parallelism,
    // decorrelated from the world's coin stream by the tag)
    let root = NodeId(((stream_seed(seed ^ ROOT_STREAM_TAG, j) >> 11) % n as u64) as u32);
    let mut edges_examined = 0usize;
    // reverse BFS in the max-probability world; membership is tracked in
    // the sorted `local_ids` list (no shared visited array — each world
    // builds independently, possibly on its own thread)
    let mut nodes: Vec<u32> = vec![root.0];
    let mut local_edges: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new()];
    let mut local_ids: Vec<(u32, u32)> = vec![(root.0, 0)];
    let mut head = 0usize;
    while head < nodes.len() {
        let v = NodeId(nodes[head]);
        let v_local = head as u32;
        head += 1;
        for (u, e) in graph.in_edges(v) {
            edges_examined += 1;
            let pmax = graph.edge_prob_max(e) as f64;
            if !coins.is_live(e, pmax) {
                continue;
            }
            let u_local = match local_ids.binary_search_by_key(&u.0, |&(g, _)| g) {
                Ok(i) => local_ids[i].1,
                Err(pos) => {
                    let lid = nodes.len() as u32;
                    nodes.push(u.0);
                    local_edges.push(Vec::new());
                    local_ids.insert(pos, (u.0, lid));
                    lid
                }
            };
            // stored edge: u → v (u can influence v); in the
            // evaluation BFS we walk from v to u, so index by v.
            local_edges[v_local as usize].push((u_local, e));
        }
    }
    // flatten to CSR
    let mut in_offsets = Vec::with_capacity(nodes.len() + 1);
    let mut in_edges = Vec::new();
    in_offsets.push(0u32);
    for le in &local_edges {
        in_edges.extend_from_slice(le);
        in_offsets.push(in_edges.len() as u32);
    }
    let footprint = footprint_hash(graph, &nodes);
    Sample {
        root,
        coins,
        nodes,
        local_of: local_ids,
        in_offsets,
        in_edges,
        footprint,
        edges_examined,
    }
}

/// Per-world reuse slots decoded from a persisted index, produced by
/// [`InfluencerIndex::load_reusable`] and consumed by
/// [`InfluencerIndex::build_with_reuse`].
///
/// Slot `j` is `Some` iff the stored world `j` decoded cleanly **and** its
/// stored [`footprint_hash`] matches the hash recomputed over the live
/// graph — i.e. rebuilding that world now would reproduce the stored bytes.
/// Worlds whose BFS footprint intersects a graph delta come back `None`
/// and are rebuilt; untouched worlds are reloaded as-is.
#[derive(Debug, Default)]
pub struct PiksReuse {
    slots: Vec<Option<Sample>>,
}

impl PiksReuse {
    /// Number of stored worlds (reusable or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no worlds were stored at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of worlds that survived footprint validation.
    pub fn available(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of validated worlds among the first `r` slots — the count
    /// that actually matters to a build of `r` worlds, since reuse is
    /// positional (world `j` is keyed by `(seed, j)`). A donor persisted
    /// under a larger index size may have plenty of valid late worlds that
    /// an `r`-world build can never use; compare donors by this, not by
    /// [`PiksReuse::available`].
    pub fn available_in(&self, r: usize) -> usize {
        self.slots.iter().take(r).filter(|s| s.is_some()).count()
    }

    /// Per-world reusability pattern (diagnostics / invalidation tests).
    pub fn reusable_worlds(&self) -> Vec<bool> {
        self.slots.iter().map(|s| s.is_some()).collect()
    }

    /// Positional union with another donor: fill every empty slot from
    /// `other`, returning how many slots were newly filled.
    ///
    /// Sound because reuse is positional and both donors must have matched
    /// the same section key — world `j` is the same `(seed, j)` derivation
    /// in every donor (and [`InfluencerIndex::build_with_reuse`] re-checks
    /// the coin seed before trusting any slot). Two deltas that invalidated
    /// disjoint world sets in different epoch files thus reassemble full
    /// coverage here instead of rebuilding either set.
    pub fn merge_from(&mut self, other: PiksReuse) -> usize {
        if other.slots.len() > self.slots.len() {
            self.slots.resize_with(other.slots.len(), || None);
        }
        let mut filled = 0;
        for (slot, donor) in self.slots.iter_mut().zip(other.slots) {
            if slot.is_none() && donor.is_some() {
                *slot = donor;
                filled += 1;
            }
        }
        filled
    }
}

impl InfluencerIndex {
    /// Build an index of `r` worlds over `graph`.
    ///
    /// Worlds build in parallel, one per work unit on the claiming
    /// executor — per-world costs are wildly skewed (a hub-rooted reverse
    /// BFS can touch most of the graph while a leaf-rooted one touches a
    /// handful of nodes), so dynamic claiming is what keeps every core
    /// busy. World `j`'s coins and root both derive from `(seed, j)`, so
    /// the index is bit-identical for any thread count or schedule.
    pub fn build(graph: &TopicGraph, r: usize, seed: u64) -> Self {
        Self::build_with_reuse(graph, r, seed, &PiksReuse::default()).0
    }

    /// Build an index of `r` worlds, reloading every world whose slot in
    /// `reuse` is populated and rebuilding only the rest. Returns the index
    /// and the number of worlds actually reused.
    ///
    /// World `j`'s randomness derives from `(seed, j)` alone — never from
    /// `r` — so a reuse set persisted under a different index size
    /// contributes its prefix. A reused world is bit-identical to what a
    /// fresh world build would produce (that is what its footprint key
    /// certifies), so the assembled index equals a from-scratch
    /// [`InfluencerIndex::build`] no matter which subset was reused —
    /// pinned by the `delta_invalidation` integration tests.
    pub fn build_with_reuse(
        graph: &TopicGraph,
        r: usize,
        seed: u64,
        reuse: &PiksReuse,
    ) -> (Self, usize) {
        let n = graph.node_count();
        let mut stats = IndexStats {
            samples: r,
            ..IndexStats::default()
        };
        if n == 0 {
            return (
                InfluencerIndex {
                    n,
                    samples: Vec::new(),
                    stats,
                },
                0,
            );
        }
        let worlds = EdgeCoins::worlds(seed, r);
        let reusable = |j: usize| -> Option<&Sample> {
            // a slot is only trusted when its coins agree with this build's
            // derivation (the footprint key does not cover the coin seed)
            reuse
                .slots
                .get(j)?
                .as_ref()
                .filter(|s| s.coins.seed() == worlds[j].seed())
        };
        let reused = (0..r).filter(|&j| reusable(j).is_some()).count();
        // delta rebuilds are the skew worst case: most units are cheap
        // clones of reused worlds with expensive fresh BFS builds sprinkled
        // between them — the executor's dynamic claiming load-balances the
        // mix, no chunking heuristic needed here
        let samples: Vec<Sample> = (0..r)
            .into_par_iter()
            .map(|j| match reusable(j) {
                Some(sample) => sample.clone(),
                None => build_world(graph, j as u64, seed, worlds[j]),
            })
            .collect();
        for sample in &samples {
            stats.stored_nodes += sample.nodes.len();
            stats.stored_edges += sample.in_edges.len();
            stats.edges_examined += sample.edges_examined;
        }
        (InfluencerIndex { n, samples, stats }, reused)
    }

    /// The cache key of the index's *derivation inputs*: node count (the
    /// root-selection modulus) and the world seed. Graph content is
    /// deliberately absent — it is covered per world by [`footprint_hash`],
    /// which is what makes world-granular delta reuse possible. The index
    /// size is also absent: worlds are keyed by `(seed, j)`, so a resize
    /// reuses the shared prefix.
    pub fn section_key(node_count: usize, seed: u64) -> u64 {
        let mut h = octopus_graph::wire::Fnv64::new();
        h.write(b"octa:piks-index");
        h.write_u64(node_count as u64);
        h.write_u64(seed);
        h.finish()
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the index holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The sampled root of world `j` (diagnostics / tests).
    pub fn root_of(&self, j: usize) -> NodeId {
        self.samples[j].root
    }

    /// Global node ids of world `j`'s stored sub-DAG, in BFS discovery
    /// order (diagnostics / invalidation tests — this is the node set whose
    /// in-edges form the world's [`footprint_hash`]).
    pub fn world_nodes(&self, j: usize) -> &[u32] {
        &self.samples[j].nodes
    }

    /// Serialize the index into `buf` (the artifact-codec path).
    ///
    /// Layout (the OCTA v4 `piks-worlds` section payload; normative spec in
    /// `ARCHITECTURE.md`). All fields little-endian; every world record
    /// starts 8-aligned and has a length that is a multiple of 8, so a
    /// memory-mapped file can serve queries straight off the bytes:
    ///
    /// ```text
    /// n u64 | world count R u64
    /// (R+1) × u64 world offsets (section-relative; world j occupies
    ///                            [off[j], off[j+1]); off[R] = section len)
    /// R × world:
    ///   footprint u64 | coin seed u64 | edges_examined u64
    ///   node count W u64 | edge count E u64
    ///   W × global node u32 (BFS order, root first)        [pad to 8]
    ///   W × (global u32, local u32) sorted by global
    ///   (W+1) × u32 CSR in-offsets                         [pad to 8]
    ///   E × (source local id u32, edge id u32)
    /// ```
    ///
    /// Each world carries its own [`footprint_hash`] so a later open can
    /// reuse it independently of every other world. Unlike v3, the sparse
    /// `local_of` lookup is stored rather than rebuilt on decode — the
    /// mapped read path binary-searches it in place, and the owned decode
    /// path validates it against `nodes` instead of sorting.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        fn world_len(s: &Sample) -> u64 {
            let w = s.nodes.len() as u64;
            let e = s.in_edges.len() as u64;
            let local_off = wire::align8((40 + 4 * w) as usize) as u64;
            let edges_off = wire::align8((local_off + 8 * w + 4 * (w + 1)) as usize) as u64;
            edges_off + 8 * e
        }
        buf.put_u64_le(self.n as u64);
        buf.put_u64_le(self.samples.len() as u64);
        let mut off = 16 + 8 * (self.samples.len() as u64 + 1);
        for s in &self.samples {
            buf.put_u64_le(off);
            off += world_len(s);
        }
        buf.put_u64_le(off);
        for s in &self.samples {
            let w = s.nodes.len();
            buf.put_u64_le(s.footprint);
            buf.put_u64_le(s.coins.seed());
            buf.put_u64_le(s.edges_examined as u64);
            buf.put_u64_le(w as u64);
            buf.put_u64_le(s.in_edges.len() as u64);
            for &g in &s.nodes {
                buf.put_u32_le(g);
            }
            buf.put_bytes(0, wire::pad8(4 * w));
            for &(g, l) in &s.local_of {
                buf.put_u32_le(g);
                buf.put_u32_le(l);
            }
            for &o in &s.in_offsets {
                buf.put_u32_le(o);
            }
            buf.put_bytes(0, wire::pad8(4 * (w + 1)));
            for &(src, e) in &s.in_edges {
                buf.put_u32_le(src);
                buf.put_u32_le(e.0);
            }
        }
    }

    /// Decode worlds serialized by [`InfluencerIndex::encode_into`] into
    /// per-world reuse slots validated against the **live** graph.
    ///
    /// Structural framing damage (truncation, malformed CSR, an
    /// inconsistent stored local lookup) is an error — the caller treats
    /// the whole section as a miss. A world that decodes cleanly is
    /// screened semantically instead: its stored node and edge ids must
    /// fall inside `graph`, and its stored [`footprint_hash`] must equal
    /// the hash recomputed over `graph`'s current in-edge content.
    /// Screening failures are not errors; the world's slot is simply `None`
    /// (it will be rebuilt), which is exactly the delta-reuse contract —
    /// a payload keyed to the wrong inputs, or touched by a graph delta,
    /// can never be served, only ignored.
    pub fn load_reusable(raw: &[u8], graph: &TopicGraph) -> Result<PiksReuse, WireError> {
        let node_count = graph.node_count();
        let edge_count = graph.edge_count();
        let view = PiksWorldsView::parse(raw)?;
        let derivation_ok = view.n() == node_count;
        let mut slots = Vec::with_capacity(view.len().min(1 << 20));
        for j in 0..view.len() {
            let wv = view.world(j);
            let w = wv.node_count();
            let world_edges = wv.edge_count();
            let mut in_offsets = Vec::with_capacity(w + 1);
            for i in 0..=w {
                in_offsets.push(wv.in_offset(i));
            }
            if in_offsets[0] != 0
                || in_offsets.windows(2).any(|p| p[0] > p[1])
                || in_offsets[w] as usize != world_edges
            {
                return Err(WireError(format!("piks world {j} CSR offsets malformed")));
            }
            let nodes: Vec<u32> = (0..w).map(|i| wv.node(i)).collect();
            let mut in_edges = Vec::with_capacity(world_edges);
            let mut ids_ok = true;
            for k in 0..world_edges {
                let (src, e) = wv.in_edge(k);
                if src as usize >= w {
                    return Err(WireError(format!(
                        "piks world {j} edge source {src} out of bounds"
                    )));
                }
                ids_ok &= e.index() < edge_count;
                in_edges.push((src, e));
            }
            // the stored sparse lookup must be the sorted inverse of `nodes`
            let mut local_of = Vec::with_capacity(w);
            let mut prev: Option<u32> = None;
            for i in 0..w {
                let (g, l) = wv.local_pair(i);
                if (l as usize) >= w || nodes[l as usize] != g || prev.is_some_and(|p| p >= g) {
                    return Err(WireError(format!("piks world {j} local lookup malformed")));
                }
                prev = Some(g);
                local_of.push((g, l));
            }
            ids_ok &= nodes.iter().all(|&g| (g as usize) < node_count);
            if !(derivation_ok && ids_ok) || footprint_hash(graph, &nodes) != wv.footprint() {
                slots.push(None);
                continue;
            }
            slots.push(Some(Sample {
                root: NodeId(nodes[0]),
                coins: EdgeCoins::new(wv.coin_seed()),
                nodes,
                local_of,
                in_offsets,
                in_edges,
                footprint: wv.footprint(),
                edges_examined: wv.edges_examined(),
            }));
        }
        Ok(PiksReuse { slots })
    }

    /// Start a query session for `gamma`. Live sets materialize lazily.
    pub fn session<'a>(
        &'a self,
        graph: &'a TopicGraph,
        gamma: &TopicDistribution,
    ) -> QuerySession<'a> {
        QuerySession {
            index: self,
            graph,
            gamma: gamma.as_slice().to_vec(),
            live: vec![None; self.samples.len()],
            materialized: 0,
        }
    }
}

/// A lazy per-query view of the index.
///
/// Each world's live influencer set is computed on first access and cached —
/// repeated spread evaluations (the inner loop of greedy keyword selection)
/// touch each world once regardless of how many candidates are scored.
pub struct QuerySession<'a> {
    index: &'a InfluencerIndex,
    graph: &'a TopicGraph,
    gamma: Vec<f64>,
    /// Per-sample live influencer sets (global node ids, sorted), lazily
    /// materialized.
    live: Vec<Option<Vec<u32>>>,
    materialized: usize,
}

impl QuerySession<'_> {
    /// Live influencer set of sample `j` under this query (sorted global
    /// ids). Materializes and caches on first call — delayed
    /// materialization.
    fn live_set(&mut self, j: usize) -> &[u32] {
        if self.live[j].is_none() {
            self.materialized += 1;
            let s = &self.index.samples[j];
            // BFS from the root (local id 0) over γ-live stored edges
            let mut live_local = vec![false; s.nodes.len()];
            live_local[0] = true;
            let mut queue = vec![0u32];
            let mut head = 0usize;
            let mut members = vec![s.nodes[0]];
            while head < queue.len() {
                let v = queue[head] as usize;
                head += 1;
                let lo = s.in_offsets[v] as usize;
                let hi = s.in_offsets[v + 1] as usize;
                for &(u_local, e) in &s.in_edges[lo..hi] {
                    if live_local[u_local as usize] {
                        continue;
                    }
                    let p = self.graph.edge_prob(e, &self.gamma);
                    if s.coins.is_live(e, p) {
                        live_local[u_local as usize] = true;
                        queue.push(u_local);
                        members.push(s.nodes[u_local as usize]);
                    }
                }
            }
            members.sort_unstable();
            self.live[j] = Some(members);
        }
        self.live[j].as_deref().expect("just materialized")
    }

    /// Estimated influence spread of a seed set under this query:
    /// `n/R · #{j : S ∩ live_j ≠ ∅}`.
    ///
    /// Worlds whose stored *superset* does not even contain a seed are
    /// skipped without materialization — the delayed-materialization fast
    /// path (live ⊆ superset for every query).
    pub fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        if self.index.is_empty() {
            return 0.0;
        }
        let r = self.index.len();
        let mut hits = 0usize;
        for j in 0..r {
            let sample = &self.index.samples[j];
            if seeds.iter().all(|&s| sample.local(s).is_none()) {
                continue;
            }
            let live = self.live_set(j);
            if seeds.iter().any(|s| live.binary_search(&s.0).is_ok()) {
                hits += 1;
            }
        }
        self.index.n as f64 * hits as f64 / r as f64
    }

    /// Single-target spread (the common PIKS case).
    pub fn spread_of(&mut self, u: NodeId) -> f64 {
        self.spread(&[u])
    }

    /// How many worlds have been materialized so far (work metric for the
    /// lazy-evaluation experiments).
    pub fn materialized_worlds(&self) -> usize {
        self.materialized
    }
}

fn u64_at(raw: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(raw[off..off + 8].try_into().expect("framed by parse"))
}

fn u32_at(raw: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(raw[off..off + 4].try_into().expect("framed by parse"))
}

/// Zero-copy view over a v4 `piks-worlds` section payload.
///
/// [`PiksWorldsView::parse`] validates the *framing* in `O(R)` — the world
/// offset table (8-aligned, strictly monotone, exactly spanning the
/// section) and every world's header against its slot length — without
/// touching node or edge payload bytes, which is what keeps a mapped open
/// proportional to pages touched. Payload integrity is the container
/// checksum's job (verified lazily by the artifact view layer); the graph
/// fingerprint baked into the containing file is what entitles the view to
/// skip the per-world footprint screening that [`InfluencerIndex::load_reusable`]
/// performs for cross-graph reuse.
#[derive(Debug, Clone, Copy)]
pub struct PiksWorldsView<'a> {
    raw: &'a [u8],
    n: usize,
    r: usize,
    stored_nodes: usize,
    stored_edges: usize,
}

impl<'a> PiksWorldsView<'a> {
    /// Validate the section framing and return a view. Purely structural:
    /// the stored node count `n` is exposed via [`PiksWorldsView::n`] for
    /// the caller to check against its graph.
    pub fn parse(raw: &'a [u8]) -> Result<Self, WireError> {
        if raw.len() < 16 {
            return Err(WireError("piks section header truncated".into()));
        }
        let n = u64_at(raw, 0) as usize;
        let r = u64_at(raw, 8);
        let table_end = (r + 1)
            .checked_mul(8)
            .and_then(|t| t.checked_add(16))
            .filter(|&t| t <= raw.len() as u64)
            .ok_or_else(|| WireError(format!("piks world table for {r} worlds truncated")))?
            as usize;
        let r = r as usize;
        let mut stored_nodes = 0usize;
        let mut stored_edges = 0usize;
        let mut prev = table_end as u64;
        if u64_at(raw, 16) != prev {
            return Err(WireError(format!(
                "piks world 0 offset {} != table end {prev}",
                u64_at(raw, 16)
            )));
        }
        for j in 0..r {
            let lo = u64_at(raw, 16 + 8 * j);
            let hi = u64_at(raw, 16 + 8 * (j + 1));
            if lo != prev || !lo.is_multiple_of(8) || hi <= lo || hi > raw.len() as u64 {
                return Err(WireError(format!(
                    "piks world {j} offsets [{lo}, {hi}) malformed"
                )));
            }
            prev = hi;
            let wlen = hi - lo;
            if wlen < 40 {
                return Err(WireError(format!("piks world {j} header truncated")));
            }
            let lo = lo as usize;
            let w = u64_at(raw, lo + 24);
            let e = u64_at(raw, lo + 32);
            if w == 0 {
                return Err(WireError(format!("piks world {j} has no root")));
            }
            if w > u32::MAX as u64 || e > u32::MAX as u64 {
                return Err(WireError(format!("piks world {j} dimensions overflow u32")));
            }
            let local_off = wire::align8(40 + 4 * w as usize) as u64;
            let edges_off = wire::align8((local_off + 8 * w + 4 * (w + 1)) as usize) as u64;
            if edges_off + 8 * e != wlen {
                return Err(WireError(format!(
                    "piks world {j} length {wlen} != framed {} for W={w} E={e}",
                    edges_off + 8 * e
                )));
            }
            stored_nodes += w as usize;
            stored_edges += e as usize;
        }
        if prev != raw.len() as u64 {
            return Err(WireError(format!(
                "piks section length {} != framed {prev}",
                raw.len()
            )));
        }
        Ok(PiksWorldsView {
            raw,
            n,
            r,
            stored_nodes,
            stored_edges,
        })
    }

    /// Stored node count the index was built over (the RR-estimate scale
    /// factor) — callers must check it against their graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored worlds.
    pub fn len(&self) -> usize {
        self.r
    }

    /// Whether the view holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.r == 0
    }

    /// Total nodes across stored sub-DAGs (mirror of
    /// [`IndexStats::stored_nodes`]).
    pub fn stored_nodes(&self) -> usize {
        self.stored_nodes
    }

    /// Total edges across stored sub-DAGs (mirror of
    /// [`IndexStats::stored_edges`]).
    pub fn stored_edges(&self) -> usize {
        self.stored_edges
    }

    /// World `j`'s record.
    pub fn world(&self, j: usize) -> PiksWorldView<'a> {
        let lo = u64_at(self.raw, 16 + 8 * j) as usize;
        let hi = u64_at(self.raw, 16 + 8 * (j + 1)) as usize;
        PiksWorldView {
            raw: &self.raw[lo..hi],
        }
    }

    /// Start a query session over the mapped worlds. Mirrors
    /// [`InfluencerIndex::session`] bit for bit — same lazy
    /// materialization, same estimates.
    pub fn session(
        &self,
        graph: &'a TopicGraph,
        gamma: &TopicDistribution,
    ) -> MappedQuerySession<'a> {
        MappedQuerySession {
            view: *self,
            graph,
            gamma: gamma.as_slice().to_vec(),
            live: vec![None; self.r],
            materialized: 0,
        }
    }
}

/// One world's record inside a [`PiksWorldsView`].
#[derive(Debug, Clone, Copy)]
pub struct PiksWorldView<'a> {
    raw: &'a [u8],
}

impl PiksWorldView<'_> {
    /// The stored [`footprint_hash`] of this world.
    pub fn footprint(&self) -> u64 {
        u64_at(self.raw, 0)
    }

    /// The world's coin seed ([`EdgeCoins::seed`]).
    pub fn coin_seed(&self) -> u64 {
        u64_at(self.raw, 8)
    }

    /// Edges the construction BFS examined.
    pub fn edges_examined(&self) -> usize {
        u64_at(self.raw, 16) as usize
    }

    /// Stored sub-DAG node count `W`.
    pub fn node_count(&self) -> usize {
        u64_at(self.raw, 24) as usize
    }

    /// Stored sub-DAG edge count `E`.
    pub fn edge_count(&self) -> usize {
        u64_at(self.raw, 32) as usize
    }

    fn local_off(&self) -> usize {
        wire::align8(40 + 4 * self.node_count())
    }

    fn edges_off(&self) -> usize {
        let w = self.node_count();
        wire::align8(self.local_off() + 8 * w + 4 * (w + 1))
    }

    /// Global node id of local node `local` (the BFS discovery order; local
    /// 0 is the root).
    pub fn node(&self, local: usize) -> u32 {
        u32_at(self.raw, 40 + 4 * local)
    }

    /// Pair `i` of the stored `(global, local)` lookup, sorted by global.
    pub fn local_pair(&self, i: usize) -> (u32, u32) {
        let base = self.local_off() + 8 * i;
        (u32_at(self.raw, base), u32_at(self.raw, base + 4))
    }

    /// Local id of `global`, if it is in this world's stored superset —
    /// in-place binary search over the stored lookup, the mirror of the
    /// owned `Sample::local`.
    pub fn local(&self, global: NodeId) -> Option<u32> {
        let base = self.local_off();
        let (mut lo, mut hi) = (0usize, self.node_count());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if u32_at(self.raw, base + 8 * mid) < global.0 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.node_count() && u32_at(self.raw, base + 8 * lo) == global.0 {
            Some(u32_at(self.raw, base + 8 * lo + 4))
        } else {
            None
        }
    }

    /// CSR in-offset `i` (of `W+1`).
    pub fn in_offset(&self, i: usize) -> u32 {
        let w = self.node_count();
        u32_at(self.raw, self.local_off() + 8 * w + 4 * i)
    }

    /// Stored edge `k`: `(source local id, edge id)`.
    pub fn in_edge(&self, k: usize) -> (u32, EdgeId) {
        let base = self.edges_off() + 8 * k;
        (u32_at(self.raw, base), EdgeId(u32_at(self.raw, base + 4)))
    }
}

/// The mapped twin of [`QuerySession`]: same lazy per-world
/// materialization, same BFS, same RR estimate — evaluated directly off
/// the section bytes with coins replayed from each world's stored seed.
/// Pinned bit-identical to the owned session by the `mapped_mode` tests.
pub struct MappedQuerySession<'a> {
    view: PiksWorldsView<'a>,
    graph: &'a TopicGraph,
    gamma: Vec<f64>,
    live: Vec<Option<Vec<u32>>>,
    materialized: usize,
}

impl MappedQuerySession<'_> {
    fn live_set(&mut self, j: usize) -> &[u32] {
        if self.live[j].is_none() {
            self.materialized += 1;
            let s = self.view.world(j);
            let coins = EdgeCoins::new(s.coin_seed());
            // BFS from the root (local id 0) over γ-live stored edges —
            // the exact loop of `QuerySession::live_set`
            let mut live_local = vec![false; s.node_count()];
            live_local[0] = true;
            let mut queue = vec![0u32];
            let mut head = 0usize;
            let mut members = vec![s.node(0)];
            while head < queue.len() {
                let v = queue[head] as usize;
                head += 1;
                let lo = s.in_offset(v) as usize;
                let hi = s.in_offset(v + 1) as usize;
                for k in lo..hi {
                    let (u_local, e) = s.in_edge(k);
                    if live_local[u_local as usize] {
                        continue;
                    }
                    let p = self.graph.edge_prob(e, &self.gamma);
                    if coins.is_live(e, p) {
                        live_local[u_local as usize] = true;
                        queue.push(u_local);
                        members.push(s.node(u_local as usize));
                    }
                }
            }
            members.sort_unstable();
            self.live[j] = Some(members);
        }
        self.live[j].as_deref().expect("just materialized")
    }

    /// Estimated influence spread of a seed set — see
    /// [`QuerySession::spread`].
    pub fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        if self.view.is_empty() {
            return 0.0;
        }
        let r = self.view.len();
        let mut hits = 0usize;
        for j in 0..r {
            let sample = self.view.world(j);
            if seeds.iter().all(|&s| sample.local(s).is_none()) {
                continue;
            }
            let live = self.live_set(j);
            if seeds.iter().any(|s| live.binary_search(&s.0).is_ok()) {
                hits += 1;
            }
        }
        self.view.n as f64 * hits as f64 / r as f64
    }

    /// Single-target spread (the common PIKS case).
    pub fn spread_of(&mut self, u: NodeId) -> f64 {
        self.spread(&[u])
    }

    /// How many worlds have been materialized so far.
    pub fn materialized_worlds(&self) -> usize {
        self.materialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_cascade::estimate_spread;
    use octopus_graph::GraphBuilder;

    /// hub 0 → {1..=8} with topic-0 prob .6 / topic-1 prob .1
    fn hub_graph() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(9);
        for v in 1..=8u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6), (1, 0.1)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn index_estimates_match_monte_carlo() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 12_000, 7);
        for (gamma, _label) in [
            (TopicDistribution::pure(2, 0), "t0"),
            (TopicDistribution::pure(2, 1), "t1"),
            (TopicDistribution::uniform(2), "mix"),
        ] {
            let mut session = idx.session(&g, &gamma);
            let est = session.spread_of(NodeId(0));
            let probs = g.materialize(gamma.as_slice()).unwrap();
            let mc = estimate_spread(&g, &probs, &[NodeId(0)], 20_000, 3);
            assert!(
                (est - mc).abs() < 0.35,
                "index {est} vs mc {mc} under {:?}",
                gamma.as_slice()
            );
        }
    }

    #[test]
    fn same_query_same_answer_lazy_cache() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 2000, 9);
        let gamma = TopicDistribution::uniform(2);
        let mut session = idx.session(&g, &gamma);
        let a = session.spread_of(NodeId(0));
        let worlds_after_first = session.materialized_worlds();
        let b = session.spread_of(NodeId(0));
        assert_eq!(a, b);
        assert_eq!(
            session.materialized_worlds(),
            worlds_after_first,
            "second evaluation must reuse cached live sets"
        );
    }

    #[test]
    fn spread_monotone_in_gamma_strength() {
        // topic 0 edges are stronger; shared coins make this deterministic
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 4000, 11);
        let strong = idx
            .session(&g, &TopicDistribution::pure(2, 0))
            .spread_of(NodeId(0));
        let weak = idx
            .session(&g, &TopicDistribution::pure(2, 1))
            .spread_of(NodeId(0));
        assert!(
            strong >= weak,
            "shared coins: stronger edges can only add live worlds ({strong} vs {weak})"
        );
    }

    #[test]
    fn leaf_nodes_have_spread_about_one() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 8000, 13);
        let mut session = idx.session(&g, &TopicDistribution::pure(2, 0));
        let s = session.spread_of(NodeId(4));
        assert!((s - 1.0).abs() < 0.25, "leaf spread {s}");
    }

    #[test]
    fn seed_set_spread_at_least_max_member() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 3000, 17);
        let gamma = TopicDistribution::uniform(2);
        let mut session = idx.session(&g, &gamma);
        let s0 = session.spread_of(NodeId(0));
        let s_both = session.spread(&[NodeId(0), NodeId(3)]);
        assert!(s_both >= s0 - 1e-9);
    }

    #[test]
    fn empty_graph_safe() {
        let g = GraphBuilder::new(1).build().unwrap();
        let idx = InfluencerIndex::build(&g, 100, 1);
        let gamma = TopicDistribution::uniform(1);
        let mut session = idx.session(&g, &gamma);
        assert_eq!(session.spread(&[]), 0.0);
    }

    #[test]
    fn superset_check_skips_worlds_for_irrelevant_seeds() {
        // node 8's only influencer is the hub; worlds rooted elsewhere whose
        // superset misses node 5 must not be materialized when querying 5
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 2000, 21);
        let gamma = TopicDistribution::pure(2, 0);
        let mut leaf_session = idx.session(&g, &gamma);
        let _ = leaf_session.spread_of(NodeId(5));
        let mut hub_session = idx.session(&g, &gamma);
        let _ = hub_session.spread_of(NodeId(0));
        assert!(
            leaf_session.materialized_worlds() < hub_session.materialized_worlds(),
            "leaf query must touch fewer worlds ({} vs {})",
            leaf_session.materialized_worlds(),
            hub_session.materialized_worlds()
        );
    }

    #[test]
    fn roots_are_spread_over_nodes() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 300, 5);
        let mut distinct: Vec<u32> = (0..idx.len()).map(|j| idx.root_of(j).0).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 5,
            "roots should cover many nodes: {distinct:?}"
        );
    }

    #[test]
    fn round_trip_reuses_every_world() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 64, 23);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();
        let reuse = InfluencerIndex::load_reusable(&frozen[..], &g).unwrap();
        assert_eq!(reuse.available(), 64, "unchanged graph reuses all worlds");
        let (back, reused) = InfluencerIndex::build_with_reuse(&g, 64, 23, &reuse);
        assert_eq!(reused, 64);
        assert_eq!(back, idx, "reassembled index is bit-identical");
        // a wrong master seed distrusts every slot (coins disagree)
        let (fresh, reused) = InfluencerIndex::build_with_reuse(&g, 64, 99, &reuse);
        assert_eq!(reused, 0);
        assert_eq!(fresh, InfluencerIndex::build(&g, 64, 99));
    }

    #[test]
    fn weight_nudge_invalidates_exactly_touching_worlds() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 200, 31);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();
        // nudge the weight of hub→4; the footprint of a world covers the
        // in-edges of its reached nodes, so exactly the worlds that
        // reached node 4 must drop out
        let victim = g.find_edge(NodeId(0), NodeId(4)).unwrap();
        let g2 = octopus_graph::delta::nudge_weights(&g, &[victim], 0.07).unwrap();
        let reuse = InfluencerIndex::load_reusable(&frozen[..], &g2).unwrap();
        let expected: Vec<bool> = (0..idx.len())
            .map(|j| !idx.world_nodes(j).contains(&4))
            .collect();
        assert_eq!(reuse.reusable_worlds(), expected);
        assert!(reuse.available() > 0, "some worlds must survive");
        assert!(reuse.available() < idx.len(), "some worlds must drop");
        // and the partial rebuild equals a from-scratch build on g2
        let (rebuilt, reused) = InfluencerIndex::build_with_reuse(&g2, 200, 31, &reuse);
        assert_eq!(reused, reuse.available());
        assert_eq!(rebuilt, InfluencerIndex::build(&g2, 200, 31));
    }

    #[test]
    fn resize_reuses_the_shared_prefix() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 100, 37);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();
        let reuse = InfluencerIndex::load_reusable(&frozen[..], &g).unwrap();
        // the positional count: only slots below r can serve an r-world build
        assert_eq!(reuse.available(), 100);
        assert_eq!(reuse.available_in(40), 40);
        assert_eq!(reuse.available_in(150), 100);
        // shrink: reuse the first 40 worlds
        let (small, reused) = InfluencerIndex::build_with_reuse(&g, 40, 37, &reuse);
        assert_eq!(reused, 40);
        assert_eq!(small, InfluencerIndex::build(&g, 40, 37));
        // grow: reuse all 100, build 50 more
        let (big, reused) = InfluencerIndex::build_with_reuse(&g, 150, 37, &reuse);
        assert_eq!(reused, 100);
        assert_eq!(big, InfluencerIndex::build(&g, 150, 37));
    }

    #[test]
    fn mapped_view_answers_bit_identically() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 500, 23);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let raw = buf.freeze();
        let view = PiksWorldsView::parse(&raw[..]).unwrap();
        assert_eq!(view.len(), idx.len());
        assert_eq!(view.n(), 9);
        assert_eq!(view.stored_nodes(), idx.stats().stored_nodes);
        assert_eq!(view.stored_edges(), idx.stats().stored_edges);
        for gamma in [
            TopicDistribution::pure(2, 0),
            TopicDistribution::pure(2, 1),
            TopicDistribution::uniform(2),
        ] {
            let mut owned = idx.session(&g, &gamma);
            let mut mapped = view.session(&g, &gamma);
            for u in 0..9u32 {
                assert_eq!(
                    owned.spread_of(NodeId(u)).to_bits(),
                    mapped.spread_of(NodeId(u)).to_bits(),
                    "node {u} under {:?}",
                    gamma.as_slice()
                );
            }
            assert_eq!(owned.materialized_worlds(), mapped.materialized_worlds());
            let seeds = [NodeId(0), NodeId(3)];
            assert_eq!(
                owned.spread(&seeds).to_bits(),
                mapped.spread(&seeds).to_bits()
            );
        }
    }

    #[test]
    fn view_rejects_framing_damage() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 16, 29);
        let mut buf = BytesMut::new();
        idx.encode_into(&mut buf);
        let raw = buf.freeze();
        // truncation anywhere in the framing fails closed
        for cut in [0, 8, 15, 16, 24, raw.len() - 8, raw.len() - 1] {
            assert!(
                PiksWorldsView::parse(&raw[..cut]).is_err(),
                "cut at {cut} must not parse"
            );
        }
        // a nudged world offset breaks the contiguity invariant
        let mut bent = raw.to_vec();
        let off0 = u64::from_le_bytes(bent[16..24].try_into().unwrap());
        bent[16..24].copy_from_slice(&(off0 + 8).to_le_bytes());
        assert!(PiksWorldsView::parse(&bent).is_err());
        // ...and load_reusable surfaces the same structural error
        assert!(InfluencerIndex::load_reusable(&bent, &g).is_err());
        // a corrupted local-lookup entry is structural damage on decode
        let view = PiksWorldsView::parse(&raw[..]).unwrap();
        let table_end = 16 + 8 * (view.len() + 1);
        let pairs_at = table_end + wire::align8(40 + 4 * view.world(0).node_count());
        let mut forged = raw.to_vec();
        forged[pairs_at + 4] ^= 0x01; // flip the local id of the first pair
        assert!(PiksWorldsView::parse(&forged).is_ok(), "framing untouched");
        assert!(InfluencerIndex::load_reusable(&forged, &g).is_err());
    }

    #[test]
    fn stats_are_populated() {
        let g = hub_graph();
        let idx = InfluencerIndex::build(&g, 500, 3);
        let st = idx.stats();
        assert_eq!(st.samples, 500);
        assert!(
            st.stored_nodes >= 500,
            "every sample stores at least its root"
        );
        assert!(st.edges_examined > 0);
    }
}
