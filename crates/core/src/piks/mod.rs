//! Personalized influential keywords suggestion (§II-D).
//!
//! "Given a target user, suggest a `k`-sized keyword set that maximizes the
//! target user's influence." Every candidate set `W` induces a topic
//! distribution `γ(W)` (Bayes), so its value is `σ_{γ(W)}({u})` — and the
//! optimization is NP-hard (and NP-hard to approximate within any constant:
//! the keyword→distribution map destroys submodularity), hence the
//! sampling-based framework:
//!
//! * spreads are estimated on the [`index::InfluencerIndex`] (shared-coin
//!   worlds, lazy materialization — no online sampling from scratch);
//! * [`GreedyPiks`] grows the set one keyword at a time with upper-bound
//!   pruning on candidate scans;
//! * [`ExhaustivePiks`] enumerates all `k`-subsets — the quality oracle the
//!   experiments compare against;
//! * suggested sets must be *topic-consistent*
//!   ([`octopus_topics::consistency`]), mirroring "our model can also make
//!   sure that the suggested keywords are consistent in topics".

pub mod index;

pub use index::{
    footprint_hash, IndexStats, InfluencerIndex, MappedQuerySession, PiksReuse, PiksWorldView,
    PiksWorldsView, QuerySession,
};

use crate::error::CoreError;
use crate::Result;
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::{consistency, KeywordId, TopicDistribution, TopicModel};

/// A handle to either representation of the possible-worlds index: the
/// owned [`InfluencerIndex`] or a zero-copy [`PiksWorldsView`] over a
/// mapped artifact. Both spawn query sessions with **bit-identical**
/// spread estimates (same coin streams, same BFS order, same summation
/// order), so the suggestion engines are representation-agnostic.
#[derive(Clone, Copy)]
pub enum PiksHandle<'a> {
    /// The owned index (fresh build or decoded cache hit).
    Owned(&'a InfluencerIndex),
    /// A zero-copy view over a mapped OCTA v4 `piks-worlds` section.
    Mapped(PiksWorldsView<'a>),
}

impl<'a> From<&'a InfluencerIndex> for PiksHandle<'a> {
    fn from(index: &'a InfluencerIndex) -> Self {
        PiksHandle::Owned(index)
    }
}

impl<'a> From<PiksWorldsView<'a>> for PiksHandle<'a> {
    fn from(view: PiksWorldsView<'a>) -> Self {
        PiksHandle::Mapped(view)
    }
}

impl<'a> PiksHandle<'a> {
    /// Open a lazily-materializing query session under `gamma`.
    fn session(&self, graph: &'a TopicGraph, gamma: &TopicDistribution) -> SessionHandle<'a> {
        match self {
            PiksHandle::Owned(index) => SessionHandle::Owned(index.session(graph, gamma)),
            PiksHandle::Mapped(view) => SessionHandle::Mapped(view.session(graph, gamma)),
        }
    }
}

/// The session counterpart of [`PiksHandle`].
enum SessionHandle<'a> {
    Owned(QuerySession<'a>),
    Mapped(MappedQuerySession<'a>),
}

impl SessionHandle<'_> {
    fn spread_of(&mut self, u: NodeId) -> f64 {
        match self {
            SessionHandle::Owned(s) => s.spread_of(u),
            SessionHandle::Mapped(s) => s.spread_of(u),
        }
    }

    fn materialized_worlds(&self) -> usize {
        match self {
            SessionHandle::Owned(s) => s.materialized_worlds(),
            SessionHandle::Mapped(s) => s.materialized_worlds(),
        }
    }
}

/// Work counters for one suggestion query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PiksStats {
    /// Candidate keyword-set evaluations (spread estimations) performed.
    pub evaluations: usize,
    /// Candidate sets skipped by pruning or the consistency filter.
    pub skipped: usize,
    /// Worlds materialized in the index session.
    pub worlds_materialized: usize,
}

/// Result of a keyword-suggestion query.
#[derive(Debug, Clone, PartialEq)]
pub struct PiksResult {
    /// The suggested keyword set (selection order for greedy).
    pub keywords: Vec<KeywordId>,
    /// The topic distribution the set induces.
    pub gamma: TopicDistribution,
    /// Estimated influence spread of the target under that distribution.
    pub spread: f64,
    /// Posterior topic-consistency of the set (see
    /// [`octopus_topics::consistency::posterior_consistency`]).
    pub consistency: f64,
    /// Work counters.
    pub stats: PiksStats,
}

/// Configuration shared by the suggestion engines.
#[derive(Debug, Clone)]
pub struct PiksConfig {
    /// Minimum posterior consistency of a suggested set.
    pub min_posterior_consistency: f64,
    /// Minimum pairwise consistency of a suggested set.
    pub min_pairwise_consistency: f64,
}

impl Default for PiksConfig {
    fn default() -> Self {
        PiksConfig {
            min_posterior_consistency: 0.3,
            min_pairwise_consistency: 0.5,
        }
    }
}

/// Greedy keyword suggestion with single-keyword upper-bound pruning.
pub struct GreedyPiks<'a> {
    graph: &'a TopicGraph,
    model: &'a TopicModel,
    index: PiksHandle<'a>,
    config: PiksConfig,
}

impl<'a> GreedyPiks<'a> {
    /// Create the engine over either index representation (`&InfluencerIndex`
    /// or a mapped [`PiksWorldsView`] both convert).
    pub fn new(
        graph: &'a TopicGraph,
        model: &'a TopicModel,
        index: impl Into<PiksHandle<'a>>,
        config: PiksConfig,
    ) -> Self {
        GreedyPiks {
            graph,
            model,
            index: index.into(),
            config,
        }
    }

    /// Suggest a `k`-keyword set for `target` out of `candidates`.
    ///
    /// Greedy with pruning: candidates are scanned in descending order of
    /// their single-keyword spread (computed once in round 1); in later
    /// rounds a candidate whose single-keyword spread is far below the
    /// current round's best extension cannot win and is skipped — single
    /// scores are not a sound bound on set scores (the problem is
    /// inapproximable), so the margin `slack` keeps pruning conservative;
    /// the skip count is reported in [`PiksStats`].
    ///
    /// The anchor (first keyword) is re-tried in descending singleton order:
    /// the globally strongest singleton may admit *no* topically consistent
    /// extension (e.g. it is the lone keyword of its topic in the candidate
    /// pool), and committing to it would dead-end below `k` even though a
    /// full consistent set exists among the remaining candidates.
    pub fn suggest(
        &self,
        target: NodeId,
        candidates: &[KeywordId],
        k: usize,
    ) -> Result<PiksResult> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        if candidates.is_empty() {
            return Err(CoreError::NoCandidates {
                user: self
                    .graph
                    .name(target)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{target:?}")),
            });
        }
        let mut stats = PiksStats::default();

        // Round 1: score all singletons (also the pruning order).
        let mut singles: Vec<(KeywordId, f64)> = Vec::with_capacity(candidates.len());
        for &w in candidates {
            let gamma = self.model.infer(&[w])?;
            let mut session = self.index.session(self.graph, &gamma);
            let s = session.spread_of(target);
            stats.evaluations += 1;
            stats.worlds_materialized += session.materialized_worlds();
            singles.push((w, s));
        }
        singles.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite spreads")
                .then(a.0.cmp(&b.0))
        });

        // Cap re-anchoring: `suggest` sits on the online path, and when NO
        // full-k consistent set exists every anchor dead-ends — without a
        // cap that degenerates into |candidates| full greedy passes. The
        // strongest few singletons are the only anchors worth trying.
        const MAX_ANCHOR_ATTEMPTS: usize = 8;
        let want = k.min(candidates.len());
        let mut fallback: Option<(Vec<KeywordId>, f64)> = None;
        for anchor in 0..singles.len().min(MAX_ANCHOR_ATTEMPTS) {
            let (chosen, spread) = self.grow(target, &singles, anchor, want, &mut stats)?;
            if chosen.len() == want {
                return self.finish(chosen, spread, stats);
            }
            let better = match &fallback {
                Some((c, s)) => chosen.len() > c.len() || (chosen.len() == c.len() && spread > *s),
                None => true,
            };
            if better {
                fallback = Some((chosen, spread));
            }
        }
        let (chosen, spread) = fallback.expect("non-empty candidates yield at least a singleton");
        self.finish(chosen, spread, stats)
    }

    /// One greedy run anchored on `singles[anchor]`, extended with pruning
    /// until `want` keywords are chosen or no consistent extension exists.
    fn grow(
        &self,
        target: NodeId,
        singles: &[(KeywordId, f64)],
        anchor: usize,
        want: usize,
        stats: &mut PiksStats,
    ) -> Result<(Vec<KeywordId>, f64)> {
        let mut chosen: Vec<KeywordId> = vec![singles[anchor].0];
        let mut best_spread = singles[anchor].1;
        let slack = 0.5; // conservative margin: see doc comment on `suggest`
        while chosen.len() < want {
            let mut round_best: Option<(KeywordId, f64, TopicDistribution)> = None;
            for &(w, single) in singles {
                if chosen.contains(&w) {
                    continue;
                }
                if let Some((_, best, _)) = &round_best {
                    // prune: a keyword whose singleton value is far below the
                    // current best extension rarely lifts the mixture
                    if single < best * slack {
                        stats.skipped += 1;
                        continue;
                    }
                }
                let mut with = chosen.clone();
                with.push(w);
                // consistency filter first (cheap)
                if !consistency::is_consistent(
                    self.model,
                    &with,
                    self.config.min_posterior_consistency,
                    self.config.min_pairwise_consistency,
                )? {
                    stats.skipped += 1;
                    continue;
                }
                let gamma = self.model.infer(&with)?;
                let mut session = self.index.session(self.graph, &gamma);
                let s = session.spread_of(target);
                stats.evaluations += 1;
                stats.worlds_materialized += session.materialized_worlds();
                let better = round_best.as_ref().map(|(_, b, _)| s > *b).unwrap_or(true);
                if better {
                    round_best = Some((w, s, gamma));
                }
            }
            match round_best {
                Some((w, s, _gamma)) => {
                    chosen.push(w);
                    best_spread = s;
                }
                None => break, // no consistent extension exists
            }
        }
        Ok((chosen, best_spread))
    }

    fn finish(&self, chosen: Vec<KeywordId>, spread: f64, stats: PiksStats) -> Result<PiksResult> {
        let gamma = self.model.infer(&chosen)?;
        let consistency = consistency::posterior_consistency(self.model, &chosen)?;
        Ok(PiksResult {
            keywords: chosen,
            gamma,
            spread,
            consistency,
            stats,
        })
    }
}

/// Exhaustive `k`-subset enumeration — exponential, the test/quality oracle.
pub struct ExhaustivePiks<'a> {
    graph: &'a TopicGraph,
    model: &'a TopicModel,
    index: PiksHandle<'a>,
    config: PiksConfig,
}

impl<'a> ExhaustivePiks<'a> {
    /// Create the oracle engine over either index representation.
    pub fn new(
        graph: &'a TopicGraph,
        model: &'a TopicModel,
        index: impl Into<PiksHandle<'a>>,
        config: PiksConfig,
    ) -> Self {
        ExhaustivePiks {
            graph,
            model,
            index: index.into(),
            config,
        }
    }

    /// Evaluate every consistent `k`-subset of `candidates`.
    pub fn suggest(
        &self,
        target: NodeId,
        candidates: &[KeywordId],
        k: usize,
    ) -> Result<PiksResult> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        if candidates.is_empty() || candidates.len() < k {
            return Err(CoreError::NoCandidates {
                user: self
                    .graph
                    .name(target)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{target:?}")),
            });
        }
        let mut stats = PiksStats::default();
        let mut best: Option<(Vec<KeywordId>, f64)> = None;
        let mut subset: Vec<usize> = (0..k).collect();
        loop {
            let ws: Vec<KeywordId> = subset.iter().map(|&i| candidates[i]).collect();
            let ok = consistency::is_consistent(
                self.model,
                &ws,
                self.config.min_posterior_consistency,
                self.config.min_pairwise_consistency,
            )?;
            if ok {
                let gamma = self.model.infer(&ws)?;
                let mut session = self.index.session(self.graph, &gamma);
                let s = session.spread_of(target);
                stats.evaluations += 1;
                stats.worlds_materialized += session.materialized_worlds();
                if best.as_ref().map(|(_, b)| s > *b).unwrap_or(true) {
                    best = Some((ws, s));
                }
            } else {
                stats.skipped += 1;
            }
            if !next_combination(&mut subset, candidates.len()) {
                break;
            }
        }
        let (ws, s) = best.ok_or(CoreError::NoCandidates {
            user: format!("{target:?} (no consistent {k}-subset)"),
        })?;
        let gamma = self.model.infer(&ws)?;
        let consistency = consistency::posterior_consistency(self.model, &ws)?;
        Ok(PiksResult {
            keywords: ws,
            gamma,
            spread: s,
            consistency,
            stats,
        })
    }
}

/// Advance `subset` (strictly increasing indices) to the next `k`-combination
/// of `0..n` in lexicographic order; `false` when exhausted.
fn next_combination(subset: &mut [usize], n: usize) -> bool {
    let k = subset.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] != i + n - k {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::GraphBuilder;
    use octopus_topics::Vocabulary;

    /// Target 0 is strong on topic 0 (edges to 1..=6 at .7) and weak on
    /// topic 1 (edges to 7..=8 at .15). Keywords: two db words (topic 0),
    /// two ml words (topic 1), one shared.
    fn fixture() -> (TopicGraph, TopicModel, InfluencerIndex) {
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(9);
        for v in 1..=6u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.7)]).unwrap();
        }
        for v in 7..=8u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(1, 0.15)]).unwrap();
        }
        let g = b.build().unwrap();
        let mut vocab = Vocabulary::new();
        vocab.intern("indexing"); // w0 t0
        vocab.intern("transactions"); // w1 t0
        vocab.intern("neural"); // w2 t1
        vocab.intern("gradients"); // w3 t1
        vocab.intern("data"); // w4 shared
        let model = TopicModel::from_rows(
            vocab,
            vec![vec![0.4, 0.4, 0.0, 0.0, 0.2], vec![0.0, 0.0, 0.4, 0.4, 0.2]],
            vec![0.5, 0.5],
        )
        .unwrap();
        let index = InfluencerIndex::build(&g, 4000, 23);
        (g, model, index)
    }

    fn all_keywords(m: &TopicModel) -> Vec<KeywordId> {
        (0..m.vocab_size()).map(|i| KeywordId(i as u32)).collect()
    }

    #[test]
    fn greedy_suggests_strong_topic_keywords() {
        let (g, m, idx) = fixture();
        let engine = GreedyPiks::new(&g, &m, &idx, PiksConfig::default());
        let res = engine.suggest(NodeId(0), &all_keywords(&m), 2).unwrap();
        let words: Vec<&str> = res
            .keywords
            .iter()
            .map(|&w| m.vocab().word(w).unwrap())
            .collect();
        assert!(
            words.contains(&"indexing") || words.contains(&"transactions"),
            "selling points must be db keywords, got {words:?}"
        );
        assert!(
            !words.contains(&"neural") && !words.contains(&"gradients"),
            "weak-topic keywords must not be suggested: {words:?}"
        );
        assert_eq!(res.gamma.dominant_topic(), 0);
        assert!(
            res.spread > 3.0,
            "db-topic spread should be large: {}",
            res.spread
        );
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_pool() {
        let (g, m, idx) = fixture();
        let cfg = PiksConfig::default();
        let greedy = GreedyPiks::new(&g, &m, &idx, cfg.clone());
        let exact = ExhaustivePiks::new(&g, &m, &idx, cfg);
        let gr = greedy.suggest(NodeId(0), &all_keywords(&m), 2).unwrap();
        let ex = exact.suggest(NodeId(0), &all_keywords(&m), 2).unwrap();
        // same spread (sets may differ by symmetric keywords)
        assert!(
            (gr.spread - ex.spread).abs() < 0.3,
            "greedy {} vs exhaustive {}",
            gr.spread,
            ex.spread
        );
        assert!(gr.stats.evaluations <= ex.stats.evaluations + 5);
    }

    #[test]
    fn greedy_over_a_mapped_view_matches_owned_bit_for_bit() {
        let (g, m, idx) = fixture();
        let mut buf = bytes::BytesMut::new();
        idx.encode_into(&mut buf);
        let frozen = buf.freeze();
        let view = PiksWorldsView::parse(&frozen[..]).unwrap();
        let ks = all_keywords(&m);
        let owned = GreedyPiks::new(&g, &m, &idx, PiksConfig::default())
            .suggest(NodeId(0), &ks, 2)
            .unwrap();
        let mapped = GreedyPiks::new(&g, &m, view, PiksConfig::default())
            .suggest(NodeId(0), &ks, 2)
            .unwrap();
        assert_eq!(owned.keywords, mapped.keywords);
        assert_eq!(owned.spread.to_bits(), mapped.spread.to_bits());
        assert_eq!(owned.stats, mapped.stats, "identical work, identical order");
    }

    #[test]
    fn consistency_filter_blocks_cross_topic_sets() {
        let (g, m, idx) = fixture();
        let strict = PiksConfig {
            min_posterior_consistency: 0.3,
            min_pairwise_consistency: 0.9,
        };
        let engine = GreedyPiks::new(&g, &m, &idx, strict);
        let res = engine.suggest(NodeId(0), &all_keywords(&m), 3).unwrap();
        // every suggested pair must be same-topic under the strict filter
        let pc = octopus_topics::consistency::pairwise_consistency(&m, &res.keywords).unwrap();
        assert!(pc >= 0.9 - 1e-9, "pairwise consistency {pc}");
    }

    #[test]
    fn errors_on_empty_candidates_and_zero_k() {
        let (g, m, idx) = fixture();
        let engine = GreedyPiks::new(&g, &m, &idx, PiksConfig::default());
        assert!(matches!(
            engine.suggest(NodeId(0), &[], 2),
            Err(CoreError::NoCandidates { .. })
        ));
        assert!(matches!(
            engine.suggest(NodeId(0), &all_keywords(&m), 0),
            Err(CoreError::ZeroK)
        ));
    }

    #[test]
    fn weak_user_gets_low_spread() {
        let (g, m, idx) = fixture();
        let engine = GreedyPiks::new(&g, &m, &idx, PiksConfig::default());
        let hub = engine.suggest(NodeId(0), &all_keywords(&m), 1).unwrap();
        let leaf = engine.suggest(NodeId(3), &all_keywords(&m), 1).unwrap();
        assert!(
            hub.spread > leaf.spread + 1.0,
            "hub {} leaf {}",
            hub.spread,
            leaf.spread
        );
    }

    #[test]
    fn stats_reflect_pruning() {
        let (g, m, idx) = fixture();
        let engine = GreedyPiks::new(&g, &m, &idx, PiksConfig::default());
        let res = engine.suggest(NodeId(0), &all_keywords(&m), 2).unwrap();
        assert!(res.stats.evaluations > 0);
        assert!(res.stats.worlds_materialized > 0);
    }

    #[test]
    fn combination_iterator_is_exhaustive_and_ordered() {
        let mut subset = vec![0usize, 1];
        let mut seen = vec![subset.clone()];
        while next_combination(&mut subset, 4) {
            seen.push(subset.clone());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn exhaustive_requires_enough_candidates() {
        let (g, m, idx) = fixture();
        let exact = ExhaustivePiks::new(&g, &m, &idx, PiksConfig::default());
        assert!(matches!(
            exact.suggest(NodeId(0), &all_keywords(&m)[..1], 2),
            Err(CoreError::NoCandidates { .. })
        ));
    }
}
