//! Error type for the OCTOPUS engine.

use std::fmt;

/// Errors surfaced by the engine facade and analysis services.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The keyword query resolved to no known keyword.
    NoKnownKeywords {
        /// The words that failed to resolve.
        unknown: Vec<String>,
    },
    /// A user lookup failed.
    UnknownUser(String),
    /// The engine was asked for zero seeds/keywords.
    ZeroK,
    /// The target user has no keyword candidates to suggest from.
    NoCandidates {
        /// The user in question.
        user: String,
    },
    /// A memory-mapped artifact section failed its (lazily verified)
    /// integrity check — the on-disk bytes this engine is serving from are
    /// damaged, and the query cannot be answered from them. The check is
    /// sticky: every later query touching the section fails the same way
    /// (fail closed; reopen or rebuild the artifact to recover).
    Artifact(String),
    /// A graph delta's edge footprint spans two shards of a sharded
    /// service. The locality partition never cuts an edge, so an insert
    /// whose endpoints live in different shards cannot be routed — it
    /// would merge two components and invalidate the partition. The batch
    /// carrying it is rejected (and eventually dropped after its retries);
    /// repartition with fewer shards to accept such an edge.
    CrossShardDelta {
        /// Influencing endpoint and its shard.
        src: (octopus_graph::NodeId, usize),
        /// Influenced endpoint and its shard.
        dst: (octopus_graph::NodeId, usize),
    },
    /// The serving layer shed this query: every inflight slot was busy
    /// and the arriving query's priority-class queue was already at its
    /// cap. The query was never executed; retry later or at a higher
    /// priority class.
    Overloaded {
        /// Label of the priority class that was shed.
        class: &'static str,
        /// The class's wait-queue occupancy when the query arrived (at
        /// its configured cap by definition of shedding).
        queued: usize,
    },
    /// Propagated graph-layer error.
    Graph(octopus_graph::GraphError),
    /// Propagated topic-layer error.
    Topic(octopus_topics::TopicError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoKnownKeywords { unknown } => {
                write!(f, "no known keywords in query (unknown: {unknown:?})")
            }
            CoreError::UnknownUser(name) => write!(f, "unknown user {name:?}"),
            CoreError::ZeroK => write!(f, "k must be at least 1"),
            CoreError::NoCandidates { user } => {
                write!(
                    f,
                    "user {user:?} has no keyword candidates (no authored items)"
                )
            }
            CoreError::Artifact(m) => write!(f, "artifact integrity error: {m}"),
            CoreError::CrossShardDelta { src, dst } => write!(
                f,
                "delta edge {}→{} crosses shards ({} → {}): the locality \
                 partition cannot route it",
                src.0 .0, dst.0 .0, src.1, dst.1
            ),
            CoreError::Overloaded { class, queued } => write!(
                f,
                "query shed: service overloaded ({class} queue full at {queued})"
            ),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Topic(e) => write!(f, "topic error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<octopus_graph::GraphError> for CoreError {
    fn from(e: octopus_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<octopus_topics::TopicError> for CoreError {
    fn from(e: octopus_topics::TopicError) -> Self {
        CoreError::Topic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::NoKnownKeywords {
            unknown: vec!["blorp".into()],
        };
        assert!(e.to_string().contains("blorp"));
        assert!(CoreError::ZeroK.to_string().contains("at least 1"));
        let e: CoreError = octopus_topics::TopicError::EmptyKeywordSet.into();
        assert!(e.to_string().contains("topic error"));
    }
}
