//! Topic-aware influential-path exploration service (§II-E, Scenario 3).
//!
//! Thin orchestration over `octopus-mia`: materialize the query topic
//! distribution, build the MIA arborescence in the requested direction, and
//! package what the UI needs — the d3 JSON document, the clusters, the top
//! paths, and per-node sizing.

use crate::Result;
use octopus_graph::{NodeId, TopicGraph};
use octopus_mia::json::{arborescence_to_d3, Json};
use octopus_mia::{ArbDirection, Arborescence, Cluster, InfluencePath, PathExplorer};
use octopus_topics::TopicDistribution;

/// Which way to explore (maps to MIOA / MIIA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreDirection {
    /// Whom does the user influence (Scenario 3, "how she influences them").
    Influences,
    /// Who influences the user ("how a target user is influenced").
    InfluencedBy,
}

/// The packaged exploration answer.
#[derive(Debug, Clone)]
pub struct PathExploration {
    /// The explored root.
    pub root: NodeId,
    /// Display name of the root (numeric fallback).
    pub root_name: String,
    /// Direction explored.
    pub direction: ExploreDirection,
    /// MIA threshold used.
    pub theta: f64,
    /// Users reached (tree size, root included).
    pub reached: usize,
    /// Total influence mass (MIA spread of the root under the query).
    pub influence: f64,
    /// Influence clusters (subtrees of the root), strongest first.
    pub clusters: Vec<Cluster>,
    /// Strongest individual paths.
    pub top_paths: Vec<InfluencePath>,
    /// d3-hierarchy JSON document for the visualization front-end.
    pub d3_json: String,
    /// The underlying arborescence (for further drill-down, e.g.
    /// click-to-highlight via [`PathExplorer::paths_through`]).
    pub tree: Arborescence,
}

/// Run a path exploration for `root` under `gamma`.
pub fn explore(
    graph: &TopicGraph,
    root: NodeId,
    gamma: &TopicDistribution,
    theta: f64,
    direction: ExploreDirection,
    top_k_paths: usize,
) -> Result<PathExploration> {
    graph.check_node(root)?;
    graph.check_gamma(gamma.as_slice())?;
    let probs = graph.materialize(gamma.as_slice())?;
    let arb_dir = match direction {
        ExploreDirection::Influences => ArbDirection::Out,
        ExploreDirection::InfluencedBy => ArbDirection::In,
    };
    let tree = Arborescence::build(graph, &probs, root, theta, arb_dir);
    let explorer = PathExplorer::new(&tree);
    let clusters = explorer.clusters();
    let top_paths = explorer.top_paths(top_k_paths);
    let d3 = arborescence_to_d3(graph, &tree);
    Ok(PathExploration {
        root,
        root_name: graph
            .name(root)
            .map(str::to_string)
            .unwrap_or_else(|| root.0.to_string()),
        direction,
        theta,
        reached: tree.len(),
        influence: tree.total_influence(),
        clusters,
        top_paths,
        d3_json: d3.to_string(),
        tree,
    })
}

/// Highlight the paths through `via` in an existing exploration (the demo's
/// click interaction), returned as a JSON array of node-id paths.
pub fn highlight_json(exploration: &PathExploration, via: NodeId) -> String {
    let explorer = PathExplorer::new(&exploration.tree);
    let paths = explorer.paths_through(via);
    Json::Arr(
        paths
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    (
                        "nodes".to_string(),
                        Json::Arr(p.nodes.iter().map(|n| Json::Num(n.0 as f64)).collect()),
                    ),
                    ("prob".to_string(), Json::Num(p.prob)),
                ])
            })
            .collect(),
    )
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::GraphBuilder;

    fn fixture() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        let m = b.add_node("michael jordan");
        let a = b.add_node("andrew");
        let c = b.add_node("carol");
        let d = b.add_node("dana");
        b.add_edge(m, a, &[(0, 0.8)]).unwrap();
        b.add_edge(m, c, &[(1, 0.7)]).unwrap();
        b.add_edge(a, d, &[(0, 0.5)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn exploration_reports_reach_and_clusters() {
        let g = fixture();
        let gamma = TopicDistribution::uniform(2);
        let ex = explore(
            &g,
            NodeId(0),
            &gamma,
            0.01,
            ExploreDirection::Influences,
            10,
        )
        .unwrap();
        assert_eq!(ex.root_name, "michael jordan");
        assert_eq!(ex.reached, 4);
        assert_eq!(ex.clusters.len(), 2);
        assert!(ex.d3_json.contains("\"name\":\"michael jordan\""));
        assert!(ex.influence > 1.0);
    }

    #[test]
    fn topic_choice_changes_the_tree() {
        let g = fixture();
        let t0 = explore(
            &g,
            NodeId(0),
            &TopicDistribution::pure(2, 0),
            0.05,
            ExploreDirection::Influences,
            10,
        )
        .unwrap();
        let t1 = explore(
            &g,
            NodeId(0),
            &TopicDistribution::pure(2, 1),
            0.05,
            ExploreDirection::Influences,
            10,
        )
        .unwrap();
        // topic 0 reaches andrew (+dana), topic 1 reaches carol
        assert!(t0.tree.contains(NodeId(1)));
        assert!(!t0.tree.contains(NodeId(2)));
        assert!(t1.tree.contains(NodeId(2)));
        assert!(!t1.tree.contains(NodeId(1)));
    }

    #[test]
    fn reverse_direction_finds_influencers() {
        let g = fixture();
        let gamma = TopicDistribution::pure(2, 0);
        let ex = explore(
            &g,
            NodeId(3),
            &gamma,
            0.01,
            ExploreDirection::InfluencedBy,
            10,
        )
        .unwrap();
        assert!(
            ex.tree.contains(NodeId(0)),
            "dana is influenced by michael via andrew"
        );
        assert_eq!(ex.direction, ExploreDirection::InfluencedBy);
    }

    #[test]
    fn highlight_produces_json_paths() {
        let g = fixture();
        let gamma = TopicDistribution::uniform(2);
        let ex = explore(
            &g,
            NodeId(0),
            &gamma,
            0.01,
            ExploreDirection::Influences,
            10,
        )
        .unwrap();
        let json = highlight_json(&ex, NodeId(1));
        assert!(json.starts_with('['));
        assert!(json.contains("\"prob\""));
        // path 0→1→3 passes through 1
        assert!(json.contains("[0,1,3]"));
    }

    #[test]
    fn bad_inputs_error() {
        let g = fixture();
        let gamma = TopicDistribution::uniform(2);
        assert!(explore(&g, NodeId(99), &gamma, 0.1, ExploreDirection::Influences, 5).is_err());
        let wrong = TopicDistribution::uniform(3);
        assert!(explore(&g, NodeId(0), &wrong, 0.1, ExploreDirection::Influences, 5).is_err());
    }
}
