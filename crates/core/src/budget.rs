//! Per-query resource budgets and anytime answer-quality certificates.
//!
//! OCTOPUS promises *online* analysis, which under load means bounding
//! work, not just measuring it. A [`QueryBudget`] caps how much an
//! operator may spend (a wall-clock deadline and/or a sample budget) and
//! names the query's [`PriorityClass`] for admission control; an
//! [`Anytime`] answer pairs the best-so-far result with a
//! [`QualityBound`] certifying where the exact answer must lie.
//!
//! Determinism contract: at a fixed *sample* budget every degraded path
//! is a deterministic function of the engine snapshot — RR generation
//! uses per-set RNG streams, candidate scans use pinned orders — so
//! budgeted answers are bit-identical at any thread count and testable
//! like everything else in this repo. Deadlines are only consulted at
//! deterministic chunk boundaries (e.g. OPIM doubling rounds): each
//! chunk's output is reproducible even though the stopping chunk is not.

use std::time::{Duration, Instant};

/// Admission-control priority of a query, highest first.
///
/// The admission controller dispatches strictly highest-priority-first
/// and sheds a class only when its own bounded queue is full — so a
/// higher class is never shed while a lower one would have been admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Latency-critical UI queries (autocomplete, radar hovers).
    Interactive = 0,
    /// The default class for ordinary analysis queries.
    Standard = 1,
    /// Bulk/background work, first to be shed.
    Batch = 2,
}

impl PriorityClass {
    /// All classes, highest priority first.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Interactive,
        PriorityClass::Standard,
        PriorityClass::Batch,
    ];

    /// Dense index (0 = highest priority).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Batch => "batch",
        }
    }
}

/// The resource envelope one query may spend.
#[derive(Debug, Clone, Copy)]
pub struct QueryBudget {
    /// Wall-clock allowance, measured from operator entry. Checked at
    /// chunk boundaries only (see module docs).
    pub deadline: Option<Duration>,
    /// Operator-specific sample allowance: RR sets for influencer
    /// ranking, candidate evaluations for keyword suggestion, inverse
    /// path-probability floor for exploration, axes kept for radar.
    pub samples: Option<usize>,
    /// Admission-control class.
    pub class: PriorityClass,
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget::unlimited()
    }
}

impl QueryBudget {
    /// No limits, [`PriorityClass::Standard`]. Budgeted operators given
    /// an unlimited budget dispatch to the exact path unchanged.
    pub fn unlimited() -> Self {
        QueryBudget {
            deadline: None,
            samples: None,
            class: PriorityClass::Standard,
        }
    }

    /// A sample-only budget (the deterministic knob).
    pub fn samples(samples: usize) -> Self {
        QueryBudget {
            samples: Some(samples),
            ..QueryBudget::unlimited()
        }
    }

    /// A deadline-only budget.
    pub fn deadline(deadline: Duration) -> Self {
        QueryBudget {
            deadline: Some(deadline),
            ..QueryBudget::unlimited()
        }
    }

    /// Replace the priority class.
    pub fn with_class(mut self, class: PriorityClass) -> Self {
        self.class = class;
        self
    }

    /// Whether neither limit is set (exact path applies).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.samples.is_none()
    }

    /// Split this budget across `shards` scattered sub-queries: the
    /// sample allowance divides evenly (each shard gets at least 1);
    /// the deadline and class are shared, since shards run in parallel.
    pub fn split(&self, shards: usize) -> QueryBudget {
        QueryBudget {
            samples: self.samples.map(|s| (s / shards.max(1)).max(1)),
            ..*self
        }
    }

    /// The deadline as an absolute instant from `start`.
    pub fn deadline_from(&self, start: Instant) -> Option<Instant> {
        self.deadline.map(|d| start + d)
    }
}

/// Where the exact answer's value must lie, relative to a (possibly
/// degraded) anytime answer.
///
/// Soundness contract: `lower ≤ exact-path value ≤ upper` on the same
/// snapshot, where "value" is the operator's scalar score (spread for
/// influencer ranking and keyword suggestion, reachable influence for
/// path exploration, topic mass for radar). `exact` marks answers that
/// ran the full exact path, for which `lower == upper` holds trivially
/// at the answer's own value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityBound {
    /// The answer ran the exact path (no degradation).
    pub exact: bool,
    /// Certified lower bound on the exact value.
    pub lower: f64,
    /// Certified upper bound on the exact value.
    pub upper: f64,
    /// Samples actually consumed (operator-specific unit).
    pub samples_used: usize,
}

impl QualityBound {
    /// The bound of an exact answer with value `value`.
    pub fn exact(value: f64) -> Self {
        QualityBound {
            exact: true,
            lower: value,
            upper: value,
            samples_used: 0,
        }
    }

    /// A degraded answer's bound.
    pub fn degraded(lower: f64, upper: f64, samples_used: usize) -> Self {
        QualityBound {
            exact: false,
            lower: lower.min(upper),
            upper,
            samples_used,
        }
    }

    /// Merge per-shard bounds of one scattered query over *disjoint*
    /// components: values are additive, so bounds sum. The merge is
    /// exact only if every part is.
    pub fn merge(&self, other: &QualityBound) -> QualityBound {
        QualityBound {
            exact: self.exact && other.exact,
            lower: self.lower + other.lower,
            upper: self.upper + other.upper,
            samples_used: self.samples_used + other.samples_used,
        }
    }

    /// Whether `value` is consistent with the bound (with float slack).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower - 1e-9 && value <= self.upper + 1e-9
    }
}

/// A best-so-far answer plus the certificate for how far off it can be.
#[derive(Debug, Clone, PartialEq)]
pub struct Anytime<T> {
    /// The (possibly degraded) answer.
    pub value: T,
    /// Where the exact answer must lie.
    pub bound: QualityBound,
}

impl<T> Anytime<T> {
    /// Wrap an exact answer.
    pub fn exact(value: T, score: f64) -> Self {
        Anytime {
            value,
            bound: QualityBound::exact(score),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_has_no_limits() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.class, PriorityClass::Standard);
        assert!(!QueryBudget::samples(100).is_unlimited());
        assert!(!QueryBudget::deadline(Duration::from_millis(5)).is_unlimited());
    }

    #[test]
    fn split_divides_samples_and_keeps_floor() {
        let b = QueryBudget::samples(100);
        assert_eq!(b.split(4).samples, Some(25));
        assert_eq!(QueryBudget::samples(2).split(8).samples, Some(1));
        assert_eq!(QueryBudget::unlimited().split(4).samples, None);
    }

    #[test]
    fn bounds_merge_additively() {
        let a = QualityBound::degraded(1.0, 3.0, 10);
        let b = QualityBound::exact(2.0);
        let m = a.merge(&b);
        assert!(!m.exact);
        assert_eq!(m.lower, 3.0);
        assert_eq!(m.upper, 5.0);
        assert_eq!(m.samples_used, 10);
        assert!(m.contains(4.0));
        assert!(!m.contains(6.0));
    }

    #[test]
    fn class_order_is_priority_order() {
        assert!(PriorityClass::Interactive < PriorityClass::Standard);
        assert!(PriorityClass::Standard < PriorityClass::Batch);
        for (i, c) in PriorityClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
