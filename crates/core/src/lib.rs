//! # octopus-core
//!
//! The OCTOPUS online topic-aware influence analysis engine — the primary
//! contribution of the ICDE'18 paper, built on the substrates in
//! `octopus-graph` / `octopus-topics` / `octopus-cascade` / `octopus-mia`.
//!
//! ## Services (one per paper section)
//!
//! * [`kim`] — **keyword-based influence maximization** (§II-C): given a
//!   keyword-derived topic distribution `γ`, find `k` seeds with maximum
//!   spread, *online*. Engines: the naive per-query baseline, marginal
//!   influence sort (MIS), the best-effort bound-pruning framework with
//!   precomputation/local-graph/neighborhood bound estimators, and the
//!   topic-sample algorithm;
//! * [`piks`] — **personalized influential keywords suggestion** (§II-D):
//!   given a target user, find the `k`-keyword set maximizing that user's
//!   influence, via an influencer index over shared-coin possible worlds
//!   with lazy propagation and delayed materialization;
//! * [`paths`] — **influential path exploration** (§II-E): topic-aware MIA
//!   trees, clusters, d3 JSON;
//! * [`offline`] — the **staged offline-build pipeline**: every
//!   precomputation the engines above need, as an explicit stage DAG with
//!   per-stage telemetry and deterministic rayon parallelism;
//! * [`autocomplete`] — the UI's name auto-completion (Scenario 2 "assisted
//!   by an auto-completion tool");
//! * [`engine`] — the [`engine::Octopus`] facade tying everything to the
//!   keyword interface ("allows users to employ simple and easy-to-use
//!   keywords to perform influence analysis");
//! * [`serve`] — the **concurrent serving layer**: an epoch-swapped
//!   [`serve::OctopusService`] where sessions query wait-free snapshots
//!   while graph deltas coalesce and rebuild the next epoch in the
//!   background.
//!
//! ```
//! use octopus_core::engine::{Octopus, OctopusConfig};
//! use octopus_graph::GraphBuilder;
//! use octopus_topics::{TopicModel, Vocabulary};
//!
//! // two users, one topic, one edge
//! let mut b = GraphBuilder::new(1);
//! let u = b.add_node("ada lovelace");
//! let v = b.add_node("grace hopper");
//! b.add_edge(u, v, &[(0, 0.9)]).unwrap();
//! let g = b.build().unwrap();
//! let mut vocab = Vocabulary::new();
//! vocab.intern("computing");
//! let model = TopicModel::from_rows(vocab, vec![vec![1.0]], vec![1.0]).unwrap();
//!
//! let octo = Octopus::new(g, model, OctopusConfig::default()).unwrap();
//! let ans = octo.find_influencers("computing", 1).unwrap();
//! assert_eq!(ans.seeds[0].name, "ada lovelace");
//! ```

#![warn(missing_docs)]

pub mod autocomplete;
pub mod budget;
pub mod cache;
pub mod engine;
pub mod error;
pub mod kim;
pub mod offline;
pub mod paths;
pub mod piks;
pub mod serve;

pub use budget::{Anytime, PriorityClass, QualityBound, QueryBudget};
pub use error::CoreError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
