//! The unified query surface: one [`Query`] value in, one
//! [`QueryResponse`] out, through a single
//! [`execute`](QueryService::execute) entry point both serving layers
//! implement.
//!
//! Historically each of the five operators existed as a plain and a
//! budgeted method on three surfaces ([`Octopus`],
//! [`Session`](super::Session), [`ShardedService`]) — ~30 near-duplicate
//! signatures that every generic caller (the load generator, the ingest
//! driver) had to re-dispatch over. [`QueryService`] collapses that to
//! one call: the query names the operator and its arguments, the
//! [`QueryBudget`] carries the limits and the priority class, and the
//! response is an [`Anytime`] answer — exact whenever the budget is
//! unlimited, since every budgeted path routes unlimited budgets to the
//! exact operators (pinned by `tests/anytime.rs` and
//! `tests/query_api.rs`). The legacy per-operator methods survive as
//! thin wrappers over `execute`, bit-identical to what they always
//! returned.
//!
//! The trait also folds in the delta side ([`submit_delta`]
//! (QueryService::submit_delta) / [`flush_deltas`]
//! (QueryService::flush_deltas)) so a closed-loop driver — queries
//! racing live ingestion — needs exactly one capability, whatever the
//! layer underneath.

use super::shard::{ShardSwap, ShardedService};
use super::{OctopusService, Operator, Served};
use crate::budget::{Anytime, QueryBudget};
use crate::engine::{KimAnswer, Octopus, SuggestAnswer};
use crate::paths::{ExploreDirection, PathExploration};
use crate::Result;
use octopus_graph::delta::GraphDelta;
use octopus_graph::NodeId;
use octopus_topics::radar::RadarChart;
use std::time::Instant;

/// One of the five online operators plus its arguments, as a value —
/// the request half of the unified surface.
///
/// # Example
///
/// The same query runs on any [`QueryService`], and with an unlimited
/// budget answers exactly like the legacy per-operator method:
///
/// ```
/// use octopus_core::engine::{Octopus, OctopusConfig};
/// use octopus_core::serve::{OctopusService, Query, QueryService};
/// use octopus_core::QueryBudget;
/// use octopus_graph::GraphBuilder;
/// use octopus_topics::{TopicModel, Vocabulary};
///
/// let mut b = GraphBuilder::new(1);
/// let ada = b.add_node("ada");
/// let grace = b.add_node("grace");
/// b.add_edge(ada, grace, &[(0, 0.5)]).unwrap();
/// let graph = b.build().unwrap();
/// let mut vocab = Vocabulary::new();
/// vocab.intern("compilers");
/// let model = TopicModel::from_rows(vocab, vec![vec![1.0]], vec![1.0]).unwrap();
/// let config = OctopusConfig {
///     piks_index_size: 16,
///     mis_rr_per_topic: 32,
///     k_max: 2,
///     ..Default::default()
/// };
/// let service = OctopusService::new(Octopus::new(graph, model, config)?);
///
/// let query = Query::FindInfluencers { query: "compilers".into(), k: 1 };
/// let served = service.execute(&query, &QueryBudget::unlimited())?;
/// let unified = served.value.into_influencers().expect("influencer query");
/// assert!(unified.bound.exact, "unlimited budgets answer exactly");
///
/// let legacy = service.session().find_influencers("compilers", 1)?;
/// assert_eq!(unified.value.result.seeds, legacy.value.result.seeds);
/// # Ok::<(), octopus_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Scenario 1 — keyword-based influencer discovery: top-`k` seeds
    /// for a free-text keyword query.
    FindInfluencers {
        /// Free-text keyword query (resolved against the vocabulary).
        query: String,
        /// Seeds to select.
        k: usize,
    },
    /// Scenario 2 — personalized keyword suggestion for a user by name.
    SuggestKeywords {
        /// The user's display name.
        user: String,
        /// Suggestions to return.
        k: usize,
    },
    /// Scenario 3 — influential path exploration from a user.
    ExplorePaths {
        /// The user's display name.
        user: String,
        /// Explore who the user influences, or who influences them.
        direction: ExploreDirection,
        /// Optional keyword query narrowing the exploration.
        query: Option<String>,
    },
    /// Name auto-completion (infallible; bypasses admission).
    Autocomplete {
        /// The typed name prefix.
        prefix: String,
        /// Maximum completions.
        limit: usize,
    },
    /// Keyword radar chart for one vocabulary word.
    KeywordRadar {
        /// The word to chart.
        word: String,
    },
}

impl Query {
    /// The operator this query names (admission and stats key).
    pub fn operator(&self) -> Operator {
        match self {
            Query::FindInfluencers { .. } => Operator::FindInfluencers,
            Query::SuggestKeywords { .. } => Operator::SuggestKeywords,
            Query::ExplorePaths { .. } => Operator::ExplorePaths,
            Query::Autocomplete { .. } => Operator::Autocomplete,
            Query::KeywordRadar { .. } => Operator::KeywordRadar,
        }
    }
}

/// The answer half of the unified surface: one variant per operator,
/// always [`Anytime`] — the bound is
/// [`exact`](crate::QualityBound::exact) whenever the budget sufficed
/// (always, for unlimited budgets).
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// Answer to [`Query::FindInfluencers`].
    Influencers(Anytime<KimAnswer>),
    /// Answer to [`Query::SuggestKeywords`].
    Suggestions(Anytime<SuggestAnswer>),
    /// Answer to [`Query::ExplorePaths`].
    Paths(Anytime<PathExploration>),
    /// Answer to [`Query::Autocomplete`].
    Completions(Anytime<Vec<(NodeId, String, f64)>>),
    /// Answer to [`Query::KeywordRadar`].
    Radar(Anytime<RadarChart>),
}

impl QueryResponse {
    /// The operator that produced this answer — always equal to the
    /// issuing query's [`Query::operator`].
    pub fn operator(&self) -> Operator {
        match self {
            QueryResponse::Influencers(_) => Operator::FindInfluencers,
            QueryResponse::Suggestions(_) => Operator::SuggestKeywords,
            QueryResponse::Paths(_) => Operator::ExplorePaths,
            QueryResponse::Completions(_) => Operator::Autocomplete,
            QueryResponse::Radar(_) => Operator::KeywordRadar,
        }
    }

    /// The influencer answer, if this was a [`Query::FindInfluencers`].
    pub fn into_influencers(self) -> Option<Anytime<KimAnswer>> {
        match self {
            QueryResponse::Influencers(a) => Some(a),
            _ => None,
        }
    }

    /// The suggestion answer, if this was a [`Query::SuggestKeywords`].
    pub fn into_suggestions(self) -> Option<Anytime<SuggestAnswer>> {
        match self {
            QueryResponse::Suggestions(a) => Some(a),
            _ => None,
        }
    }

    /// The exploration answer, if this was a [`Query::ExplorePaths`].
    pub fn into_paths(self) -> Option<Anytime<PathExploration>> {
        match self {
            QueryResponse::Paths(a) => Some(a),
            _ => None,
        }
    }

    /// The completions, if this was a [`Query::Autocomplete`].
    pub fn into_completions(self) -> Option<Anytime<Vec<(NodeId, String, f64)>>> {
        match self {
            QueryResponse::Completions(a) => Some(a),
            _ => None,
        }
    }

    /// The radar chart, if this was a [`Query::KeywordRadar`].
    pub fn into_radar(self) -> Option<Anytime<RadarChart>> {
        match self {
            QueryResponse::Radar(a) => Some(a),
            _ => None,
        }
    }
}

/// Delta-side counters a closed-loop driver watches, identical in
/// meaning across both serving layers (see
/// [`ServiceStats`](super::ServiceStats) /
/// [`ShardedStats`](super::ShardedStats) for the full sets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCounters {
    /// Deltas successfully applied across all flushes.
    pub deltas_applied: u64,
    /// Flush attempts aborted by a failing delta or rebuild (the batch
    /// was re-queued unless it exhausted its retries).
    pub batches_failed: u64,
    /// Batches dropped for good after exhausting
    /// [`MAX_BATCH_RETRIES`](super::MAX_BATCH_RETRIES) attempts.
    pub terminal_failures: u64,
    /// Deltas currently queued and not yet flushed.
    pub pending_deltas: usize,
}

/// What both serving layers offer a flavor-blind caller: execute any
/// operator under a budget, feed graph deltas, flush them into epoch
/// swaps, and watch the delta counters. [`OctopusService`] reports as
/// the degenerate single shard 0; [`ShardedService`] scatter-gathers
/// and routes flushes per shard.
pub trait QueryService: Sync {
    /// Serve one query under `budget`. The budget's class drives
    /// admission (autocomplete bypasses the controller on both layers);
    /// its sample/deadline limits bind the anytime machinery — an
    /// unlimited budget answers bit-identically to the legacy exact
    /// operators.
    fn execute(&self, query: &Query, budget: &QueryBudget) -> Result<Served<QueryResponse>>;

    /// Queue one graph mutation for the next flush.
    fn submit_delta(&self, delta: GraphDelta);

    /// Queue several mutations at once (kept in order).
    fn submit_deltas(&self, deltas: Vec<GraphDelta>);

    /// Flush pending deltas into epoch swaps; one [`ShardSwap`] per
    /// swapped shard (the unsharded service reports as shard 0, the
    /// empty vec means the queue was empty). A failed flush re-queues
    /// the batch at the front with bounded retries, exactly as the
    /// layers' own `apply_pending` documents.
    fn flush_deltas(&self) -> Result<Vec<ShardSwap>>;

    /// Number of shards serving (1 for the unsharded service).
    fn shard_count(&self) -> usize;

    /// Edges in the (global) served graph.
    fn edge_count(&self) -> usize;

    /// Delta-side health counters.
    fn delta_counters(&self) -> DeltaCounters;
}

impl Octopus {
    /// Serve one unified [`Query`] on this engine under `budget` —
    /// the single-engine dispatch both serving layers and the
    /// [`Session`](super::Session) wrappers bottom out in. Routes to
    /// the operator's budgeted variant, so an unlimited budget answers
    /// bit-identically to the exact per-operator methods (pinned by
    /// `tests/anytime.rs`).
    pub fn execute(&self, query: &Query, budget: &QueryBudget) -> Result<QueryResponse> {
        Ok(match query {
            Query::FindInfluencers { query, k } => {
                QueryResponse::Influencers(self.find_influencers_budgeted(query, *k, budget)?)
            }
            Query::SuggestKeywords { user, k } => {
                QueryResponse::Suggestions(self.suggest_keywords_budgeted(user, *k, budget)?)
            }
            Query::ExplorePaths {
                user,
                direction,
                query,
            } => QueryResponse::Paths(self.explore_paths_budgeted(
                user,
                *direction,
                query.as_deref(),
                budget,
            )?),
            Query::Autocomplete { prefix, limit } => {
                QueryResponse::Completions(self.autocomplete_budgeted(prefix, *limit, budget))
            }
            Query::KeywordRadar { word } => {
                QueryResponse::Radar(self.keyword_radar_budgeted(word, budget)?)
            }
        })
    }
}

impl QueryService for OctopusService {
    fn execute(&self, query: &Query, budget: &QueryBudget) -> Result<Served<QueryResponse>> {
        let start = Instant::now();
        // Same admission contract as Session::run: shed before touching
        // a snapshot, autocomplete bypasses the controller.
        let _permit = if query.operator() == Operator::Autocomplete {
            None
        } else {
            self.admit(budget.class)?
        };
        let epoch = self.snapshot();
        let outcome = epoch.engine().execute(query, budget);
        self.note_query();
        outcome.map(|value| Served {
            value,
            epoch: epoch.id(),
            latency: start.elapsed(),
        })
    }

    fn submit_delta(&self, delta: GraphDelta) {
        self.submit(delta);
    }

    fn submit_deltas(&self, deltas: Vec<GraphDelta>) {
        self.submit_all(deltas);
    }

    fn flush_deltas(&self) -> Result<Vec<ShardSwap>> {
        Ok(self
            .apply_pending()?
            .map(|report| vec![ShardSwap { shard: 0, report }])
            .unwrap_or_default())
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn edge_count(&self) -> usize {
        self.snapshot().engine().graph().edge_count()
    }

    fn delta_counters(&self) -> DeltaCounters {
        let st = self.stats();
        DeltaCounters {
            deltas_applied: st.deltas_applied,
            batches_failed: st.batches_failed,
            terminal_failures: st.terminal_failures,
            pending_deltas: st.pending_deltas,
        }
    }
}

impl QueryService for ShardedService {
    fn execute(&self, query: &Query, budget: &QueryBudget) -> Result<Served<QueryResponse>> {
        match query {
            Query::FindInfluencers { query, k } => self
                .find_influencers_budgeted(query, *k, budget)
                .map(|s| s.map(QueryResponse::Influencers)),
            Query::SuggestKeywords { user, k } => self
                .suggest_keywords_budgeted(user, *k, budget)
                .map(|s| s.map(QueryResponse::Suggestions)),
            Query::ExplorePaths {
                user,
                direction,
                query,
            } => self
                .explore_paths_budgeted(user, *direction, query.as_deref(), budget)
                .map(|s| s.map(QueryResponse::Paths)),
            Query::Autocomplete { prefix, limit } => Ok(self
                .autocomplete_budgeted(prefix, *limit, budget)
                .map(QueryResponse::Completions)),
            Query::KeywordRadar { word } => self
                .keyword_radar_budgeted(word, budget)
                .map(|s| s.map(QueryResponse::Radar)),
        }
    }

    fn submit_delta(&self, delta: GraphDelta) {
        self.submit(delta);
    }

    fn submit_deltas(&self, deltas: Vec<GraphDelta>) {
        self.submit_all(deltas);
    }

    fn flush_deltas(&self) -> Result<Vec<ShardSwap>> {
        self.apply_pending()
    }

    fn shard_count(&self) -> usize {
        ShardedService::shard_count(self)
    }

    fn edge_count(&self) -> usize {
        ShardedService::edge_count(self)
    }

    fn delta_counters(&self) -> DeltaCounters {
        let st = self.stats();
        DeltaCounters {
            deltas_applied: st.deltas_applied,
            batches_failed: st.batches_failed,
            terminal_failures: st.terminal_failures,
            pending_deltas: st.pending_deltas,
        }
    }
}
