//! The serving half of the ingestion loop: batch learned deltas by
//! topic footprint, feed them through any [`QueryService`], and track
//! watermark/lag/reuse as the loop runs.
//!
//! The OCTA v5 artifact keys each weight-stage unit (`spread-cap`,
//! `pb-bound`, `mis-tables`) per topic, so a flush whose batch touches
//! `T` of `Z` topics rebuilds only those topics' units and reuses the
//! other `Z − T` per stage. Learned deltas are weight-heavy and
//! topic-sparse — exactly the shape that machinery was built for — but
//! only if the ingestion loop *keeps* them sparse: one flush carrying
//! every topic rebuilds everything. [`TopicBatcher`] therefore splits a
//! window's deltas into batches whose **union** topic footprint
//! ([`GraphDelta::touched_topics`]) stays within a cap, while
//! preserving the semantics of applying the window in order:
//!
//! * id-stable deltas (weight sets/nudges, renames) group greedily,
//!   newest-batch-first, never jumping past a batch that touches the
//!   same edge or node (per-edge/per-node order is what delta
//!   application semantics guarantee);
//! * id-shifting deltas (edge inserts/removals) act as **barriers** —
//!   every open batch flushes before them, because later edge ids are
//!   only meaningful once the shift lands. Consecutive inserts share a
//!   barrier batch (they reference node ids, which do not shift);
//!   removals flush alone. After a barrier, footprints read against the
//!   pre-window graph are stale, so edge-referencing deltas fall back
//!   to the conservative unknown footprint (isolated batch).
//!
//! [`IngestPipeline`] drives the loop per window: batch, submit, flush
//! with the serving layer's own bounded-retry contract
//! ([`MAX_BATCH_RETRIES`] — a failed flush re-queues at the front;
//! the pipeline re-flushes until the batch lands or the layer drops it
//! as terminal), and fold every [`SwapReport`](super::SwapReport) into
//! [`IngestStats`].

use super::query::QueryService;
use super::{ShardSwap, MAX_BATCH_RETRIES};
use crate::Result;
use octopus_graph::delta::GraphDelta;
use octopus_graph::TopicGraph;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The weight stages whose per-topic units a batch's footprint
/// invalidates — the first three of
/// [`STAGE_ORDER`](crate::offline::STAGE_ORDER).
pub const WEIGHT_STAGES: [&str; 3] = ["spread-cap", "pb-bound", "mis-tables"];

/// One flush-sized group of deltas plus its union topic footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    /// The deltas, in original submission order.
    pub deltas: Vec<GraphDelta>,
    /// Union topic footprint; `None` means unknown — assume every
    /// topic's units are invalidated.
    pub topics: Option<BTreeSet<usize>>,
    /// Node/edge keys this batch touches (used for conflict checks).
    keys: BTreeSet<(u8, u32)>,
    /// Whether this batch shifts edge ids (insert/remove barrier).
    shifts_ids: bool,
}

impl DeltaBatch {
    fn new() -> Self {
        DeltaBatch {
            deltas: Vec::new(),
            topics: Some(BTreeSet::new()),
            keys: BTreeSet::new(),
            shifts_ids: false,
        }
    }

    /// Topics this batch touches, or `total_topics` when unknown.
    pub fn topics_touched(&self, total_topics: usize) -> usize {
        self.topics.as_ref().map_or(total_topics, |t| t.len())
    }
}

const EDGE_KEY: u8 = 0;
const NODE_KEY: u8 = 1;

/// Keys a delta orders against other deltas: the edges whose rows it
/// rewrites and the nodes it renames. Two deltas sharing a key must
/// flush in submission order.
fn delta_keys(d: &GraphDelta) -> Vec<(u8, u32)> {
    match d {
        GraphDelta::NudgeWeights { edges, .. } => edges.iter().map(|e| (EDGE_KEY, e.0)).collect(),
        GraphDelta::SetWeights { edge, .. } => vec![(EDGE_KEY, edge.0)],
        GraphDelta::RemoveEdge { edge } => vec![(EDGE_KEY, edge.0)],
        GraphDelta::RenameNode { node, .. } => vec![(NODE_KEY, node.0)],
        // inserts only reference nodes (as endpoints), and insertion
        // order among inserts does not matter for the resulting graph
        GraphDelta::InsertEdge { src, dst, .. } => {
            vec![(NODE_KEY, src.0), (NODE_KEY, dst.0)]
        }
    }
}

/// Split a window's deltas into flush batches whose union footprint
/// stays within a topic cap (see the module docs for the grouping and
/// barrier rules). Deterministic: same deltas + same graph ⇒ same plan.
#[derive(Debug, Clone)]
pub struct TopicBatcher {
    /// Maximum topics one batch may touch. A window confined to ≤ cap
    /// topics flushes as a single batch that reuses ≥ `Z − cap` units
    /// per weight stage (pinned by `crates/bench/tests/ingest_loop.rs`).
    pub max_topics: usize,
}

impl TopicBatcher {
    /// A batcher with the given per-flush topic cap (min 1).
    pub fn new(max_topics: usize) -> Self {
        TopicBatcher {
            max_topics: max_topics.max(1),
        }
    }

    /// Plan the flush batches for `deltas`, footprints read against
    /// `g` — the graph the serving layer holds *before* this window.
    pub fn plan(&self, deltas: &[GraphDelta], g: &TopicGraph) -> Vec<DeltaBatch> {
        let mut batches: Vec<DeltaBatch> = Vec::new();
        // batches before this index are closed (a barrier passed)
        let mut frozen = 0usize;
        // once an id-shifting delta passed, `g`-based footprints of
        // edge-referencing deltas are stale
        let mut ids_shifted = false;
        for d in deltas {
            let keys = delta_keys(d);
            match d {
                GraphDelta::InsertEdge { .. } => {
                    // join the trailing insert run, or open one; either
                    // way everything before it is closed
                    let joins_run = batches
                        .last()
                        .map(|b| {
                            b.shifts_ids
                                && b.deltas
                                    .iter()
                                    .all(|x| matches!(x, GraphDelta::InsertEdge { .. }))
                        })
                        .unwrap_or(false);
                    if !joins_run {
                        frozen = batches.len();
                        let mut b = DeltaBatch::new();
                        b.shifts_ids = true;
                        batches.push(b);
                    }
                    let b = batches.last_mut().expect("just ensured");
                    merge_footprint(&mut b.topics, d.touched_topics(g));
                    b.keys.extend(keys);
                    b.deltas.push(d.clone());
                    frozen = frozen.max(batches.len() - 1);
                    ids_shifted = true;
                }
                GraphDelta::RemoveEdge { .. } => {
                    // removals flush alone; everything before is closed
                    let mut b = DeltaBatch::new();
                    b.shifts_ids = true;
                    b.topics = if ids_shifted {
                        None
                    } else {
                        d.touched_topics(g)
                    };
                    b.keys.extend(keys);
                    b.deltas.push(d.clone());
                    batches.push(b);
                    frozen = batches.len();
                    ids_shifted = true;
                }
                _ => {
                    let references_edges = keys.iter().any(|(kind, _)| *kind == EDGE_KEY);
                    let fp = if ids_shifted && references_edges {
                        None // stale ids ⇒ unknown footprint, isolate
                    } else {
                        d.touched_topics(g)
                    };
                    self.place(&mut batches, frozen, d, fp, keys);
                }
            }
        }
        batches
    }

    /// Greedy placement of an id-stable delta: scan open batches newest
    /// first; join the first whose footprint union fits, but never jump
    /// past a batch sharing one of this delta's keys (that would
    /// reorder same-edge/same-node application).
    fn place(
        &self,
        batches: &mut Vec<DeltaBatch>,
        frozen: usize,
        d: &GraphDelta,
        fp: Option<BTreeSet<usize>>,
        keys: Vec<(u8, u32)>,
    ) {
        let mut candidate: Option<usize> = None;
        if fp.is_some() {
            for i in (frozen..batches.len()).rev() {
                let b = &batches[i];
                if b.shifts_ids {
                    break; // never join or jump past a barrier batch
                }
                if self.fits(b, &fp) {
                    candidate = Some(i);
                    break;
                }
                if keys.iter().any(|k| b.keys.contains(k)) {
                    break; // ordering conflict: cannot go earlier
                }
            }
        }
        match candidate {
            Some(i) => {
                let b = &mut batches[i];
                merge_footprint(&mut b.topics, fp);
                b.keys.extend(keys);
                b.deltas.push(d.clone());
            }
            None => {
                let mut b = DeltaBatch::new();
                b.topics = fp;
                b.keys.extend(keys);
                b.deltas.push(d.clone());
                batches.push(b);
            }
        }
    }

    fn fits(&self, b: &DeltaBatch, fp: &Option<BTreeSet<usize>>) -> bool {
        match (&b.topics, fp) {
            // join under the cap — or join without *growing* the batch's
            // footprint (a subset join is free even when the batch is
            // already over the cap: oversized deltas open oversized
            // batches, and everything they cover rides along)
            (Some(have), Some(add)) => {
                add.is_subset(have) || have.union(add).count() <= self.max_topics
            }
            // an unknown footprint fills a batch on its own
            _ => false,
        }
    }
}

fn merge_footprint(into: &mut Option<BTreeSet<usize>>, add: Option<BTreeSet<usize>>) {
    match (into.as_mut(), add) {
        (Some(have), Some(add)) => have.extend(add),
        _ => *into = None,
    }
}

/// Cumulative counters of one [`IngestPipeline`] — the loop's health
/// and its per-topic-reuse payoff in one scrape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestStats {
    /// Stream actions consumed into fitted windows.
    pub actions_consumed: u64,
    /// Windows fit and submitted.
    pub windows_fit: u64,
    /// Deltas submitted to the serving layer.
    pub deltas_submitted: u64,
    /// Flush batches the batcher planned and the pipeline flushed.
    pub batches_flushed: u64,
    /// Shard epoch swaps those flushes produced.
    pub swaps: u64,
    /// Sparse `(edge, topic)` probability entries moved.
    pub weights_moved: u64,
    /// Topic footprint, summed over batches (a batch with an unknown
    /// footprint counts every topic).
    pub topics_touched: u64,
    /// Weight-stage units reused across all swaps ([`WEIGHT_STAGES`]
    /// only — this is the per-topic-granularity payoff).
    pub weight_units_reused: u64,
    /// Weight-stage units total across all swaps.
    pub weight_units_total: u64,
    /// Flush retries the pipeline issued after failed swaps.
    pub retries: u64,
    /// Batches the serving layer dropped as terminal after
    /// [`MAX_BATCH_RETRIES`] consecutive failures.
    pub batches_dropped: u64,
    /// Stream time (ms) of the newest action folded into a served
    /// epoch — the ingestion watermark.
    pub watermark_ms: u64,
    /// End-to-end action→servable latency of the last window: from
    /// window close (newest action observed) to its last swap landing.
    pub last_window_latency: Duration,
    /// Worst observed window latency.
    pub max_window_latency: Duration,
}

impl IngestStats {
    /// Fraction of weight-stage units reused across all swaps — the
    /// per-topic machinery's payoff; > 0 whenever batches stayed
    /// topic-confined and a cache directory was configured.
    pub fn reuse_ratio(&self) -> f64 {
        if self.weight_units_total == 0 {
            0.0
        } else {
            self.weight_units_reused as f64 / self.weight_units_total as f64
        }
    }
}

/// What one window's submission did.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// 0-based window index.
    pub window: u64,
    /// Deltas this window carried.
    pub deltas: usize,
    /// Batches the planner split them into.
    pub batches: usize,
    /// Epoch swaps the flushes produced.
    pub swaps: Vec<ShardSwap>,
    /// Summed topic footprint across the window's batches.
    pub topics_touched: usize,
    /// Action→servable latency of this window.
    pub latency: Duration,
}

/// Drives the serve side of the loop: batch by topic footprint, submit,
/// flush with bounded retry, account (see the module docs).
pub struct IngestPipeline<'a> {
    service: &'a dyn QueryService,
    batcher: TopicBatcher,
    total_topics: usize,
    flush_budget: Option<usize>,
    stats: IngestStats,
}

impl<'a> IngestPipeline<'a> {
    /// A pipeline feeding `service`, splitting windows into batches of
    /// at most `max_topics` of the graph's `total_topics`.
    pub fn new(service: &'a dyn QueryService, max_topics: usize, total_topics: usize) -> Self {
        IngestPipeline {
            service,
            batcher: TopicBatcher::new(max_topics),
            total_topics,
            flush_budget: None,
            stats: IngestStats::default(),
        }
    }

    /// Cap the flushes (epoch swaps) one window may trigger. Every flush
    /// is a rebuild, so an adversarial window — many deltas with many
    /// distinct wide footprints — could otherwise swap hundreds of times.
    /// When the plan exceeds the budget, **adjacent** batches merge by
    /// smallest union-footprint growth until it fits: concatenating
    /// batches in plan order is always a legal application order (the
    /// planner only reorders deltas across batches when no key ordering
    /// constraint binds them, and merging keeps both the batch order and
    /// each batch's internal order), so the trade is purely confinement
    /// for swap count — the cheapest merges (same footprint, or subset)
    /// cost nothing, and only the tail of the budget forces wide batches.
    pub fn with_flush_budget(mut self, budget: usize) -> Self {
        self.flush_budget = Some(budget.max(1));
        self
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Submit one fitted window. `pre_window` is the graph the serving
    /// layer holds before these deltas (footprints are read against
    /// it); `actions` is how many stream actions the window folded in;
    /// `watermark_ms` the stream time of its newest action;
    /// `window_closed` when the learner finished observing it (the
    /// action→servable clock starts there, so the reported latency
    /// covers fit + diff + batch + rebuild + swap).
    pub fn submit_window(
        &mut self,
        deltas: Vec<GraphDelta>,
        pre_window: &TopicGraph,
        actions: u64,
        watermark_ms: u64,
        window_closed: Instant,
    ) -> Result<WindowReport> {
        let window = self.stats.windows_fit;
        self.stats.windows_fit += 1;
        self.stats.actions_consumed += actions;
        for d in &deltas {
            self.stats.weights_moved += weight_entries(d) as u64;
        }
        let mut plan = self.batcher.plan(&deltas, pre_window);
        if let Some(budget) = self.flush_budget {
            coalesce_to_budget(&mut plan, budget, self.total_topics);
        }
        let mut swaps: Vec<ShardSwap> = Vec::new();
        let mut topics_touched = 0usize;
        for batch in &plan {
            topics_touched += batch.topics_touched(self.total_topics);
            self.stats.deltas_submitted += batch.deltas.len() as u64;
            self.stats.batches_flushed += 1;
            self.service.submit_deltas(batch.deltas.clone());
            swaps.extend(self.flush_with_retry()?);
        }
        self.stats.swaps += swaps.len() as u64;
        self.stats.topics_touched += topics_touched as u64;
        for swap in &swaps {
            for stage in &swap.report.stage_reuse {
                if WEIGHT_STAGES.contains(&stage.stage) {
                    self.stats.weight_units_reused += stage.reused as u64;
                    self.stats.weight_units_total += stage.total as u64;
                }
            }
        }
        self.stats.watermark_ms = self.stats.watermark_ms.max(watermark_ms);
        let latency = window_closed.elapsed();
        self.stats.last_window_latency = latency;
        self.stats.max_window_latency = self.stats.max_window_latency.max(latency);
        Ok(WindowReport {
            window,
            deltas: deltas.len(),
            batches: plan.len(),
            swaps,
            topics_touched,
            latency,
        })
    }

    /// Flush until the submitted batch lands or the serving layer drops
    /// it as terminal. The layer owns the retry contract (failed batches
    /// re-queue at the front, dropped after [`MAX_BATCH_RETRIES`]
    /// consecutive failures); the pipeline just keeps flushing and
    /// counts what happened. Only a flush that errors *without* leaving
    /// a retryable queue — more consecutive errors than the contract
    /// allows — propagates as `Err`.
    fn flush_with_retry(&mut self) -> Result<Vec<ShardSwap>> {
        let before = self.service.delta_counters().terminal_failures;
        let mut last_err = None;
        for attempt in 0..=MAX_BATCH_RETRIES {
            match self.service.flush_deltas() {
                Ok(swaps) => {
                    let dropped = self.service.delta_counters().terminal_failures - before;
                    self.stats.batches_dropped += dropped;
                    return Ok(swaps);
                }
                Err(e) => {
                    self.stats.retries += 1;
                    last_err = Some(e);
                    let dropped = self.service.delta_counters().terminal_failures - before;
                    if dropped > 0 {
                        // the layer gave up on the batch; the loop moves on
                        self.stats.batches_dropped += dropped;
                        return Ok(Vec::new());
                    }
                    let _ = attempt;
                }
            }
        }
        Err(last_err.expect("loop ran at least once"))
    }
}

/// Merge adjacent plan batches, smallest union-footprint growth first,
/// until at most `budget` remain (see
/// [`IngestPipeline::with_flush_budget`] for why adjacency makes the
/// merge order-safe). Ties merge the earliest pair, so the result is
/// deterministic.
fn coalesce_to_budget(plan: &mut Vec<DeltaBatch>, budget: usize, total_topics: usize) {
    let size = |t: &Option<BTreeSet<usize>>| t.as_ref().map_or(total_topics, |s| s.len());
    while plan.len() > budget {
        let mut best: Option<(usize, usize)> = None; // (growth, index)
        for i in 0..plan.len() - 1 {
            let merged = match (&plan[i].topics, &plan[i + 1].topics) {
                (Some(a), Some(b)) => a.union(b).count(),
                _ => total_topics,
            };
            let growth = merged - size(&plan[i].topics).max(size(&plan[i + 1].topics));
            if best.is_none_or(|(g, _)| growth < g) {
                best = Some((growth, i));
            }
        }
        let (_, i) = best.expect("len > budget >= 1 ⇒ at least one pair");
        let right = plan.remove(i + 1);
        let left = &mut plan[i];
        left.deltas.extend(right.deltas);
        merge_footprint(&mut left.topics, right.topics);
        left.keys.extend(right.keys);
        left.shifts_ids |= right.shifts_ids;
    }
}

/// Sparse probability entries a delta moves (weight traffic accounting).
fn weight_entries(d: &GraphDelta) -> usize {
    match d {
        GraphDelta::NudgeWeights { edges, .. } => edges.len(),
        GraphDelta::SetWeights { probs, .. } => probs.len(),
        GraphDelta::InsertEdge { probs, .. } => probs.len(),
        GraphDelta::RemoveEdge { .. } | GraphDelta::RenameNode { .. } => 0,
    }
}
