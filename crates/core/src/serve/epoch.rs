//! [`EpochCell`] — an atomically swappable `Arc<T>` with read-side
//! progress guarantees, the primitive under the serving layer's
//! epoch-swapped engine handle.
//!
//! The serving workload is read-dominated and latency-sensitive: many
//! query threads each grab the current engine snapshot per query, while a
//! single writer swaps in a freshly rebuilt engine every once in a while.
//! A `RwLock<Arc<T>>` would make every reader pay lock traffic and let a
//! writer block readers for the duration of its critical section; the
//! cell instead uses the classic userspace-RCU scheme:
//!
//! * the current value lives behind an [`AtomicPtr`] holding a raw
//!   [`Arc`] pointer whose one "cell" strong count the cell itself owns;
//! * readers register in one of **two parity-indexed reader counters**
//!   before touching the pointer and deregister right after upgrading it
//!   to their own `Arc` clone;
//! * a writer publishes the new pointer first, then flips the parity, and
//!   only after the *old* parity's reader count drains to zero releases
//!   the cell's strong count on the old value — any reader that could
//!   still hold the old raw pointer has, by then, already secured its own
//!   reference.
//!
//! Progress: a reader performs two atomic ops and a pointer upgrade with
//! **no lock and no waiting** — it retries only when an epoch flip raced
//! its registration window, at most once per concurrent swap, so reads
//! are wait-free in the absence of swaps and lock-free under them (swaps
//! are rebuild-paced: seconds apart, microseconds long). A writer waits —
//! on the writer mutex for other writers, and on the bounded drain of the
//! old parity's registration window — but never on readers' *use* of
//! their snapshots: an in-flight query keeps its `Arc` alive on its own
//! after deregistering, for as long as it likes.
//!
//! All atomics use `SeqCst`: swaps happen at engine-rebuild frequency, so
//! the ordering cost is unmeasurable, and the single total order makes
//! the drain argument above airtight (a reader's deregistration is
//! ordered after its strong-count upgrade, so a drained-to-zero counter
//! proves every raw-pointer holder upgraded).

use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// An atomically swappable `Arc<T>`: readers [`load`](EpochCell::load) a
/// snapshot without locking; a writer [`swap`](EpochCell::swap)s in a new
/// value and gets the old one back once no reader can still be upgrading
/// it (see the module docs for the full protocol and its guarantees).
pub struct EpochCell<T> {
    /// Raw pointer of the current `Arc<T>`; the cell owns one strong count.
    ptr: AtomicPtr<T>,
    /// Monotone flip counter; its parity indexes `readers`.
    epoch: AtomicUsize,
    /// Readers currently inside the registration window, per parity.
    readers: [AtomicUsize; 2],
    /// Serializes writers (readers never touch it).
    writer: Mutex<()>,
    /// The cell logically owns an `Arc<T>`.
    _own: PhantomData<Arc<T>>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is
// exactly what `Arc` itself requires `T: Send + Sync` for.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        EpochCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            epoch: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
            _own: PhantomData,
        }
    }

    /// Clone the current snapshot. Never blocks: no lock is taken, and a
    /// retry happens only when a concurrent [`swap`](EpochCell::swap)
    /// flipped the epoch inside this call's registration window.
    pub fn load(&self) -> Arc<T> {
        loop {
            let e = self.epoch.load(SeqCst);
            let slot = &self.readers[e & 1];
            slot.fetch_add(1, SeqCst);
            // Re-check: if a writer flipped the epoch since we read it, our
            // registration may be in a parity slot the writer has already
            // drained (or is draining against a newer value) — back out and
            // retry rather than touch the pointer unprotected.
            if self.epoch.load(SeqCst) == e {
                let p = self.ptr.load(SeqCst);
                // SAFETY: `p` came from `Arc::into_raw`. It is alive here:
                // either it is the current value (the cell's own strong
                // count keeps it), or a writer swapped it out after we
                // registered — and that writer cannot release the cell's
                // count until our parity slot drains, which happens only
                // after the `fetch_sub` below, by which point we hold our
                // own strong count.
                let arc = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                slot.fetch_sub(1, SeqCst);
                return arc;
            }
            slot.fetch_sub(1, SeqCst);
        }
    }

    /// Install `new` as the current snapshot and return the previous one.
    ///
    /// The swap itself is one pointer store; the call then waits for the
    /// old parity's registration window to drain (bounded: registrations
    /// last two atomic ops and a pointer upgrade) before reclaiming the
    /// cell's reference to the old value. In-flight readers holding the
    /// old snapshot keep it alive through their own `Arc` clones — the
    /// returned `Arc` is simply the cell's former share.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let _exclusive = self.writer.lock();
        let old = self.ptr.swap(Arc::into_raw(new).cast_mut(), SeqCst);
        let e = self.epoch.fetch_add(1, SeqCst);
        // Readers registered under the pre-flip parity are the only ones
        // that may have loaded `old` raw; wait them out. Post-flip readers
        // fail their re-check and retry into the other slot.
        while self.readers[e & 1].load(SeqCst) != 0 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        // SAFETY: reclaims the strong count the cell held on `old`; no
        // reader can still be between its raw load and its upgrade (drain
        // above), and the pointer is no longer reachable from the cell.
        unsafe { Arc::from_raw(old) }
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no reader or writer is active; this
        // releases the cell's own strong count on the current value.
        unsafe { drop(Arc::from_raw(self.ptr.load(SeqCst))) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A payload whose internal consistency detects torn reads and whose
    /// drop is counted to detect leaks / double frees.
    struct Payload {
        id: u64,
        /// Always `id * 3 + 1` — a reader observing anything else saw a
        /// torn or reclaimed value.
        check: u64,
        drops: Arc<AtomicU64>,
    }

    impl Payload {
        fn new(id: u64, drops: &Arc<AtomicU64>) -> Arc<Self> {
            Arc::new(Payload {
                id,
                check: id * 3 + 1,
                drops: Arc::clone(drops),
            })
        }
    }

    impl Drop for Payload {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn load_returns_current_value_and_swap_returns_previous() {
        let drops = Arc::new(AtomicU64::new(0));
        let cell = EpochCell::new(Payload::new(0, &drops));
        assert_eq!(cell.load().id, 0);
        let old = cell.swap(Payload::new(1, &drops));
        assert_eq!(old.id, 0);
        assert_eq!(cell.load().id, 1);
        drop(old);
        assert_eq!(drops.load(SeqCst), 1, "only the swapped-out value died");
        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            2,
            "cell drop releases the current value"
        );
    }

    #[test]
    fn snapshots_outlive_the_swap() {
        let drops = Arc::new(AtomicU64::new(0));
        let cell = EpochCell::new(Payload::new(7, &drops));
        let snapshot = cell.load();
        drop(cell.swap(Payload::new(8, &drops)));
        // the old epoch is gone from the cell but our clone keeps it alive
        assert_eq!(drops.load(SeqCst), 0);
        assert_eq!(snapshot.id, 7);
        assert_eq!(snapshot.check, 22);
        drop(snapshot);
        assert_eq!(drops.load(SeqCst), 1);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_or_reclaimed_values() {
        const SWAPS: u64 = 200;
        const READERS: usize = 4;
        let drops = Arc::new(AtomicU64::new(0));
        let cell = EpochCell::new(Payload::new(0, &drops));
        let stop = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..READERS {
                s.spawn(|| {
                    let mut seen_max = 0u64;
                    while stop.load(SeqCst) == 0 {
                        let p = cell.load();
                        assert_eq!(p.check, p.id * 3 + 1, "torn value");
                        assert!(p.id >= seen_max, "epochs went backwards");
                        seen_max = p.id;
                    }
                });
            }
            for id in 1..=SWAPS {
                drop(cell.swap(Payload::new(id, &drops)));
            }
            stop.store(1, SeqCst);
        });
        assert_eq!(cell.load().id, SWAPS);
        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            SWAPS + 1,
            "every epoch dropped exactly once"
        );
    }

    #[test]
    fn concurrent_writers_serialize_and_leak_nothing() {
        const PER_WRITER: u64 = 100;
        const WRITERS: u64 = 3;
        let drops = Arc::new(AtomicU64::new(0));
        let cell = EpochCell::new(Payload::new(0, &drops));
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let drops = &drops;
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        drop(cell.swap(Payload::new(1 + w * PER_WRITER + i, drops)));
                        let p = cell.load();
                        assert_eq!(p.check, p.id * 3 + 1);
                    }
                });
            }
        });
        drop(cell);
        assert_eq!(drops.load(SeqCst), WRITERS * PER_WRITER + 1);
    }
}
