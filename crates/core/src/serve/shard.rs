//! Sharded serving: per-shard engines behind a scatter-gather router.
//!
//! [`super::OctopusService`] wraps one whole-graph engine, so every delta
//! pays a whole-graph rebuild and swap latency grows with the graph. A
//! [`ShardedService`] splits the `TopicGraph` into K locality-based
//! subgraphs ([`octopus_graph::subgraph::partition`] — whole weakly
//! connected components, so no influence path is ever cut), runs one
//! engine + [`EpochCell`] per shard (owned, cached, or
//! mapped — the same three rebuild modes the unsharded service offers,
//! each shard keeping its own OCTA cache subdirectory keyed by its
//! subgraph's fingerprint), and routes:
//!
//! * **Queries** fan out across shards and merge:
//!   - `find_influencers` runs the greedy selection on every shard, then
//!     k-way-merges the per-shard seed sequences by marginal gain —
//!     recovered from each shard's influence curve — with the
//!     deterministic tie-break **(gain desc, original node id asc)**, the
//!     same lower-id-wins rule the single-engine CELF heap applies.
//!     Because the partition never splits a component and MIA influence
//!     cannot cross components, the merged ranking is the single-engine
//!     ranking (pinned by `tests/serve_shard.rs`); the merged spread is
//!     the sum of the per-shard prefix spreads actually taken.
//!   - `suggest_keywords` and `explore_paths` are single-owner queries:
//!     the one shard that knows the user answers, and node ids in the
//!     answer are lifted back to global coordinates
//!     ([`Subgraph::lift`], `Arborescence::remap`).
//!   - `autocomplete` union-merges the per-shard completions under the
//!     trie's own ordering (score desc, node id asc) and truncates.
//!   - `keyword_radar` depends only on the topic model, which every shard
//!     shares — the degenerate union-merge: shard 0 answers.
//! * **Deltas** route to only the shards whose node/edge footprint they
//!   touch: a flush computes each delta's endpoints against the current
//!   global graph, rebuilds just the touched shards — concurrently, on
//!   the work-claiming pool — and swaps them; untouched shards keep their
//!   epoch and pay nothing. An [`GraphDelta::InsertEdge`] whose endpoints
//!   live in different shards is rejected
//!   ([`CoreError::CrossShardDelta`]): the locality partition guarantees
//!   no edge crosses shards, and such an insert would merge two
//!   components. Failed batches follow the unsharded retry contract —
//!   re-queued at the front, dropped after
//!   [`MAX_BATCH_RETRIES`] consecutive
//!   failures, surfaced via [`ShardedStats::terminal_failures`]. No shard
//!   is swapped unless every touched shard rebuilt: a flush is all-or-
//!   nothing, so the shards never serve graphs from different batches.

use super::admission::{AdmissionConfig, AdmissionController};
use super::{Epoch, Served, SwapReport, MAX_BATCH_RETRIES};
use crate::budget::{Anytime, PriorityClass, QualityBound, QueryBudget};
use crate::engine::{KimAnswer, Octopus, OctopusConfig, SeedInfo, SuggestAnswer};
use crate::kim::{KimResult, KimStats};
use crate::paths::{ExploreDirection, PathExploration};
use crate::serve::EpochCell;
use crate::{CoreError, Result};
use octopus_graph::delta::{self, GraphDelta};
use octopus_graph::subgraph::{induced, partition, Subgraph};
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::radar::RadarChart;
use octopus_topics::{KeywordId, TopicModel};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Instant;

/// One shard's scatter result for the influencer merge: its local seed
/// selection plus the influence curve that recovers per-seed marginal
/// gains (`curve[i] = (seed count, cumulative spread)`).
type ShardSelection = (KimResult, Vec<(usize, f64)>);

/// One shard: its stable member list (sub id → original id, ascending)
/// plus the epoch cell its engine lives in. The member set never changes
/// (no delta adds or removes nodes), so the mapping survives every
/// rebuild; only the engine and its subgraph are replaced on swap.
struct Shard {
    to_original: Vec<NodeId>,
    cell: EpochCell<Epoch>,
}

impl Shard {
    fn lift(&self, local: NodeId) -> NodeId {
        self.to_original[local.index()]
    }
}

/// One shard's swap out of a routed flush.
#[derive(Debug, Clone)]
pub struct ShardSwap {
    /// Index of the shard that swapped.
    pub shard: usize,
    /// What the swap did (per-shard epoch id, rebuild time, stage reuse).
    pub report: SwapReport,
}

/// Aggregated counters of a [`ShardedService`], scraped via
/// [`ShardedService::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// Per-shard current epoch ids (index = shard).
    pub current_epochs: Vec<u64>,
    /// Shard swaps performed across all flushes (one flush touching three
    /// shards counts three).
    pub epochs_swapped: u64,
    /// Deltas successfully applied across all flushes.
    pub deltas_applied: u64,
    /// Flush attempts aborted by a failing delta or rebuild.
    pub batches_failed: u64,
    /// Batches dropped for good after exhausting their retries.
    pub terminal_failures: u64,
    /// Deltas currently queued (re-queued failed batches included).
    pub pending_deltas: usize,
    /// Queries served across all operators.
    pub queries_served: u64,
    /// Queries admitted by the admission controller (0 when admission is
    /// off).
    pub queries_admitted: u64,
    /// Queries shed with [`CoreError::Overloaded`], total across classes.
    pub queries_shed: u64,
    /// Per-class shed counts, [`PriorityClass::ALL`] order.
    pub shed_by_class: [u64; 3],
}

impl ShardedStats {
    /// Sum of per-shard epoch ids — the service-level epoch stamp
    /// ([`Served::epoch`] of a sharded answer; equals the engine epoch at
    /// K = 1).
    pub fn current_epoch(&self) -> u64 {
        self.current_epochs.iter().sum()
    }
}

/// The sharded serving layer — see the module docs.
pub struct ShardedService {
    shards: Vec<Shard>,
    /// `owner[node.index()] = shard index` (global coordinates).
    owner: Vec<u32>,
    /// The current global graph — deltas arrive in global coordinates and
    /// are routed (and footprint-checked) against this. Only flushes
    /// touch it.
    global: Mutex<TopicGraph>,
    model: TopicModel,
    config: OctopusConfig,
    /// Global-coordinate user→keywords overrides, re-projected onto each
    /// touched shard at every rebuild.
    user_keywords: HashMap<NodeId, Vec<KeywordId>>,
    /// `Some(root)` gives shard `i` the cache directory `root/shard-NNN`
    /// — per-shard subdirectories, so each shard's prune budget and
    /// donor-epoch history are its own and co-tenant eviction cannot
    /// happen by construction (the [`crate::offline::persist::prune`]
    /// keep-set guards the shared-directory case for callers that want
    /// it).
    cache_root: Option<PathBuf>,
    mapped: bool,
    pending: Mutex<Vec<GraphDelta>>,
    flush: Mutex<()>,
    epochs_swapped: AtomicU64,
    deltas_applied: AtomicU64,
    batches_failed: AtomicU64,
    terminal_failures: AtomicU64,
    flush_failures: AtomicU64,
    queries_served: AtomicU64,
    /// `Some` puts an admission controller in front of the router's
    /// operators (see [`ShardedService::with_admission`]).
    admission: Option<AdmissionController>,
}

impl ShardedService {
    /// Partition `graph` into (at most) `k` shards and serve one
    /// freshly built engine per shard ([`Octopus::new`]; rebuilds from
    /// scratch on every routed delta).
    pub fn new(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        k: usize,
    ) -> Result<Self> {
        Self::with_options(graph, model, config, k, None, false, HashMap::new())
    }

    /// Like [`ShardedService::new`], but each shard rebuilds through its
    /// own OCTA artifact cache subdirectory under `dir`
    /// ([`Octopus::open_or_build`]), so a routed delta reuses every
    /// offline work unit — every weight stage's per-topic cap/PB/MIS
    /// sub-section and every PIKS world — it left valid *within the one
    /// shard it touched*; the per-shard [`SwapReport::stage_reuse`]
    /// carries the topic-granular hit/miss counts.
    pub fn with_cache_dir(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        k: usize,
        dir: impl Into<PathBuf>,
    ) -> Result<Self> {
        Self::with_options(
            graph,
            model,
            config,
            k,
            Some(dir.into()),
            false,
            HashMap::new(),
        )
    }

    /// Like [`ShardedService::with_cache_dir`], but shards serve
    /// zero-copy off memory-mapped artifacts ([`Octopus::open_mapped`]).
    pub fn with_mapped_cache(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        k: usize,
        dir: impl Into<PathBuf>,
    ) -> Result<Self> {
        Self::with_options(
            graph,
            model,
            config,
            k,
            Some(dir.into()),
            true,
            HashMap::new(),
        )
    }

    /// The fully general constructor: cache mode and per-user keyword
    /// overrides (global node ids; projected per shard) chosen explicitly.
    pub fn with_options(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        k: usize,
        cache_root: Option<PathBuf>,
        mapped: bool,
        user_keywords: HashMap<NodeId, Vec<KeywordId>>,
    ) -> Result<Self> {
        let parts = partition(&graph, k)?;
        let service = ShardedService {
            shards: Vec::new(),
            owner: parts.owner,
            global: Mutex::new(graph),
            model,
            config,
            user_keywords,
            cache_root,
            mapped,
            pending: Mutex::new(Vec::new()),
            flush: Mutex::new(()),
            epochs_swapped: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            batches_failed: AtomicU64::new(0),
            terminal_failures: AtomicU64::new(0),
            flush_failures: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            admission: None,
        };
        // initial engines build concurrently, like rebuilds do
        let engines: Vec<Result<Octopus>> = (0..parts.shards.len())
            .into_par_iter()
            .map(|i| {
                let sub = &parts.shards[i];
                service.build_engine(i, sub, sub.graph.clone())
            })
            .collect();
        let mut shards = Vec::with_capacity(parts.shards.len());
        for (sub, engine) in parts.shards.into_iter().zip(engines) {
            shards.push(Shard {
                to_original: sub.to_original,
                cell: EpochCell::new(Arc::new(Epoch {
                    id: 0,
                    engine: engine?,
                })),
            });
        }
        Ok(ShardedService { shards, ..service })
    }

    /// Build (or open from its shard cache) the engine serving `sub`,
    /// with the user-keyword overrides projected into shard coordinates.
    fn build_engine(&self, idx: usize, sub: &Subgraph, graph: TopicGraph) -> Result<Octopus> {
        let model = self.model.clone();
        let config = self.config.clone();
        let engine = match &self.cache_root {
            Some(root) if self.mapped => {
                Octopus::open_mapped(graph, model, config, &shard_dir(root, idx))
            }
            Some(root) => Octopus::open_or_build(graph, model, config, &shard_dir(root, idx)),
            None => Octopus::new(graph, model, config),
        }?;
        let projected: HashMap<NodeId, Vec<KeywordId>> = self
            .user_keywords
            .iter()
            .filter_map(|(node, words)| sub.to_sub.get(node).map(|&local| (local, words.clone())))
            .collect();
        Ok(engine.with_user_keywords(projected))
    }

    /// Put an admission controller in front of the router: every
    /// operator (autocomplete excepted — a sublinear trie walk costs
    /// less than the queue it would wait in) passes admission before it
    /// scatters, and sheds with [`CoreError::Overloaded`] when its
    /// class's bounded queue is full. One controller guards the whole
    /// router — the scatter across shards happens inside one admitted
    /// slot, so a query is admitted or shed exactly once.
    pub fn with_admission(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = Some(AdmissionController::new(cfg));
        self
    }

    /// Number of shards (≤ the requested K: capped by the graph's
    /// component count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning global node `u`, if in range.
    pub fn owner_of(&self, u: NodeId) -> Option<usize> {
        self.owner.get(u.index()).map(|&s| s as usize)
    }

    /// Number of edges in the current global graph (the union of every
    /// shard) — delta generators size their edge picks with this.
    pub fn edge_count(&self) -> usize {
        self.global.lock().edge_count()
    }

    /// Snapshot every shard's current epoch. Queries run entirely on one
    /// such snapshot vector, so a swap mid-query is harmless — the query
    /// finishes on the epochs it grabbed.
    pub fn snapshots(&self) -> Vec<Arc<Epoch>> {
        self.shards.iter().map(|s| s.cell.load()).collect()
    }

    /// Queue a graph mutation (global coordinates) for the next flush.
    pub fn submit(&self, delta: GraphDelta) {
        self.pending.lock().push(delta);
    }

    /// Queue several mutations at once (kept in order).
    pub fn submit_all(&self, deltas: impl IntoIterator<Item = GraphDelta>) {
        self.pending.lock().extend(deltas);
    }

    /// Aggregated service counters.
    pub fn stats(&self) -> ShardedStats {
        let (admitted, shed) = self
            .admission
            .as_ref()
            .map(|a| a.counters())
            .unwrap_or(([0; 3], [0; 3]));
        ShardedStats {
            current_epochs: self.shards.iter().map(|s| s.cell.load().id).collect(),
            epochs_swapped: self.epochs_swapped.load(SeqCst),
            deltas_applied: self.deltas_applied.load(SeqCst),
            batches_failed: self.batches_failed.load(SeqCst),
            terminal_failures: self.terminal_failures.load(SeqCst),
            pending_deltas: self.pending.lock().len(),
            queries_served: self.queries_served.load(SeqCst),
            queries_admitted: admitted.iter().sum(),
            queries_shed: shed.iter().sum(),
            shed_by_class: shed,
        }
    }

    // ------------------------------------------------------------------
    // delta routing
    // ------------------------------------------------------------------

    /// Drain the pending queue, route the batch to the shards its
    /// node/edge footprint touches, rebuild exactly those shards
    /// (concurrently) against the new global graph, and swap them.
    ///
    /// Returns one [`ShardSwap`] per touched shard (`Ok(vec![])` when
    /// nothing was pending). Untouched shards keep their epoch — their
    /// engines, caches, and id mappings are not even looked at. The flush
    /// is all-or-nothing: no shard swaps unless every touched shard's
    /// rebuild succeeded, so shards never serve graphs of different
    /// batches. On `Err` the batch is re-queued at the front and retried
    /// on later flushes, up to
    /// [`MAX_BATCH_RETRIES`] consecutive
    /// failures — then it is dropped and counted in
    /// [`ShardedStats::terminal_failures`] (the same contract as the
    /// unsharded [`super::OctopusService::apply_pending`]).
    pub fn apply_pending(&self) -> Result<Vec<ShardSwap>> {
        let _exclusive = self.flush.lock();
        let batch: Vec<GraphDelta> = std::mem::take(&mut *self.pending.lock());
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        match self.flush_batch(&batch) {
            Ok(swaps) => {
                self.flush_failures.store(0, SeqCst);
                self.deltas_applied.fetch_add(batch.len() as u64, SeqCst);
                self.epochs_swapped.fetch_add(swaps.len() as u64, SeqCst);
                Ok(swaps)
            }
            Err(e) => {
                self.batches_failed.fetch_add(1, SeqCst);
                let failures = self.flush_failures.fetch_add(1, SeqCst) + 1;
                if failures >= MAX_BATCH_RETRIES {
                    self.flush_failures.store(0, SeqCst);
                    self.terminal_failures.fetch_add(1, SeqCst);
                } else {
                    let mut pending = self.pending.lock();
                    let mut requeued = batch;
                    requeued.append(&mut pending);
                    *pending = requeued;
                }
                Err(e)
            }
        }
    }

    /// Apply `batch` to the global graph, computing the touched-shard set
    /// along the way, rebuild those shards, and swap them in. Performs no
    /// state mutation unless the whole batch routes and rebuilds cleanly.
    fn flush_batch(&self, batch: &[GraphDelta]) -> Result<Vec<ShardSwap>> {
        let start = Instant::now();
        let base = self.global.lock().clone();
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        // Edge ids refer to the graph each delta applies TO, and edge
        // inserts/removals shift later ids — so footprints for such
        // batches are read against the running fold. The dominant batch
        // shape (id-stable nudges and renames) takes the coalesced
        // apply_all fast path with footprints off the base graph.
        let id_stable = batch.iter().all(|d| {
            matches!(
                d,
                GraphDelta::NudgeWeights { .. }
                    | GraphDelta::SetWeights { .. }
                    | GraphDelta::RenameNode { .. }
            )
        });
        let new_global = if id_stable {
            for d in batch {
                self.touch(d, &base, &mut touched)?;
            }
            delta::apply_all(&base, batch)?
        } else {
            let mut g = base;
            for d in batch {
                self.touch(d, &g, &mut touched)?;
                g = d.apply(&g)?;
            }
            g
        };
        let touched: Vec<usize> = touched.into_iter().collect();
        // rebuild every touched shard concurrently on the claiming pool
        let rebuilt: Vec<Result<(usize, Octopus)>> = touched
            .par_iter()
            .map(|&s| {
                let sub = induced(&new_global, &self.shards[s].to_original)?;
                let engine = self.build_engine(s, &sub, sub.graph.clone())?;
                Ok((s, engine))
            })
            .collect();
        let rebuilt: Vec<(usize, Octopus)> = rebuilt.into_iter().collect::<Result<_>>()?;
        // every rebuild succeeded — now (and only now) swap
        let mut swaps = Vec::with_capacity(rebuilt.len());
        for (s, engine) in rebuilt {
            let shard = &self.shards[s];
            let epoch = shard.cell.load().id + 1;
            let report = SwapReport {
                epoch,
                deltas_applied: batch.len(),
                rebuild_time: start.elapsed(),
                cache_hit: engine.cache_hit(),
                stage_reuse: engine.stage_reuse().to_vec(),
            };
            drop(shard.cell.swap(Arc::new(Epoch { id: epoch, engine })));
            swaps.push(ShardSwap { shard: s, report });
        }
        *self.global.lock() = new_global;
        Ok(swaps)
    }

    /// Add the shards `d`'s footprint touches (read against `g`) to
    /// `touched`; rejects cross-shard edge inserts.
    fn touch(&self, d: &GraphDelta, g: &TopicGraph, touched: &mut BTreeSet<usize>) -> Result<()> {
        let note = |u: NodeId, touched: &mut BTreeSet<usize>| -> Result<usize> {
            g.check_node(u)?;
            let s = self.owner[u.index()] as usize;
            touched.insert(s);
            Ok(s)
        };
        match d {
            GraphDelta::NudgeWeights { edges, .. } => {
                // both endpoints share a shard (no edge crosses one)
                for &e in edges {
                    let (u, _) = g.edge_endpoints(e)?;
                    note(u, touched)?;
                }
            }
            GraphDelta::SetWeights { edge, .. } => {
                let (u, _) = g.edge_endpoints(*edge)?;
                note(u, touched)?;
            }
            GraphDelta::RemoveEdge { edge } => {
                let (u, _) = g.edge_endpoints(*edge)?;
                note(u, touched)?;
            }
            GraphDelta::InsertEdge { src, dst, .. } => {
                let s = note(*src, touched)?;
                let t = note(*dst, touched)?;
                if s != t {
                    return Err(CoreError::CrossShardDelta {
                        src: (*src, s),
                        dst: (*dst, t),
                    });
                }
            }
            GraphDelta::RenameNode { node, .. } => {
                note(*node, touched)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // scatter-gather operators
    // ------------------------------------------------------------------

    /// Admission-free serve path (autocomplete, and everything when no
    /// controller is configured).
    fn serve<T>(&self, f: impl FnOnce(&[Arc<Epoch>]) -> Result<T>) -> Result<Served<T>> {
        let start = Instant::now();
        let snaps = self.snapshots();
        self.queries_served.fetch_add(1, SeqCst);
        let value = f(&snaps)?;
        Ok(Served {
            value,
            epoch: snaps.iter().map(|e| e.id).sum(),
            latency: start.elapsed(),
        })
    }

    /// Serve one query of `class` through the admission controller (a
    /// no-op passthrough when admission is off). A shed query never
    /// snapshots or scatters; `Served::latency` of admitted queries
    /// includes the admission wait.
    fn serve_admitted<T>(
        &self,
        class: PriorityClass,
        f: impl FnOnce(&[Arc<Epoch>]) -> Result<T>,
    ) -> Result<Served<T>> {
        let start = Instant::now();
        let _permit = match &self.admission {
            None => None,
            Some(ctl) => Some(ctl.admit(class)?),
        };
        let snaps = self.snapshots();
        self.queries_served.fetch_add(1, SeqCst);
        let value = f(&snaps)?;
        Ok(Served {
            value,
            epoch: snaps.iter().map(|e| e.id).sum(),
            latency: start.elapsed(),
        })
    }

    /// Scenario 1, sharded: run the selection on every shard and merge
    /// the per-shard greedy sequences into the global top-k by marginal
    /// gain, tie-broken on **(gain desc, original node id asc)** — the
    /// documented deterministic merge order (see the module docs for why
    /// this reproduces the single-engine ranking).
    pub fn find_influencers(&self, query: &str, k: usize) -> Result<Served<KimAnswer>> {
        self.serve_admitted(PriorityClass::Standard, |snaps| {
            self.find_influencers_on(snaps, query, k)
        })
    }

    fn find_influencers_on(
        &self,
        snaps: &[Arc<Epoch>],
        query: &str,
        k: usize,
    ) -> Result<KimAnswer> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        let model = &self.model;
        let (keywords, unknown) = model.vocab().resolve_query(query);
        if keywords.is_empty() {
            return Err(CoreError::NoKnownKeywords { unknown });
        }
        let gamma = model.infer(&keywords)?;
        let start = Instant::now();
        // scatter: every shard selects its own k seeds; the influence
        // curve (cache-hitting the selection) recovers per-seed marginal
        // gains for the merge
        let per_shard: Vec<Result<ShardSelection>> = snaps
            .par_iter()
            .map(|snap| {
                let res = snap.engine.find_influencers_gamma(&gamma, k)?;
                let curve = if res.seeds.is_empty() {
                    Vec::new()
                } else {
                    snap.engine.influence_curve(&gamma, k)?
                };
                Ok((res, curve))
            })
            .collect();
        let per_shard: Vec<ShardSelection> = per_shard.into_iter().collect::<Result<_>>()?;
        // gather: k-way merge of the per-shard sequences
        let mut stats = KimStats::default();
        let mut heads: Vec<(usize, usize)> = Vec::new(); // (shard, next index)
        for (s, (res, _)) in per_shard.iter().enumerate() {
            stats.exact_evaluations += res.stats.exact_evaluations;
            stats.bound_evaluations += res.stats.bound_evaluations;
            stats.pruned_candidates += res.stats.pruned_candidates;
            stats.answered_from_sample |= res.stats.answered_from_sample;
            stats.answered_from_cache |= res.stats.answered_from_cache;
            if !res.seeds.is_empty() {
                heads.push((s, 0));
            }
        }
        let gain = |s: usize, i: usize| -> f64 {
            let curve = &per_shard[s].1;
            if i == 0 {
                curve[0].1
            } else {
                curve[i].1 - curve[i - 1].1
            }
        };
        let mut seeds: Vec<SeedInfo> = Vec::with_capacity(k);
        let mut taken = vec![0usize; per_shard.len()];
        while seeds.len() < k && !heads.is_empty() {
            // max gain, ties to the LOWER original node id — matching the
            // single-engine CELF heap's lower-id-wins rule
            let mut best = 0usize;
            for h in 1..heads.len() {
                let (bs, bi) = heads[best];
                let (hs, hi) = heads[h];
                let (gb, gh) = (gain(bs, bi), gain(hs, hi));
                let idb = self.shards[bs].lift(per_shard[bs].0.seeds[bi]);
                let idh = self.shards[hs].lift(per_shard[hs].0.seeds[hi]);
                if gh > gb || (gh == gb && idh < idb) {
                    best = h;
                }
            }
            let (s, i) = heads[best];
            let local = per_shard[s].0.seeds[i];
            let node = self.shards[s].lift(local);
            let snap = &snaps[s];
            seeds.push(SeedInfo {
                node,
                name: snap
                    .engine
                    .graph()
                    .name(local)
                    .map(str::to_string)
                    .unwrap_or_else(|| node.0.to_string()),
                rank: seeds.len(),
            });
            taken[s] = i + 1;
            if i + 1 < per_shard[s].0.seeds.len() {
                heads[best].1 = i + 1;
            } else {
                heads.swap_remove(best);
            }
        }
        // merged spread: components are disjoint, so the global spread of
        // the merged set is the sum of each shard's prefix spread
        let spread: f64 = per_shard
            .iter()
            .zip(&taken)
            .filter(|(_, &t)| t > 0)
            .map(|((_, curve), &t)| curve[t - 1].1)
            .sum();
        Ok(KimAnswer {
            keywords,
            unknown,
            gamma,
            result: KimResult {
                seeds: seeds.iter().map(|s| s.node).collect(),
                spread,
                stats,
            },
            seeds,
            elapsed: start.elapsed(),
        })
    }

    /// Scenario 2, sharded: the single shard that owns `user` answers;
    /// the answer's node id is lifted back to global coordinates.
    pub fn suggest_keywords(&self, user: &str, k: usize) -> Result<Served<SuggestAnswer>> {
        self.serve_admitted(PriorityClass::Standard, |snaps| {
            for (s, snap) in snaps.iter().enumerate() {
                match snap.engine.suggest_keywords(user, k) {
                    Err(CoreError::UnknownUser(_)) => continue,
                    Ok(mut answer) => {
                        answer.user = self.shards[s].lift(answer.user);
                        return Ok(answer);
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(CoreError::UnknownUser(user.to_string()))
        })
    }

    /// Scenario 3, sharded: the owner shard explores, and every node id
    /// in the exploration — root, clusters, paths, the arborescence, and
    /// the re-rendered d3 document — is lifted back to global coordinates.
    pub fn explore_paths(
        &self,
        user: &str,
        direction: ExploreDirection,
        query: Option<&str>,
    ) -> Result<Served<PathExploration>> {
        self.serve_admitted(PriorityClass::Standard, |snaps| {
            for (s, snap) in snaps.iter().enumerate() {
                match snap.engine.explore_paths(user, direction, query) {
                    Err(CoreError::UnknownUser(_)) => continue,
                    Ok(mut exp) => {
                        self.lift_exploration(s, snap, &mut exp);
                        return Ok(exp);
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(CoreError::UnknownUser(user.to_string()))
        })
    }

    /// Lift every node id in an exploration answered by shard `s` — root,
    /// clusters, paths, the arborescence, and the re-rendered d3 document
    /// — back to global coordinates.
    fn lift_exploration(&self, s: usize, snap: &Epoch, exp: &mut PathExploration) {
        let shard = &self.shards[s];
        exp.root = shard.lift(exp.root);
        for c in &mut exp.clusters {
            c.head = shard.lift(c.head);
            for m in &mut c.members {
                *m = shard.lift(*m);
            }
        }
        for p in &mut exp.top_paths {
            for n in &mut p.nodes {
                *n = shard.lift(*n);
            }
        }
        exp.tree = exp.tree.remap(|u| shard.lift(u));
        // the d3 document embeds ids: re-render it from the lifted tree,
        // resolving names through the shard mapping (`to_original` is
        // ascending, so global → local is a binary search)
        let local_graph = snap.engine.graph();
        exp.d3_json = octopus_mia::json::arborescence_to_d3_with(&exp.tree, |u| {
            shard
                .to_original
                .binary_search(&u)
                .ok()
                .and_then(|i| local_graph.name(NodeId(i as u32)))
                .map(str::to_string)
        })
        .to_string();
    }

    /// Name auto-completion, sharded: union-merge of the per-shard
    /// completions under the trie's own ordering (score desc, node id
    /// asc), truncated to `limit` — node-id ties compare **lifted**
    /// (global) ids, so the order equals the single-engine order.
    pub fn autocomplete(&self, prefix: &str, limit: usize) -> Served<Vec<(NodeId, String, f64)>> {
        self.serve(|snaps| {
            let mut merged: Vec<(NodeId, String, f64)> = Vec::new();
            for (s, snap) in snaps.iter().enumerate() {
                merged.extend(
                    snap.engine
                        .autocomplete(prefix, limit)
                        .into_iter()
                        .map(|(id, name, score)| (self.shards[s].lift(id), name, score)),
                );
            }
            merged.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .expect("finite scores")
                    .then(a.0.cmp(&b.0))
            });
            merged.truncate(limit);
            Ok(merged)
        })
        .expect("autocomplete is infallible")
    }

    /// Radar chart for one keyword: scatter to every shard and gather by
    /// **elementwise max** over the axis values (the documented merge
    /// tie-break — with a shared topic model the per-shard charts are
    /// identical, so max-merge reproduces any one of them, and it stays
    /// correct if a future model ever diverged per shard by keeping the
    /// strongest signal per axis). Pinned sharded == whole-graph in
    /// `tests/serve_shard.rs`.
    pub fn keyword_radar(&self, word: &str) -> Result<Served<RadarChart>> {
        self.serve_admitted(PriorityClass::Standard, |snaps| {
            let mut merged = snaps[0].engine.keyword_radar(word)?;
            for snap in &snaps[1..] {
                let chart = snap.engine.keyword_radar(word)?;
                for (m, v) in merged.values.iter_mut().zip(&chart.values) {
                    *m = m.max(*v);
                }
            }
            Ok(merged)
        })
    }

    // ------------------------------------------------------------------
    // anytime (budgeted) operators
    // ------------------------------------------------------------------

    /// Scenario 1 under a budget, sharded: the budget is
    /// [`split`](QueryBudget::split) across the scattered shards (each
    /// shard gets an equal sample slice; the deadline and class are
    /// shared), the per-shard anytime selections merge by marginal gain
    /// under the same (gain desc, original id asc) tie-break as the exact
    /// router, and the gather keeps the per-shard [`QualityBound`]s
    /// sound:
    ///
    /// * `lower` = **max** of the per-shard lowers — each shard's lower
    ///   bounds its own k-seed set, a feasible global choice the global
    ///   optimum dominates (components are disjoint), so the max is a
    ///   sound global lower;
    /// * `upper` = **sum** of the per-shard uppers, clamped to n — the
    ///   global optimum's per-shard slices are each bounded by that
    ///   shard's k-seed optimum;
    /// * `samples_used` sums.
    ///
    /// An unlimited budget routes to the exact scatter-gather and is
    /// bit-identical to [`ShardedService::find_influencers`].
    pub fn find_influencers_budgeted(
        &self,
        query: &str,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<Served<Anytime<KimAnswer>>> {
        let budget = *budget;
        self.serve_admitted(budget.class, |snaps| {
            if budget.is_unlimited() {
                let answer = self.find_influencers_on(snaps, query, k)?;
                let spread = answer.result.spread;
                return Ok(Anytime::exact(answer, spread));
            }
            self.find_influencers_budgeted_on(snaps, query, k, &budget)
        })
    }

    fn find_influencers_budgeted_on(
        &self,
        snaps: &[Arc<Epoch>],
        query: &str,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<Anytime<KimAnswer>> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        let (keywords, unknown) = self.model.vocab().resolve_query(query);
        if keywords.is_empty() {
            return Err(CoreError::NoKnownKeywords { unknown });
        }
        let gamma = self.model.infer(&keywords)?;
        let start = Instant::now();
        let shard_budget = budget.split(snaps.len());
        let per_shard: Vec<Result<(KimResult, QualityBound, Vec<f64>)>> = snaps
            .par_iter()
            .map(|snap| {
                snap.engine
                    .find_influencers_budgeted_gamma(&gamma, k, &shard_budget)
            })
            .collect();
        let per_shard: Vec<(KimResult, QualityBound, Vec<f64>)> =
            per_shard.into_iter().collect::<Result<_>>()?;
        // gather: k-way merge of the per-shard anytime sequences by the
        // estimator's own marginal gains
        let mut stats = KimStats::default();
        let mut heads: Vec<(usize, usize)> = Vec::new(); // (shard, next index)
        for (s, (res, _, gains)) in per_shard.iter().enumerate() {
            stats.exact_evaluations += res.stats.exact_evaluations;
            stats.bound_evaluations += res.stats.bound_evaluations;
            stats.pruned_candidates += res.stats.pruned_candidates;
            stats.answered_from_sample |= res.stats.answered_from_sample;
            stats.answered_from_cache |= res.stats.answered_from_cache;
            if !res.seeds.is_empty() && !gains.is_empty() {
                heads.push((s, 0));
            }
        }
        let gain = |s: usize, i: usize| -> f64 { per_shard[s].2[i] };
        let mut seeds: Vec<SeedInfo> = Vec::with_capacity(k);
        let mut taken = vec![0usize; per_shard.len()];
        while seeds.len() < k && !heads.is_empty() {
            let mut best = 0usize;
            for h in 1..heads.len() {
                let (bs, bi) = heads[best];
                let (hs, hi) = heads[h];
                let (gb, gh) = (gain(bs, bi), gain(hs, hi));
                let idb = self.shards[bs].lift(per_shard[bs].0.seeds[bi]);
                let idh = self.shards[hs].lift(per_shard[hs].0.seeds[hi]);
                if gh > gb || (gh == gb && idh < idb) {
                    best = h;
                }
            }
            let (s, i) = heads[best];
            let local = per_shard[s].0.seeds[i];
            let node = self.shards[s].lift(local);
            let snap = &snaps[s];
            seeds.push(SeedInfo {
                node,
                name: snap
                    .engine
                    .graph()
                    .name(local)
                    .map(str::to_string)
                    .unwrap_or_else(|| node.0.to_string()),
                rank: seeds.len(),
            });
            taken[s] = i + 1;
            if i + 1 < per_shard[s].0.seeds.len() && i + 1 < per_shard[s].2.len() {
                heads[best].1 = i + 1;
            } else {
                heads.swap_remove(best);
            }
        }
        // merged estimate: disjoint components, so the taken prefixes'
        // gains sum
        let spread: f64 = per_shard
            .iter()
            .zip(&taken)
            .map(|((_, _, gains), &t)| gains[..t].iter().sum::<f64>())
            .sum();
        let n = self.owner.len() as f64;
        let mut lower = 0.0f64;
        let mut upper = 0.0f64;
        let mut samples = 0usize;
        let mut exact = true;
        for (_, b, _) in &per_shard {
            lower = lower.max(b.lower);
            upper += b.upper;
            samples += b.samples_used;
            exact &= b.exact;
        }
        let bound = if exact {
            QualityBound::exact(spread)
        } else {
            QualityBound::degraded(lower, upper.min(n), samples)
        };
        Ok(Anytime {
            value: KimAnswer {
                keywords,
                unknown,
                gamma,
                result: KimResult {
                    seeds: seeds.iter().map(|s| s.node).collect(),
                    spread,
                    stats,
                },
                seeds,
                elapsed: start.elapsed(),
            },
            bound,
        })
    }

    /// Scenario 2 under a budget, sharded: single-owner, so the owning
    /// shard receives the *whole* budget (no split — only one shard
    /// runs); the answer's node id is lifted like the exact path's.
    pub fn suggest_keywords_budgeted(
        &self,
        user: &str,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<Served<Anytime<SuggestAnswer>>> {
        let budget = *budget;
        self.serve_admitted(budget.class, |snaps| {
            for (s, snap) in snaps.iter().enumerate() {
                match snap.engine.suggest_keywords_budgeted(user, k, &budget) {
                    Err(CoreError::UnknownUser(_)) => continue,
                    Ok(mut anytime) => {
                        anytime.value.user = self.shards[s].lift(anytime.value.user);
                        return Ok(anytime);
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(CoreError::UnknownUser(user.to_string()))
        })
    }

    /// Scenario 3 under a budget, sharded: single-owner with the whole
    /// budget, ids lifted via the same path as the exact exploration.
    pub fn explore_paths_budgeted(
        &self,
        user: &str,
        direction: ExploreDirection,
        query: Option<&str>,
        budget: &QueryBudget,
    ) -> Result<Served<Anytime<PathExploration>>> {
        let budget = *budget;
        self.serve_admitted(budget.class, |snaps| {
            for (s, snap) in snaps.iter().enumerate() {
                match snap
                    .engine
                    .explore_paths_budgeted(user, direction, query, &budget)
                {
                    Err(CoreError::UnknownUser(_)) => continue,
                    Ok(mut anytime) => {
                        self.lift_exploration(s, snap, &mut anytime.value);
                        return Ok(anytime);
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(CoreError::UnknownUser(user.to_string()))
        })
    }

    /// Name auto-completion under a budget: never degraded (the trie walk
    /// is sublinear), never queued (admission bypass like the exact path).
    pub fn autocomplete_budgeted(
        &self,
        prefix: &str,
        limit: usize,
        _budget: &QueryBudget,
    ) -> Served<Anytime<Vec<(NodeId, String, f64)>>> {
        let served = self.autocomplete(prefix, limit);
        let score = served.value.len() as f64;
        Served {
            value: Anytime::exact(served.value, score),
            epoch: served.epoch,
            latency: served.latency,
        }
    }

    /// Keyword radar under a budget, sharded: every shard degrades its
    /// chart under the same budget (the model is shared, so the charts —
    /// and their bounds — are identical), merged elementwise-max like the
    /// exact radar.
    pub fn keyword_radar_budgeted(
        &self,
        word: &str,
        budget: &QueryBudget,
    ) -> Result<Served<Anytime<RadarChart>>> {
        let budget = *budget;
        self.serve_admitted(budget.class, |snaps| {
            let mut merged = snaps[0].engine.keyword_radar_budgeted(word, &budget)?;
            for snap in &snaps[1..] {
                let next = snap.engine.keyword_radar_budgeted(word, &budget)?;
                for (m, v) in merged.value.values.iter_mut().zip(&next.value.values) {
                    *m = m.max(*v);
                }
                merged.bound.lower = merged.bound.lower.max(next.bound.lower);
                merged.bound.upper = merged.bound.upper.max(next.bound.upper);
                merged.bound.exact &= next.bound.exact;
                merged.bound.samples_used = merged.bound.samples_used.max(next.bound.samples_used);
            }
            Ok(merged)
        })
    }
}

/// The cache subdirectory of shard `idx` under `root`.
fn shard_dir(root: &std::path::Path, idx: usize) -> PathBuf {
    root.join(format!("shard-{idx:03}"))
}
