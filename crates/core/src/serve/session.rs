//! Per-client sessions over [`OctopusService`](super::OctopusService):
//! the paper's online operators, each answer stamped with the epoch that
//! served it and its observed latency.
//!
//! A [`Session`] is the unit a connection handler owns — cheap to create,
//! single-threaded (`&mut self`), accumulating per-operator counters the
//! caller can scrape without touching shared state. Every call grabs the
//! *current* epoch snapshot, so consecutive calls in one session may span
//! an epoch swap; [`Session::pin`] freezes one snapshot for callers that
//! need multi-query read consistency (a UI drilling into one answer).

use super::query::{Query, QueryResponse};
use super::{Epoch, OctopusService};
use crate::budget::{Anytime, QueryBudget};
use crate::engine::{KimAnswer, SuggestAnswer};
use crate::paths::{ExploreDirection, PathExploration};
use crate::Result;
use octopus_graph::NodeId;
use octopus_topics::radar::RadarChart;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The online operators a session exposes, as stats keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// Scenario 1 — keyword-based influencer discovery.
    FindInfluencers,
    /// Scenario 2 — personalized keyword suggestion.
    SuggestKeywords,
    /// Scenario 3 — influential path exploration.
    ExplorePaths,
    /// Name auto-completion.
    Autocomplete,
    /// Keyword radar chart (UI keyword interpretation).
    KeywordRadar,
}

impl Operator {
    /// Every operator, in display order.
    pub const ALL: [Operator; 5] = [
        Operator::FindInfluencers,
        Operator::SuggestKeywords,
        Operator::ExplorePaths,
        Operator::Autocomplete,
        Operator::KeywordRadar,
    ];

    /// Stable display label (also the per-operator CSV column key).
    pub fn label(self) -> &'static str {
        match self {
            Operator::FindInfluencers => "find-influencers",
            Operator::SuggestKeywords => "suggest-keywords",
            Operator::ExplorePaths => "explore-paths",
            Operator::Autocomplete => "autocomplete",
            Operator::KeywordRadar => "keyword-radar",
        }
    }

    /// Position in [`Operator::ALL`] (stable stats-array index).
    pub fn index(self) -> usize {
        match self {
            Operator::FindInfluencers => 0,
            Operator::SuggestKeywords => 1,
            Operator::ExplorePaths => 2,
            Operator::Autocomplete => 3,
            Operator::KeywordRadar => 4,
        }
    }
}

/// One served answer plus its query-level metadata.
#[derive(Debug, Clone)]
pub struct Served<T> {
    /// The operator's answer.
    pub value: T,
    /// Id of the epoch that served the query.
    pub epoch: u64,
    /// Wall-clock latency observed by the session (snapshot grab included).
    pub latency: Duration,
}

impl<T> Served<T> {
    /// Transform the answer, keeping the epoch stamp and latency — how
    /// the unified-query wrappers unwrap a [`QueryResponse`] variant
    /// without forging either piece of metadata.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Served<U> {
        Served {
            value: f(self.value),
            epoch: self.epoch,
            latency: self.latency,
        }
    }
}

/// Accumulated counters for one operator within a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Queries issued (successful and failed).
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Summed latency of all queries.
    pub total_latency: Duration,
    /// Largest single-query latency.
    pub max_latency: Duration,
}

/// Per-session statistics: one [`OpStats`] per operator plus the epoch
/// range the session observed.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    per_op: [OpStats; 5],
    /// `(first, last)` epoch ids served to this session, if any query ran.
    pub epochs_seen: Option<(u64, u64)>,
}

impl SessionStats {
    /// Counters of one operator.
    pub fn op(&self, op: Operator) -> &OpStats {
        &self.per_op[op.index()]
    }

    /// Total queries across operators.
    pub fn total_queries(&self) -> u64 {
        self.per_op.iter().map(|s| s.queries).sum()
    }

    /// Total errors across operators.
    pub fn total_errors(&self) -> u64 {
        self.per_op.iter().map(|s| s.errors).sum()
    }

    fn record(&mut self, op: Operator, epoch: u64, latency: Duration, ok: bool) {
        let s = &mut self.per_op[op.index()];
        s.queries += 1;
        if !ok {
            s.errors += 1;
        }
        s.total_latency += latency;
        s.max_latency = s.max_latency.max(latency);
        self.epochs_seen = Some(match self.epochs_seen {
            None => (epoch, epoch),
            Some((first, _)) => (first, epoch),
        });
    }

    /// A shed query: counted as an issued, failed query, but with no
    /// epoch (nothing executed) and no latency contribution.
    fn record_shed(&mut self, op: Operator) {
        let s = &mut self.per_op[op.index()];
        s.queries += 1;
        s.errors += 1;
    }
}

/// One client's handle on the service (see the module docs).
pub struct Session<'s> {
    service: &'s OctopusService,
    stats: SessionStats,
    pinned: Option<Arc<Epoch>>,
    budget: QueryBudget,
}

impl<'s> Session<'s> {
    pub(super) fn new(service: &'s OctopusService) -> Self {
        Session {
            service,
            stats: SessionStats::default(),
            pinned: None,
            budget: QueryBudget::unlimited(),
        }
    }

    /// The session's accumulated per-operator counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Set the [`QueryBudget`] every subsequent query carries: its
    /// priority class drives admission for *all* operators; its
    /// deadline/sample limits bind the `*_budgeted` variants. Sessions
    /// start unlimited ([`PriorityClass::Standard`](crate::PriorityClass)).
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// The session's current query budget.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// Freeze the current epoch for multi-query consistency: until
    /// [`unpin`](Session::unpin), every query this session issues runs on
    /// (and its [`Served::epoch`] is stamped from) this exact snapshot,
    /// whatever swaps happen meanwhile — the stamp comes from the snapshot
    /// actually queried, never from the cell's moved-on counter, so a swap
    /// storm during the pin window cannot misattribute an answer to an
    /// epoch that did not produce it. Holding a pin never delays a swap —
    /// it only keeps the pinned epoch's memory alive. The returned handle
    /// lets the caller inspect the frozen epoch directly.
    pub fn pin(&mut self) -> Arc<Epoch> {
        let epoch = self.service.snapshot();
        self.pinned = Some(Arc::clone(&epoch));
        epoch
    }

    /// Release the pin: subsequent queries run on the current epoch again.
    pub fn unpin(&mut self) {
        self.pinned = None;
    }

    /// The snapshot queries currently run on: the pinned epoch, or the
    /// service's live one.
    fn snapshot(&self) -> Arc<Epoch> {
        match &self.pinned {
            Some(pin) => Arc::clone(pin),
            None => self.service.snapshot(),
        }
    }

    fn run<T>(
        &mut self,
        op: Operator,
        class: crate::PriorityClass,
        f: impl FnOnce(&Epoch) -> Result<T>,
    ) -> Result<Served<T>> {
        let start = Instant::now();
        // Admission first: a shed query never grabs a snapshot or
        // executes. Served::latency includes any admission wait — that
        // is the latency the client observed. Autocomplete bypasses the
        // controller (a sublinear trie walk costs less than the queue it
        // would wait in), which also keeps it genuinely infallible.
        let _permit = if op == Operator::Autocomplete {
            None
        } else {
            match self.service.admit(class) {
                Ok(p) => p,
                Err(e) => {
                    self.stats.record_shed(op);
                    return Err(e);
                }
            }
        };
        let epoch = self.snapshot();
        let outcome = f(&epoch);
        let latency = start.elapsed();
        self.stats.record(op, epoch.id(), latency, outcome.is_ok());
        self.service.note_query();
        outcome.map(|value| Served {
            value,
            epoch: epoch.id(),
            latency,
        })
    }

    /// Serve one unified [`Query`] under `budget` — the single entry
    /// point every per-operator method below wraps. The budget's class
    /// drives admission; its limits bind the anytime machinery, so an
    /// unlimited budget answers bit-identically to the legacy exact
    /// operators (pinned by `tests/query_api.rs`). Counted in the
    /// session stats under [`Query::operator`], like any other query.
    pub fn execute(
        &mut self,
        query: &Query,
        budget: &QueryBudget,
    ) -> Result<Served<QueryResponse>> {
        let budget = *budget;
        self.run(query.operator(), budget.class, |e| {
            e.engine().execute(query, &budget)
        })
    }

    /// The session budget with its limits stripped: what the legacy
    /// exact operators run under (class kept — admission must treat a
    /// plain call exactly as before the unified surface existed).
    fn unlimited(&self) -> QueryBudget {
        QueryBudget::unlimited().with_class(self.budget.class)
    }

    /// Scenario 1: keyword-based influential user discovery.
    pub fn find_influencers(&mut self, query: &str, k: usize) -> Result<Served<KimAnswer>> {
        let budget = self.unlimited();
        let q = Query::FindInfluencers {
            query: query.into(),
            k,
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_influencers()).value))
    }

    /// Scenario 2: personalized influential keyword suggestion by name.
    pub fn suggest_keywords(&mut self, user: &str, k: usize) -> Result<Served<SuggestAnswer>> {
        let budget = self.unlimited();
        let q = Query::SuggestKeywords {
            user: user.into(),
            k,
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_suggestions()).value))
    }

    /// Scenario 3: influential path exploration.
    pub fn explore_paths(
        &mut self,
        user: &str,
        direction: ExploreDirection,
        query: Option<&str>,
    ) -> Result<Served<PathExploration>> {
        let budget = self.unlimited();
        let q = Query::ExplorePaths {
            user: user.into(),
            direction,
            query: query.map(str::to_string),
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_paths()).value))
    }

    /// Name auto-completion (infallible, still counted and epoch-stamped).
    pub fn autocomplete(
        &mut self,
        prefix: &str,
        limit: usize,
    ) -> Served<Vec<(NodeId, String, f64)>> {
        let budget = self.unlimited();
        let q = Query::Autocomplete {
            prefix: prefix.into(),
            limit,
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_completions()).value))
            .expect("autocomplete is infallible")
    }

    /// Radar chart for one keyword.
    pub fn keyword_radar(&mut self, word: &str) -> Result<Served<RadarChart>> {
        let budget = self.unlimited();
        let q = Query::KeywordRadar { word: word.into() };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_radar()).value))
    }

    // Anytime variants: the session's [`QueryBudget`] limits apply, and
    // the answer carries its `QualityBound`. With an unlimited budget
    // each is bit-identical to the exact operator above.

    /// Scenario 1 under the session budget.
    pub fn find_influencers_budgeted(
        &mut self,
        query: &str,
        k: usize,
    ) -> Result<Served<Anytime<KimAnswer>>> {
        let budget = self.budget;
        let q = Query::FindInfluencers {
            query: query.into(),
            k,
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_influencers())))
    }

    /// Scenario 2 under the session budget.
    pub fn suggest_keywords_budgeted(
        &mut self,
        user: &str,
        k: usize,
    ) -> Result<Served<Anytime<SuggestAnswer>>> {
        let budget = self.budget;
        let q = Query::SuggestKeywords {
            user: user.into(),
            k,
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_suggestions())))
    }

    /// Scenario 3 under the session budget.
    pub fn explore_paths_budgeted(
        &mut self,
        user: &str,
        direction: ExploreDirection,
        query: Option<&str>,
    ) -> Result<Served<Anytime<PathExploration>>> {
        let budget = self.budget;
        let q = Query::ExplorePaths {
            user: user.into(),
            direction,
            query: query.map(str::to_string),
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_paths())))
    }

    /// Name auto-completion under the session budget (never degraded).
    pub fn autocomplete_budgeted(
        &mut self,
        prefix: &str,
        limit: usize,
    ) -> Served<Anytime<Vec<(NodeId, String, f64)>>> {
        let budget = self.budget;
        let q = Query::Autocomplete {
            prefix: prefix.into(),
            limit,
        };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_completions())))
            .expect("autocomplete is infallible")
    }

    /// Keyword radar under the session budget.
    pub fn keyword_radar_budgeted(&mut self, word: &str) -> Result<Served<Anytime<RadarChart>>> {
        let budget = self.budget;
        let q = Query::KeywordRadar { word: word.into() };
        self.execute(&q, &budget)
            .map(|s| s.map(|r| unwrap_variant(r.into_radar())))
    }
}

/// Execute dispatches on the query variant, so the response variant
/// always matches the wrapper that built the query.
fn unwrap_variant<T>(v: Option<T>) -> T {
    v.expect("dispatch returns the matching variant")
}
