//! Admission control for the serving layer: priority classes, bounded
//! per-class wait queues, shed-on-overload.
//!
//! The policy is a small pure state machine ([`AdmissionCore`]) so the
//! invariants are directly testable (the proptests in
//! `crates/core/tests/admission.rs` drive it synchronously), wrapped in a
//! blocking [`AdmissionController`] the services call:
//!
//! * at most `max_inflight` queries execute at once;
//! * an arrival when a slot is free is admitted immediately (no queue can
//!   be non-empty while a slot is free — dispatch on every departure
//!   drains queues first, so `waiting > 0 ⟺ inflight == max_inflight`);
//! * otherwise the arrival waits in its [`PriorityClass`] queue, bounded
//!   by that class's cap; a full queue sheds the arrival with
//!   [`CoreError::Overloaded`] — the query
//!   is never executed;
//! * departures dispatch the longest-waiting query of the
//!   highest-priority non-empty class, so a higher class is never shed
//!   while a lower class would have been admitted in its place: classes
//!   only compete for *queue space within their own class*, and for
//!   dispatch the order is strict.

use crate::budget::PriorityClass;
use crate::error::CoreError;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Condvar, Mutex};

/// What [`AdmissionCore::arrive`] decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// A slot was free: run now.
    Admit,
    /// All slots busy, queue had room: wait for ticket `ticket` of the
    /// class to be dispatched.
    Enqueue {
        /// This waiter's position in the class's cumulative ticket
        /// sequence; it runs once `dispatched > ticket`.
        ticket: u64,
    },
    /// All slots busy and the class queue is at its cap: shed.
    Shed,
}

/// The pure admission state machine (see module docs for the policy).
#[derive(Debug, Clone)]
pub struct AdmissionCore {
    max_inflight: usize,
    queue_caps: [usize; 3],
    inflight: usize,
    waiting: [usize; 3],
    /// Cumulative tickets handed out per class.
    enqueued: [u64; 3],
    /// Cumulative tickets dispatched per class (FIFO within a class).
    dispatched: [u64; 3],
    admitted: [u64; 3],
    shed: [u64; 3],
}

impl AdmissionCore {
    /// A core with `max_inflight` execution slots and per-class queue caps.
    pub fn new(max_inflight: usize, queue_caps: [usize; 3]) -> Self {
        AdmissionCore {
            max_inflight: max_inflight.max(1),
            queue_caps,
            inflight: 0,
            waiting: [0; 3],
            enqueued: [0; 3],
            dispatched: [0; 3],
            admitted: [0; 3],
            shed: [0; 3],
        }
    }

    /// One query arrives. Mutates the state per the policy.
    pub fn arrive(&mut self, class: PriorityClass) -> Arrival {
        let c = class.index();
        if self.inflight < self.max_inflight {
            debug_assert!(
                self.waiting.iter().all(|&w| w == 0),
                "a free slot with waiters violates the dispatch invariant"
            );
            self.inflight += 1;
            self.admitted[c] += 1;
            return Arrival::Admit;
        }
        if self.waiting[c] < self.queue_caps[c] {
            self.waiting[c] += 1;
            let ticket = self.enqueued[c];
            self.enqueued[c] += 1;
            return Arrival::Enqueue { ticket };
        }
        self.shed[c] += 1;
        Arrival::Shed
    }

    /// One admitted query finishes. Returns the class whose next waiter
    /// now runs (the slot transfers without ever being free), if any.
    pub fn depart(&mut self) -> Option<PriorityClass> {
        debug_assert!(self.inflight > 0, "depart without an inflight query");
        for class in PriorityClass::ALL {
            let c = class.index();
            if self.waiting[c] > 0 {
                self.waiting[c] -= 1;
                self.dispatched[c] += 1;
                self.admitted[c] += 1;
                return Some(class);
            }
        }
        self.inflight -= 1;
        None
    }

    /// A waiter that stopped waiting without being dispatched (the
    /// blocking wrapper never does this today; kept for completeness of
    /// the state machine).
    pub fn abandon(&mut self, class: PriorityClass) {
        let c = class.index();
        debug_assert!(self.waiting[c] > 0);
        self.waiting[c] = self.waiting[c].saturating_sub(1);
    }

    /// Queries currently executing.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Queries currently waiting, per class.
    pub fn waiting(&self) -> [usize; 3] {
        self.waiting
    }

    /// Cumulative per-class dispatch counters (FIFO tickets served).
    pub fn dispatched(&self) -> [u64; 3] {
        self.dispatched
    }

    /// Cumulative admissions per class (immediate + dispatched-from-queue).
    pub fn admitted(&self) -> [u64; 3] {
        self.admitted
    }

    /// Cumulative sheds per class.
    pub fn shed(&self) -> [u64; 3] {
        self.shed
    }

    /// The configured per-class queue caps.
    pub fn queue_caps(&self) -> [usize; 3] {
        self.queue_caps
    }

    /// The configured inflight cap.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }
}

/// Configuration of an [`AdmissionController`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Execution slots (queries running concurrently).
    pub max_inflight: usize,
    /// Wait-queue caps per class, [`PriorityClass::ALL`] order.
    pub queue_caps: [usize; 3],
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 8,
            queue_caps: [16, 16, 8],
        }
    }
}

/// Thread-safe blocking wrapper around [`AdmissionCore`].
///
/// Uses `std::sync::{Mutex, Condvar}` (the vendored `parking_lot` has no
/// condvar). Waiters block until their FIFO ticket is dispatched; the
/// returned [`Permit`] releases the slot on drop, dispatching the next
/// waiter under the same lock so a slot is never observably free while a
/// queue is non-empty.
#[derive(Debug)]
pub struct AdmissionController {
    core: Mutex<AdmissionCore>,
    cv: Condvar,
    /// Lock-free mirrors of the cumulative counters, for stats snapshots.
    admitted: [AtomicU64; 3],
    shed: [AtomicU64; 3],
}

impl AdmissionController {
    /// Build a controller from its config.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            core: Mutex::new(AdmissionCore::new(cfg.max_inflight, cfg.queue_caps)),
            cv: Condvar::new(),
            admitted: Default::default(),
            shed: Default::default(),
        }
    }

    /// Admit one query of `class`, blocking in its bounded queue if all
    /// slots are busy. `Err(CoreError::Overloaded)` means the query was
    /// shed and never ran.
    pub fn admit(&self, class: PriorityClass) -> crate::Result<Permit<'_>> {
        let c = class.index();
        let mut core = self.core.lock().expect("admission lock poisoned");
        match core.arrive(class) {
            Arrival::Admit => {
                self.admitted[c].fetch_add(1, Relaxed);
                Ok(Permit { ctl: self })
            }
            Arrival::Shed => {
                let queued = core.waiting()[c];
                self.shed[c].fetch_add(1, Relaxed);
                Err(CoreError::Overloaded {
                    class: class.label(),
                    queued,
                })
            }
            Arrival::Enqueue { ticket } => {
                // FIFO within the class: run once our ticket is dispatched
                loop {
                    if core.dispatched()[c] > ticket {
                        self.admitted[c].fetch_add(1, Relaxed);
                        return Ok(Permit { ctl: self });
                    }
                    core = self.cv.wait(core).expect("admission lock poisoned");
                }
            }
        }
    }

    /// `(admitted, shed)` cumulative counters, [`PriorityClass::ALL`] order.
    pub fn counters(&self) -> ([u64; 3], [u64; 3]) {
        (
            self.admitted.each_ref().map(|a| a.load(Relaxed)),
            self.shed.each_ref().map(|a| a.load(Relaxed)),
        )
    }

    fn release(&self) {
        let mut core = self.core.lock().expect("admission lock poisoned");
        let dispatched = core.depart();
        drop(core);
        if dispatched.is_some() {
            // wake every waiter; the one holding the dispatched ticket
            // proceeds, the rest re-block
            self.cv.notify_all();
        }
    }
}

/// RAII execution slot: dropping it releases the slot and dispatches the
/// next waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    ctl: &'a AdmissionController,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.ctl.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn core_admits_until_full_then_queues_then_sheds() {
        let mut core = AdmissionCore::new(2, [1, 1, 0]);
        assert_eq!(core.arrive(PriorityClass::Standard), Arrival::Admit);
        assert_eq!(core.arrive(PriorityClass::Standard), Arrival::Admit);
        assert_eq!(
            core.arrive(PriorityClass::Standard),
            Arrival::Enqueue { ticket: 0 }
        );
        assert_eq!(core.arrive(PriorityClass::Standard), Arrival::Shed);
        assert_eq!(core.arrive(PriorityClass::Standard), Arrival::Shed);
        // batch has a zero cap: shed immediately under load
        assert_eq!(core.arrive(PriorityClass::Batch), Arrival::Shed);
        assert_eq!(core.shed(), [0, 2, 1]);
        // a departure hands the slot to the standard waiter
        assert_eq!(core.depart(), Some(PriorityClass::Standard));
        assert_eq!(core.inflight(), 2);
        assert_eq!(core.depart(), None);
        assert_eq!(core.depart(), None);
        assert_eq!(core.inflight(), 0);
    }

    #[test]
    fn dispatch_is_strictly_priority_ordered() {
        let mut core = AdmissionCore::new(1, [4, 4, 4]);
        assert_eq!(core.arrive(PriorityClass::Batch), Arrival::Admit);
        let _ = core.arrive(PriorityClass::Batch);
        let _ = core.arrive(PriorityClass::Standard);
        let _ = core.arrive(PriorityClass::Interactive);
        assert_eq!(core.depart(), Some(PriorityClass::Interactive));
        assert_eq!(core.depart(), Some(PriorityClass::Standard));
        assert_eq!(core.depart(), Some(PriorityClass::Batch));
        assert_eq!(core.depart(), None);
    }

    #[test]
    fn controller_bounds_concurrency_and_counts_sheds() {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_inflight: 2,
            queue_caps: [0, 2, 0],
        }));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let shed_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..16 {
                let (ctl, running, peak, shed_seen) = (
                    Arc::clone(&ctl),
                    Arc::clone(&running),
                    Arc::clone(&peak),
                    Arc::clone(&shed_seen),
                );
                s.spawn(move || match ctl.admit(PriorityClass::Standard) {
                    Ok(_permit) => {
                        let now = running.fetch_add(1, Relaxed) + 1;
                        peak.fetch_max(now, Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        running.fetch_sub(1, Relaxed);
                    }
                    Err(CoreError::Overloaded { .. }) => {
                        shed_seen.fetch_add(1, Relaxed);
                    }
                    Err(e) => panic!("unexpected error {e:?}"),
                });
            }
        });
        assert!(peak.load(Relaxed) <= 2, "inflight cap breached");
        let (admitted, shed) = ctl.counters();
        assert_eq!(
            shed[1] as usize,
            shed_seen.load(Relaxed),
            "shed counter must equal observed Overloaded errors"
        );
        assert_eq!(admitted[1] + shed[1], 16);
    }
}
