//! The concurrent online serving layer: many readers, live graph deltas,
//! atomic epoch swaps.
//!
//! OCTOPUS is pitched as an *online* system — preprocessing exists so
//! interactive topic-aware queries return in real time — and real
//! deployments serve that traffic while the network underneath keeps
//! changing. [`OctopusService`] is the piece between the engine and the
//! connection handlers:
//!
//! * **Readers** open [`Session`]s and issue the paper's online operators
//!   (`find_influencers`, `suggest_keywords`, `explore_paths`,
//!   `autocomplete`, `keyword_radar`); every query grabs the current
//!   engine snapshot from an [`EpochCell`] — no lock, no waiting on
//!   writers — and is answered entirely on that snapshot, stamped with
//!   the epoch id and latency ([`Served`]).
//! * **Writers** [`submit`](OctopusService::submit)
//!   [`GraphDelta`] mutations. Deltas queue up; a flush —
//!   [`apply_pending`](OctopusService::apply_pending), called directly or
//!   by a [`spawn_rebuilder`](OctopusService::spawn_rebuilder) background
//!   thread — drains and **coalesces** the whole batch into one new
//!   graph, rebuilds the engine *off to the side* (through
//!   [`Octopus::open_or_build`] when a cache directory is configured, so
//!   the incremental per-topic/per-world reuse machinery pays for most
//!   of the rebuild), and atomically swaps the epoch. A service built with
//!   [`with_mapped_cache`](OctopusService::with_mapped_cache) goes one
//!   step further: the flush writes the new epoch's OCTA v5 artifact and
//!   **remaps** it, so the swapped-in engine serves zero-copy off the
//!   page cache and rebuild writes never enter the read path.
//!
//! ## The epoch lifecycle
//!
//! ```text
//!   epoch N serving ──────────────────────────────▶ still serving ──▶ retired
//!        │                                               │
//!        │ submit(δ₁) submit(δ₂) …                       │ in-flight queries
//!        ▼                                               │ finish on N; new
//!   pending queue ──flush──▶ coalesce δ₁…δₖ              │ queries land on N+1
//!                            rebuild engine (background) │
//!                            swap ───────────────────────┘
//! ```
//!
//! Determinism survives serving: the offline pipeline is bit-identical
//! however it is scheduled or partially reused, so the engine of epoch
//! N+1 answers exactly like a fresh engine built from epoch N+1's graph —
//! a reader racing a swap observes *old* or *new*, never a blend (pinned
//! by `tests/serve_epoch.rs`).
//!
//! For graphs too big for one engine, [`shard::ShardedService`] splits
//! the graph into K locality-based shards, runs one engine + epoch cell
//! per shard, scatter-gathers the five operators, and routes each delta
//! to only the shards it touches — see the [`shard`] module docs.

pub mod admission;
mod epoch;
pub mod ingest;
mod query;
mod session;
pub mod shard;

pub use admission::{AdmissionConfig, AdmissionController, Permit};
pub use epoch::EpochCell;
pub use ingest::{DeltaBatch, IngestPipeline, IngestStats, TopicBatcher, WindowReport};
pub use query::{DeltaCounters, Query, QueryResponse, QueryService};
pub use session::{OpStats, Operator, Served, Session, SessionStats};
pub use shard::{ShardSwap, ShardedService, ShardedStats};

use crate::budget::PriorityClass;
use crate::engine::Octopus;
use crate::offline::StageReuse;
use crate::Result;
use octopus_graph::delta::{self, GraphDelta};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One generation of the served engine: the engine plus its epoch id.
pub struct Epoch {
    id: u64,
    engine: Octopus,
}

impl Epoch {
    /// The epoch id (0 for the engine the service started with, +1 per
    /// swap).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The engine serving this epoch.
    pub fn engine(&self) -> &Octopus {
        &self.engine
    }
}

/// What one flush did: the batch it coalesced and the rebuild it paid.
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// Id of the epoch the flush installed.
    pub epoch: u64,
    /// Deltas coalesced into this epoch's graph.
    pub deltas_applied: usize,
    /// Wall-clock time of the whole flush (delta application + engine
    /// rebuild + swap).
    pub rebuild_time: Duration,
    /// Whether the rebuilt engine's offline artifacts were fully reloaded
    /// from the artifact cache (only possible with a cache directory).
    pub cache_hit: bool,
    /// Per-stage reuse counters of the rebuild — with a cache directory,
    /// shows how much of the offline work the incremental machinery
    /// skipped per work unit: topic-granular for the weight stages
    /// (`spread-cap`/`pb-bound`/`mis-tables`, one unit per topic) and
    /// world-granular for `piks-worlds`. A topic-`z`-confined nudge batch
    /// therefore reports `Z-1/Z` reused on each weight stage.
    pub stage_reuse: Vec<StageReuse>,
}

/// Service-level counters, scraped via [`OctopusService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Id of the epoch currently serving.
    pub current_epoch: u64,
    /// Epoch swaps performed since construction.
    pub epochs_swapped: u64,
    /// Deltas successfully applied across all swaps.
    pub deltas_applied: u64,
    /// Flush attempts aborted by a failing delta or rebuild (the old epoch
    /// kept serving; the batch was re-queued for retry unless it had
    /// exhausted [`MAX_BATCH_RETRIES`]).
    pub batches_failed: u64,
    /// Batches dropped for good after failing [`MAX_BATCH_RETRIES`]
    /// consecutive flush attempts — the terminal error surface: a nonzero
    /// value means submitted deltas were lost and an operator should look
    /// at the rejected mutations.
    pub terminal_failures: u64,
    /// Deltas currently queued and not yet flushed (re-queued failed
    /// batches included).
    pub pending_deltas: usize,
    /// Queries served across all sessions.
    pub queries_served: u64,
    /// Queries admitted by the admission controller (0 when admission is
    /// off — every query runs unconditionally then).
    pub queries_admitted: u64,
    /// Queries shed with [`CoreError::Overloaded`](crate::CoreError),
    /// total across classes. Always equals the number of `Overloaded`
    /// errors sessions observed (pinned by `tests/admission.rs`).
    pub queries_shed: u64,
    /// Per-class shed counts, [`PriorityClass::ALL`] order.
    pub shed_by_class: [u64; 3],
}

/// How many consecutive flush attempts a failing batch gets before
/// [`OctopusService::apply_pending`] drops it and counts a
/// [`ServiceStats::terminal_failures`]. Transient failures (an unwritable
/// cache volume, a mid-compaction artifact) heal within a retry or two; a
/// deterministically inapplicable batch would otherwise wedge the queue
/// head forever.
pub const MAX_BATCH_RETRIES: u64 = 3;

/// The serving layer around one [`Octopus`] engine — see the module docs.
pub struct OctopusService {
    cell: EpochCell<Epoch>,
    pending: Mutex<Vec<GraphDelta>>,
    /// Serializes flushes; readers never touch it.
    flush: Mutex<()>,
    /// `Some(dir)` routes rebuilds through [`Octopus::open_or_build`] (or
    /// [`Octopus::open_mapped`] when `mapped` is set).
    cache_dir: Option<PathBuf>,
    /// With a cache directory: rebuild engines in **mapped mode** — the
    /// flush writes the new epoch's OCTA v5 artifact, then *remaps* it,
    /// so the swapped-in engine serves zero-copy off the page cache and
    /// the rebuild's decode work stays out of the read path.
    mapped: bool,
    epochs_swapped: AtomicU64,
    deltas_applied: AtomicU64,
    batches_failed: AtomicU64,
    terminal_failures: AtomicU64,
    /// Consecutive failed flush attempts of the current queue head (reset
    /// by any successful flush; only ever touched under the flush lock).
    flush_failures: AtomicU64,
    /// Test-only fault injection: fail this many upcoming rebuilds.
    inject_failures: AtomicU64,
    queries_served: AtomicU64,
    /// `Some` puts an admission controller in front of every session
    /// query (see [`OctopusService::with_admission`]).
    admission: Option<AdmissionController>,
}

impl OctopusService {
    /// Serve `engine` as epoch 0, rebuilding post-delta engines from
    /// scratch ([`Octopus::new`]).
    pub fn new(engine: Octopus) -> Self {
        Self::with_cache_dir_opt(engine, None)
    }

    /// Serve `engine` as epoch 0, rebuilding post-delta engines through
    /// the artifact cache at `dir` ([`Octopus::open_or_build`]) so each
    /// swap reuses every offline stage — and every PIKS world — the batch
    /// left valid.
    pub fn with_cache_dir(engine: Octopus, dir: impl Into<PathBuf>) -> Self {
        Self::with_cache_dir_opt(engine, Some(dir.into()))
    }

    /// Serve `engine` as epoch 0 and rebuild post-delta engines in
    /// **mapped mode** against the artifact cache at `dir`
    /// ([`Octopus::open_mapped`]): each flush builds off to the side
    /// (reusing every stage and PIKS world the batch left valid), writes
    /// the new epoch's OCTA v5 file, and swaps in an engine that serves
    /// zero-copy off the mapping — replicas sharing `dir` then share page
    /// cache, and a restart of any of them opens in `O(pages touched)`.
    pub fn with_mapped_cache(engine: Octopus, dir: impl Into<PathBuf>) -> Self {
        let mut s = Self::with_cache_dir_opt(engine, Some(dir.into()));
        s.mapped = true;
        s
    }

    fn with_cache_dir_opt(engine: Octopus, cache_dir: Option<PathBuf>) -> Self {
        OctopusService {
            cell: EpochCell::new(Arc::new(Epoch { id: 0, engine })),
            pending: Mutex::new(Vec::new()),
            flush: Mutex::new(()),
            cache_dir,
            mapped: false,
            epochs_swapped: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            batches_failed: AtomicU64::new(0),
            terminal_failures: AtomicU64::new(0),
            flush_failures: AtomicU64::new(0),
            inject_failures: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            admission: None,
        }
    }

    /// Put an admission controller in front of every session query:
    /// bounded per-class wait queues, at most `cfg.max_inflight` queries
    /// executing, shed-on-overload with
    /// [`CoreError::Overloaded`](crate::CoreError). Without this, every
    /// query runs unconditionally (the pre-admission behavior).
    pub fn with_admission(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = Some(AdmissionController::new(cfg));
        self
    }

    /// Acquire an execution slot for a query of `class`: `Ok(None)` when
    /// admission is off, `Ok(Some(permit))` once admitted (possibly after
    /// waiting in the class queue), `Err(Overloaded)` when shed.
    pub(crate) fn admit(&self, class: PriorityClass) -> Result<Option<Permit<'_>>> {
        match &self.admission {
            None => Ok(None),
            Some(ctl) => ctl.admit(class).map(Some),
        }
    }

    /// The currently serving epoch. The returned handle stays valid (and
    /// keeps answering identically) for as long as the caller holds it,
    /// across any number of swaps.
    pub fn snapshot(&self) -> Arc<Epoch> {
        self.cell.load()
    }

    /// Id of the currently serving epoch.
    pub fn current_epoch(&self) -> u64 {
        self.snapshot().id
    }

    /// Open a client session.
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Queue a graph mutation for the next flush. Never blocks readers and
    /// never triggers a rebuild by itself.
    pub fn submit(&self, delta: GraphDelta) {
        self.pending.lock().push(delta);
    }

    /// Queue several mutations at once (kept in order).
    pub fn submit_all(&self, deltas: impl IntoIterator<Item = GraphDelta>) {
        self.pending.lock().extend(deltas);
    }

    /// Drain the pending queue, coalesce it into one new graph, rebuild
    /// the engine, and atomically swap the epoch.
    ///
    /// Returns `Ok(None)` when nothing was pending. On `Ok(Some(report))`
    /// the new epoch is live: queries that grabbed their snapshot before
    /// the swap finish on the old engine, later ones see the new one, and
    /// both answer bit-identically to fresh engines built from their
    /// respective graphs.
    ///
    /// On `Err`, the old epoch keeps serving and the drained batch is
    /// **re-queued at the front** of the pending queue (ahead of deltas
    /// submitted meanwhile, preserving submission order), so a transient
    /// failure — an unwritable cache volume, a racing compaction — costs a
    /// retry, not the mutations. A batch that keeps failing is dropped
    /// after [`MAX_BATCH_RETRIES`] consecutive attempts and surfaces as a
    /// [`ServiceStats::terminal_failures`] increment: an inapplicable
    /// delta (say, removing an edge another delta already removed) delays
    /// the queue for a bounded number of flushes, never poisons the
    /// service, and never wedges the queue head forever. Until then the
    /// failing batch blocks later deltas (head-of-line) — deliberate,
    /// because deltas are order-dependent.
    ///
    /// Flushes serialize among themselves; deltas submitted while a flush
    /// is rebuilding wait for the next flush. Readers are never blocked:
    /// the rebuild runs entirely off to the side, and the swap itself is
    /// one atomic pointer store.
    pub fn apply_pending(&self) -> Result<Option<SwapReport>> {
        let _exclusive = self.flush.lock();
        let batch: Vec<GraphDelta> = std::mem::take(&mut *self.pending.lock());
        if batch.is_empty() {
            return Ok(None);
        }
        let start = Instant::now();
        let base = self.snapshot();
        let rebuilt = match self.rebuild(&base, &batch) {
            Ok(r) => r,
            Err(e) => {
                self.note_flush_failure(batch);
                return Err(e);
            }
        };
        self.flush_failures.store(0, SeqCst);
        let report = SwapReport {
            epoch: base.id + 1,
            deltas_applied: batch.len(),
            rebuild_time: start.elapsed(),
            cache_hit: rebuilt.cache_hit(),
            stage_reuse: rebuilt.stage_reuse().to_vec(),
        };
        let old = self.cell.swap(Arc::new(Epoch {
            id: base.id + 1,
            engine: rebuilt,
        }));
        drop(old); // in-flight queries may still hold their own snapshots
        self.epochs_swapped.fetch_add(1, SeqCst);
        self.deltas_applied.fetch_add(batch.len() as u64, SeqCst);
        Ok(Some(report))
    }

    /// Coalesce `batch` onto `base`'s graph and build the replacement
    /// engine (no swap; pure function of its inputs plus the cache dir).
    fn rebuild(&self, base: &Epoch, batch: &[GraphDelta]) -> Result<Octopus> {
        let graph = delta::apply_all(base.engine.graph(), batch)?;
        if self.inject_failures.load(SeqCst) > 0 {
            self.inject_failures.fetch_sub(1, SeqCst);
            return Err(crate::CoreError::Artifact(
                "injected transient rebuild failure".into(),
            ));
        }
        let model = base.engine.model().clone();
        let config = base.engine.config().clone();
        let rebuilt = match &self.cache_dir {
            Some(dir) if self.mapped => Octopus::open_mapped(graph, model, config, dir),
            Some(dir) => Octopus::open_or_build(graph, model, config, dir),
            None => Octopus::new(graph, model, config),
        }?;
        Ok(rebuilt.with_user_keywords(base.engine.user_keywords().clone()))
    }

    /// Bookkeeping for one failed flush attempt: count it, and either
    /// re-queue `batch` at the queue front or — after [`MAX_BATCH_RETRIES`]
    /// consecutive failures — drop it and record the terminal failure.
    /// Only ever called under the flush lock.
    fn note_flush_failure(&self, batch: Vec<GraphDelta>) {
        self.batches_failed.fetch_add(1, SeqCst);
        let failures = self.flush_failures.fetch_add(1, SeqCst) + 1;
        if failures >= MAX_BATCH_RETRIES {
            self.flush_failures.store(0, SeqCst);
            self.terminal_failures.fetch_add(1, SeqCst);
            return; // batch dropped for good
        }
        let mut pending = self.pending.lock();
        let mut requeued = batch;
        requeued.append(&mut pending);
        *pending = requeued;
    }

    /// Test-only fault injection: make the next `n` flush attempts fail
    /// after delta application, as a transiently failing rebuild would.
    /// Genuine rebuild failures are deterministic (a bad delta fails every
    /// retry), so the retry path is only reachable through this hook.
    #[doc(hidden)]
    pub fn fail_next_rebuilds(&self, n: u64) {
        self.inject_failures.store(n, SeqCst);
    }

    /// Spawn a background thread that flushes the pending queue whenever
    /// it is non-empty, polling every `poll`. Failed batches are counted
    /// in [`ServiceStats::batches_failed`] and serving continues on the
    /// old epoch. Dropping (or [`stop`](RebuilderHandle::stop)ping) the
    /// returned handle shuts the thread down after its current flush.
    pub fn spawn_rebuilder(self: &Arc<Self>, poll: Duration) -> RebuilderHandle {
        let service = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !stop_flag.load(SeqCst) {
                if !service.pending.lock().is_empty() {
                    // errors are reflected in batches_failed; the rebuilder
                    // keeps serving the old epoch and keeps polling
                    let _ = service.apply_pending();
                }
                std::thread::sleep(poll);
            }
        });
        RebuilderHandle {
            stop,
            join: Some(join),
        }
    }

    /// Current service-level counters.
    pub fn stats(&self) -> ServiceStats {
        let (admitted, shed) = self
            .admission
            .as_ref()
            .map(|a| a.counters())
            .unwrap_or(([0; 3], [0; 3]));
        ServiceStats {
            current_epoch: self.current_epoch(),
            epochs_swapped: self.epochs_swapped.load(SeqCst),
            deltas_applied: self.deltas_applied.load(SeqCst),
            batches_failed: self.batches_failed.load(SeqCst),
            terminal_failures: self.terminal_failures.load(SeqCst),
            pending_deltas: self.pending.lock().len(),
            queries_served: self.queries_served.load(SeqCst),
            queries_admitted: admitted.iter().sum(),
            queries_shed: shed.iter().sum(),
            shed_by_class: shed,
        }
    }

    pub(crate) fn note_query(&self) {
        self.queries_served.fetch_add(1, SeqCst);
    }
}

/// Handle on a [`spawn_rebuilder`](OctopusService::spawn_rebuilder)
/// thread; stops it on drop.
pub struct RebuilderHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl RebuilderHandle {
    /// Stop the rebuilder and wait for it to exit (pending deltas stay
    /// queued for a later manual flush).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for RebuilderHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
