//! Fingerprint-keyed on-disk persistence for [`OfflineArtifacts`] — the
//! cache that lets a process restart skip the whole offline pipeline.
//!
//! ## Cache key
//!
//! A cached artifact file is only valid for the exact inputs that produced
//! it, so the key is a [`Fingerprint`] over all three:
//!
//! * **graph** — FNV-1a over the canonical [`octopus_graph::codec`]
//!   encoding (topology, per-edge topic weights, names — names feed the
//!   autocomplete artifact, so they belong in the key);
//! * **config** — FNV-1a over every [`OctopusConfig`] field except the
//!   seed, each hashed by exact bit pattern;
//! * **seed** — the master RNG seed, kept as its own component (the
//!   roadmap's incremental-rebuild work keys invalidation off the triple).
//!
//! ## File format (little-endian)
//!
//! ```text
//! magic "OCTA" | version u16
//! graph_fp u64 | config_fp u64 | seed u64
//! payload_len u64 | payload_checksum u64 (FNV-1a over the payload bytes)
//! payload:
//!   cap            f64
//!   pb?            u8 flag | safety f64 | Z u32 | N u32 | Z×N f64
//!   mis?           u8 flag | Z u32 | per topic: count u32,
//!                  count × (node u32, gain f64) sorted by node
//!   samples        u32 count | per sample: Z u32, Z × f64 γ,
//!                  seed count u32 + u32 ids, spread f64
//!   piks index     see [`InfluencerIndex::encode_into`]
//!   autocomplete   see [`Autocomplete::encode_into`]
//! ```
//!
//! The checksum makes in-place corruption (bit flips, partial writes)
//! detectable *before* the structural decode runs, so a damaged cache file
//! degrades to a rebuild instead of a panic or — worse — silently wrong
//! tables. Stage timings are telemetry, not artifact state, and are not
//! persisted; a loaded artifact reports a single
//! [`STAGE_ARTIFACT_LOAD`] timing instead.

use super::OfflineArtifacts;
use crate::autocomplete::Autocomplete;
use crate::engine::{KimEngineChoice, OctopusConfig};
use crate::kim::bounds::{BoundKind, PrecompBound};
use crate::kim::topic_sample::TopicSample;
use crate::kim::MisKim;
use crate::piks::InfluencerIndex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use octopus_graph::wire::{self, Fnv64, WireError};
use octopus_graph::{codec as graph_codec, NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAGIC: &[u8; 4] = b"OCTA";
const VERSION: u16 = 1;
/// Bytes before the payload: magic + version + 3 fingerprint words +
/// payload length + payload checksum.
const HEADER_LEN: usize = 4 + 2 + 8 * 3 + 8 + 8;

/// Synthetic stage name reported when artifacts are loaded from cache.
pub const STAGE_ARTIFACT_LOAD: &str = "artifact-load";
/// Synthetic stage name reported for writing a fresh build to cache.
pub const STAGE_ARTIFACT_STORE: &str = "artifact-store";

/// Errors from artifact (de)serialization and cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Payload is truncated, malformed, or fails its checksum.
    Corrupt(String),
    /// The file was written by an incompatible codec version.
    Version(u16),
    /// The file is valid but keyed to different inputs.
    Mismatch {
        /// Key the caller expects.
        expected: Fingerprint,
        /// Key stored in the file.
        found: Fingerprint,
    },
    /// The file could not be read at all.
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Corrupt(m) => write!(f, "corrupt artifact payload: {m}"),
            PersistError::Version(v) => write!(f, "unsupported artifact version {v}"),
            PersistError::Mismatch { expected, found } => write!(
                f,
                "artifact fingerprint mismatch: expected {expected}, found {found}"
            ),
            PersistError::Io(m) => write!(f, "artifact io error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        PersistError::Corrupt(e.0)
    }
}

/// The cache key of one offline build: `(graph, config, seed)`.
///
/// Any perturbation of the graph (an edge, a weight, a name), of any config
/// field, or of the seed produces a different fingerprint — pinned by the
/// `proptest_persist` sensitivity suite — so a stale cache file can never
/// masquerade as current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Hash of the canonical graph encoding (topology + weights + names).
    pub graph: u64,
    /// Hash of every artifact-relevant config field except the seed.
    pub config: u64,
    /// The master RNG seed, verbatim.
    pub seed: u64,
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x}-{:016x}-{:016x}",
            self.graph, self.config, self.seed
        )
    }
}

impl Fingerprint {
    /// Compute the cache key for building `graph` under `config`.
    ///
    /// The graph component streams the canonical encoding through the
    /// hasher ([`graph_codec::hash`]) rather than materializing the byte
    /// buffer — `compute` runs on every [`open_or_build`], including the
    /// fast cache-hit path, and must not transiently copy a large graph.
    ///
    /// [`open_or_build`]: crate::engine::Octopus::open_or_build
    pub fn compute(graph: &TopicGraph, config: &OctopusConfig) -> Self {
        Fingerprint {
            graph: graph_codec::hash(graph),
            config: config_fingerprint(config),
            seed: config.seed,
        }
    }

    /// The cache file name for this key.
    pub fn file_name(&self) -> String {
        format!("octopus-artifacts-{self}.octa")
    }

    /// The cache file path under `cache_dir`.
    pub fn cache_path(&self, cache_dir: &Path) -> PathBuf {
        cache_dir.join(self.file_name())
    }
}

/// Hash every config field except the seed, each by exact bit pattern.
///
/// Online-only fields (query cache, path count, PIKS thresholds) are
/// deliberately included: a conservative key can only cause a spurious
/// rebuild, never a stale artifact — and it keeps the sensitivity contract
/// simple ("any config change changes the key").
fn config_fingerprint(config: &OctopusConfig) -> u64 {
    let mut h = Fnv64::new();
    match config.kim {
        KimEngineChoice::Naive => {
            h.write_u32(0);
        }
        KimEngineChoice::Mis => {
            h.write_u32(1);
        }
        KimEngineChoice::BestEffort(bound) => {
            h.write_u32(2).write_u32(bound_tag(bound));
        }
        KimEngineChoice::TopicSample {
            bound,
            extra_samples,
            direct_eps,
        } => {
            h.write_u32(3)
                .write_u32(bound_tag(bound))
                .write_u64(extra_samples as u64)
                .write_f64(direct_eps);
        }
    }
    h.write_f64(config.mia_theta)
        .write_u64(config.k_max as u64)
        .write_u64(config.mis_rr_per_topic as u64)
        .write_u64(config.piks_index_size as u64)
        .write_f64(config.pb_safety)
        .write_u32(config.lg_depth)
        .write_f64(config.lg_safety)
        .write_f64(config.piks.min_posterior_consistency)
        .write_f64(config.piks.min_pairwise_consistency)
        .write_u64(config.top_paths as u64)
        .write_u64(config.cache_capacity as u64)
        .write_f64(config.cache_tolerance);
    h.finish()
}

fn bound_tag(b: BoundKind) -> u32 {
    match b {
        BoundKind::Precomputation => 0,
        BoundKind::LocalGraph => 1,
        BoundKind::Neighborhood => 2,
        BoundKind::Trivial => 3,
    }
}

/// Serialize `artifacts` under the cache key `fp`.
pub fn encode(artifacts: &OfflineArtifacts, fp: &Fingerprint) -> Bytes {
    // reserve the dominant, exactly-computable sections upfront (PB tables
    // alone are Z×N×8 bytes at production scale; the trie is estimated) so
    // a large encode doesn't crawl through doubling reallocations
    let pb_bytes = artifacts.pb.as_ref().map_or(1, |pb| {
        let (sigma, _) = pb.parts();
        1 + 16 + sigma.len() * (4 + sigma.first().map_or(0, Vec::len) * 8)
    });
    let mis_bytes = artifacts.mis.as_ref().map_or(1, |m| {
        1 + 4 + m.gains().iter().map(|t| 4 + t.len() * 12).sum::<usize>()
    });
    let sample_bytes: usize = 4 + artifacts
        .samples
        .iter()
        .map(|s| 16 + s.gamma.num_topics() * 8 + s.seeds.len() * 4)
        .sum::<usize>();
    let piks = artifacts.piks_index.stats();
    let piks_bytes =
        44 + artifacts.piks_index.len() * 24 + piks.stored_nodes * 8 + piks.stored_edges * 8;
    let trie_bytes = 8 + artifacts.names.len() * 64;
    let mut payload =
        BytesMut::with_capacity(8 + pb_bytes + mis_bytes + sample_bytes + piks_bytes + trie_bytes);
    payload.put_f64_le(artifacts.cap);

    match &artifacts.pb {
        Some(pb) => {
            payload.put_u8(1);
            let (sigma, safety) = pb.parts();
            payload.put_f64_le(safety);
            payload.put_u32_le(sigma.len() as u32);
            payload.put_u32_le(sigma.first().map_or(0, Vec::len) as u32);
            for row in sigma {
                for &s in row {
                    payload.put_f64_le(s);
                }
            }
        }
        None => payload.put_u8(0),
    }

    match &artifacts.mis {
        Some(mis) => {
            payload.put_u8(1);
            payload.put_u32_le(mis.gains().len() as u32);
            for table in mis.gains() {
                // canonical order: HashMap iteration is arbitrary, sort by id
                let mut pairs: Vec<(NodeId, f64)> = table.iter().map(|(&u, &g)| (u, g)).collect();
                pairs.sort_by_key(|&(u, _)| u);
                payload.put_u32_le(pairs.len() as u32);
                for (u, g) in pairs {
                    payload.put_u32_le(u.0);
                    payload.put_f64_le(g);
                }
            }
        }
        None => payload.put_u8(0),
    }

    payload.put_u32_le(artifacts.samples.len() as u32);
    for s in &artifacts.samples {
        payload.put_u32_le(s.gamma.num_topics() as u32);
        for &g in s.gamma.as_slice() {
            payload.put_f64_le(g);
        }
        payload.put_u32_le(s.seeds.len() as u32);
        for &u in &s.seeds {
            payload.put_u32_le(u.0);
        }
        payload.put_f64_le(s.spread);
    }

    artifacts.piks_index.encode_into(&mut payload);
    artifacts.names.encode_into(&mut payload);

    let payload = payload.freeze();
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(fp.graph);
    buf.put_u64_le(fp.config);
    buf.put_u64_le(fp.seed);
    buf.put_u64_le(payload.len() as u64);
    buf.put_u64_le(wire::fnv1a(&payload));
    buf.put_slice(&payload);
    buf.freeze()
}

/// Deserialize artifacts from `raw`, verifying magic, version, fingerprint
/// and payload checksum before any structural decode.
///
/// `graph` is the graph the artifacts will serve: every stored dimension
/// and id is validated against it (PB/MIS table shapes, sample seeds, PIKS
/// node and edge ids, trie user ids), so a payload that is internally
/// consistent but keyed to the wrong inputs — or maliciously stamped with
/// the right fingerprint — fails the load instead of panicking at query
/// time. It also bounds every allocation: no stored count can exceed what
/// the graph's own dimensions admit.
///
/// The returned artifacts carry no stage timings (telemetry is not
/// persisted); [`crate::engine::Octopus::open_or_build`] substitutes an
/// [`STAGE_ARTIFACT_LOAD`] timing.
pub fn decode(
    raw: &[u8],
    expected: &Fingerprint,
    graph: &TopicGraph,
) -> Result<OfflineArtifacts, PersistError> {
    let mut buf = raw;
    wire::need(&buf, HEADER_LEN, "artifact header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::Corrupt(
            "bad magic (not an OCTA payload)".into(),
        ));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(PersistError::Version(version));
    }
    let found = Fingerprint {
        graph: buf.get_u64_le(),
        config: buf.get_u64_le(),
        seed: buf.get_u64_le(),
    };
    if found != *expected {
        return Err(PersistError::Mismatch {
            expected: *expected,
            found,
        });
    }
    let payload_len = buf.get_u64_le() as usize;
    let checksum = buf.get_u64_le();
    if buf.remaining() != payload_len {
        return Err(PersistError::Corrupt(format!(
            "payload length {} does not match header {payload_len}",
            buf.remaining()
        )));
    }
    if wire::fnv1a(buf) != checksum {
        return Err(PersistError::Corrupt(
            "payload checksum mismatch (file corrupted in place)".into(),
        ));
    }
    decode_payload(&mut buf, graph)
}

fn decode_payload(buf: &mut &[u8], graph: &TopicGraph) -> Result<OfflineArtifacts, PersistError> {
    let num_topics = graph.num_topics();
    let node_count = graph.node_count();
    wire::need(buf, 8 + 1, "spread cap")?;
    let cap = buf.get_f64_le();

    let pb = if buf.get_u8() != 0 {
        wire::need(buf, 8 + 4 + 4, "pb header")?;
        let safety = buf.get_f64_le();
        let z = buf.get_u32_le() as usize;
        let n = buf.get_u32_le() as usize;
        if z != num_topics || n != node_count {
            return Err(PersistError::Corrupt(format!(
                "pb tables are {z}×{n}, graph is {num_topics}×{node_count}"
            )));
        }
        wire::need(buf, z.saturating_mul(n).saturating_mul(8), "pb tables")?;
        let mut sigma = Vec::with_capacity(z);
        for _ in 0..z {
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(buf.get_f64_le());
            }
            sigma.push(row);
        }
        Some(PrecompBound::from_parts(sigma, safety))
    } else {
        None
    };

    wire::need(buf, 1, "mis flag")?;
    let has_mis = buf.get_u8() != 0;
    let mis = if has_mis {
        wire::need(buf, 4, "mis topic count")?;
        let z = buf.get_u32_le() as usize;
        if z != num_topics {
            return Err(PersistError::Corrupt(format!(
                "mis tables cover {z} topics, graph has {num_topics}"
            )));
        }
        let mut gains = Vec::with_capacity(z);
        for _ in 0..z {
            wire::need(buf, 4, "mis table size")?;
            let count = buf.get_u32_le() as usize;
            wire::need(buf, count.saturating_mul(12), "mis table entries")?;
            let mut table = HashMap::with_capacity(count.min(node_count));
            for _ in 0..count {
                let u = NodeId(buf.get_u32_le());
                if u.index() >= node_count {
                    return Err(PersistError::Corrupt(format!(
                        "mis table references node {u} outside the graph ({node_count} nodes)"
                    )));
                }
                let g = buf.get_f64_le();
                table.insert(u, g);
            }
            gains.push(table);
        }
        Some(MisKim::from_parts(gains))
    } else {
        None
    };

    wire::need(buf, 4, "sample count")?;
    let sample_count = buf.get_u32_le() as usize;
    let mut samples = Vec::with_capacity(sample_count.min(1 << 16));
    for _ in 0..sample_count {
        wire::need(buf, 4, "sample gamma size")?;
        let z = buf.get_u32_le() as usize;
        if z != num_topics {
            return Err(PersistError::Corrupt(format!(
                "topic sample has {z} topics, graph has {num_topics}"
            )));
        }
        wire::need(buf, z.saturating_mul(8), "sample gamma")?;
        let mut gamma = Vec::with_capacity(z);
        for _ in 0..z {
            gamma.push(buf.get_f64_le());
        }
        let gamma = TopicDistribution::from_normalized(gamma)
            .map_err(|e| PersistError::Corrupt(format!("sample gamma invalid: {e}")))?;
        wire::need(buf, 4, "sample seed count")?;
        let k = buf.get_u32_le() as usize;
        wire::need(buf, k.saturating_mul(4) + 8, "sample seeds")?;
        let mut seeds = Vec::with_capacity(k);
        for _ in 0..k {
            let u = NodeId(buf.get_u32_le());
            if u.index() >= node_count {
                return Err(PersistError::Corrupt(format!(
                    "topic sample seeds node {u} outside the graph ({node_count} nodes)"
                )));
            }
            seeds.push(u);
        }
        let spread = buf.get_f64_le();
        samples.push(TopicSample {
            gamma,
            seeds,
            spread,
        });
    }

    let piks_index = InfluencerIndex::decode_from(buf, node_count, graph.edge_count())?;
    let names = Autocomplete::decode_from(buf, node_count)?;
    if buf.remaining() != 0 {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after artifact payload",
            buf.remaining()
        )));
    }

    Ok(OfflineArtifacts {
        cap,
        pb,
        mis,
        samples,
        piks_index,
        names,
        timings: Vec::new(),
        build_total: Duration::ZERO,
    })
}

/// Write `artifacts` to `path` atomically (write to a sibling temp file,
/// then rename) so a crash mid-write never leaves a torn cache file under
/// the final name. The temp name embeds the process id **and** a per-call
/// counter, so neither two replicas on a shared cache directory nor two
/// threads of one process (engines are built concurrently in multi-tenant
/// services) ever interleave writes into the same temp file — last rename
/// wins, and every renamed file is whole. A failed write or rename removes
/// its temp file rather than leaking it into the cache directory.
pub fn save(artifacts: &OfflineArtifacts, fp: &Fingerprint, path: &Path) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!(
        "octa.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result =
        std::fs::write(&tmp, encode(artifacts, fp)).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Load artifacts from `path`, verifying them against the expected key and
/// the live `graph` (see [`decode`]).
pub fn load(
    path: &Path,
    expected: &Fingerprint,
    graph: &TopicGraph,
) -> Result<OfflineArtifacts, PersistError> {
    let raw = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    decode(&raw, expected, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline;
    use octopus_graph::GraphBuilder;

    /// Small 2-topic graph with names (so the autocomplete trie has content).
    fn tiny_graph() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..14 {
            b.add_node(format!("user-{i}"));
        }
        for v in 2..=7u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6)]).unwrap();
        }
        for v in 8..=13u32 {
            b.add_edge(NodeId(1), NodeId(v), &[(1, 0.6)]).unwrap();
        }
        for v in 2..=4u32 {
            b.add_edge(NodeId(v), NodeId(v + 6), &[(0, 0.2), (1, 0.15)])
                .unwrap();
        }
        b.build().unwrap()
    }

    fn config(kim: KimEngineChoice) -> OctopusConfig {
        OctopusConfig {
            kim,
            piks_index_size: 300,
            mis_rr_per_topic: 600,
            k_max: 4,
            seed: 0xCAFE,
            ..Default::default()
        }
    }

    /// Every engine flavour, so every optional artifact field is exercised.
    fn all_configs() -> Vec<OctopusConfig> {
        vec![
            config(KimEngineChoice::Mis),
            config(KimEngineChoice::BestEffort(BoundKind::Precomputation)),
            config(KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 3,
                direct_eps: 0.05,
            }),
            config(KimEngineChoice::Naive),
        ]
    }

    /// Field-by-field equality of everything that is artifact state (the
    /// timings are telemetry and intentionally not persisted).
    fn assert_artifacts_equal(a: &OfflineArtifacts, b: &OfflineArtifacts, what: &str) {
        assert_eq!(a.cap, b.cap, "{what}: cap");
        assert_eq!(a.pb, b.pb, "{what}: pb tables");
        assert_eq!(a.mis, b.mis, "{what}: mis tables");
        assert_eq!(a.samples, b.samples, "{what}: topic samples");
        assert_eq!(a.piks_index, b.piks_index, "{what}: piks worlds");
        assert_eq!(a.names, b.names, "{what}: autocomplete trie");
    }

    #[test]
    fn round_trip_every_field_every_engine() {
        let g = tiny_graph();
        for cfg in all_configs() {
            let fp = Fingerprint::compute(&g, &cfg);
            let art = offline::build(&g, &cfg);
            let back = decode(&encode(&art, &fp), &fp, &g)
                .unwrap_or_else(|e| panic!("decode under {:?}: {e}", cfg.kim));
            assert_artifacts_equal(&art, &back, &format!("{:?}", cfg.kim));
            assert!(back.timings.is_empty(), "telemetry must not round-trip");
        }
    }

    #[test]
    fn loaded_artifacts_answer_queries_identically() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let art = offline::build(&g, &cfg);
        let back = decode(&encode(&art, &fp), &fp, &g).unwrap();
        use crate::kim::KimAlgorithm;
        let gamma = TopicDistribution::uniform(2);
        let a = art.mis.as_ref().unwrap().select(&gamma, 3);
        let b = back.mis.as_ref().unwrap().select(&gamma, 3);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.spread, b.spread);
        // PIKS sessions over the decoded index agree bit-for-bit
        let mut sa = art.piks_index.session(&g, &gamma);
        let mut sb = back.piks_index.session(&g, &gamma);
        assert_eq!(sa.spread_of(NodeId(0)), sb.spread_of(NodeId(0)));
        // the trie still resolves names
        assert_eq!(back.names.lookup("user-3"), Some(NodeId(3)));
    }

    #[test]
    fn rejects_bad_magic() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let mut raw = encode(&offline::build(&g, &cfg), &fp).to_vec();
        raw[0] = b'X';
        assert!(matches!(
            decode(&raw, &fp, &g),
            Err(PersistError::Corrupt(m)) if m.contains("magic")
        ));
    }

    #[test]
    fn rejects_stale_version() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let mut raw = encode(&offline::build(&g, &cfg), &fp).to_vec();
        raw[4] = 0xFF;
        raw[5] = 0xFF;
        assert!(matches!(
            decode(&raw, &fp, &g),
            Err(PersistError::Version(0xFFFF))
        ));
    }

    #[test]
    fn rejects_foreign_fingerprint() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let raw = encode(&offline::build(&g, &cfg), &fp);
        let other = Fingerprint {
            seed: fp.seed ^ 1,
            ..fp
        };
        assert!(matches!(
            decode(&raw, &other, &g),
            Err(PersistError::Mismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncations_everywhere() {
        // mirror store.rs::rejects_truncations_everywhere, but exhaustively:
        // EVERY strict prefix must fail, at any offset — no read may panic
        // or accept a cut payload.
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::TopicSample {
            bound: BoundKind::Precomputation,
            extra_samples: 2,
            direct_eps: 0.05,
        });
        let fp = Fingerprint::compute(&g, &cfg);
        let raw = encode(&offline::build(&g, &cfg), &fp);
        for cut in 0..raw.len() {
            assert!(
                decode(&raw[..cut], &fp, &g).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn detects_single_byte_corruption_in_payload() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let clean = encode(&offline::build(&g, &cfg), &fp).to_vec();
        // flip one byte at several payload offsets: the checksum must catch
        // every one of them (structural decode alone would accept many)
        for frac in [0.0, 0.25, 0.5, 0.75, 0.999] {
            let mut raw = clean.clone();
            let pos = HEADER_LEN + ((raw.len() - HEADER_LEN - 1) as f64 * frac) as usize;
            raw[pos] ^= 0x40;
            assert!(
                matches!(decode(&raw, &fp, &g), Err(PersistError::Corrupt(_))),
                "flip at {pos} must be detected"
            );
        }
    }

    #[test]
    fn rejects_payload_keyed_to_wrong_graph() {
        // a writer can stamp any fingerprint it likes into the header, so
        // passing the fingerprint check proves nothing about the content:
        // decode must validate every dimension and id against the live
        // graph instead of panicking at query time
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let art = offline::build(&g, &cfg);

        // (1) a graph with a different node count: the PIKS index header
        // disagrees immediately
        let small = {
            let mut b = GraphBuilder::new(2);
            for i in 0..4 {
                b.add_node(format!("s-{i}"));
            }
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5)]).unwrap();
            b.build().unwrap()
        };
        let fp_small = Fingerprint::compute(&small, &cfg);
        let stamped = encode(&art, &fp_small);
        assert!(
            matches!(
                decode(&stamped, &fp_small, &small),
                Err(PersistError::Corrupt(_))
            ),
            "foreign payload with a forged key must fail validation"
        );

        // (2) same node count but fewer edges: stored PIKS EdgeIds fall
        // outside the sparse graph and must be rejected, not dereferenced
        let sparse = {
            let mut b = GraphBuilder::new(2);
            for i in 0..14 {
                b.add_node(format!("user-{i}"));
            }
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5)]).unwrap();
            b.build().unwrap()
        };
        let fp_sparse = Fingerprint::compute(&sparse, &cfg);
        let stamped = encode(&art, &fp_sparse);
        assert!(
            matches!(
                decode(&stamped, &fp_sparse, &sparse),
                Err(PersistError::Corrupt(_))
            ),
            "stored edge ids outside the live graph must fail validation"
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let mut raw = encode(&offline::build(&g, &cfg), &fp).to_vec();
        raw.push(0xEE);
        assert!(
            decode(&raw, &fp, &g).is_err(),
            "trailing bytes must be rejected"
        );
    }

    #[test]
    fn file_save_load_round_trip() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let art = offline::build(&g, &cfg);
        let dir = std::env::temp_dir().join("octopus_persist_test");
        let path = fp.cache_path(&dir);
        save(&art, &fp, &path).unwrap();
        let back = load(&path, &fp, &g).unwrap();
        assert_artifacts_equal(&art, &back, "file round trip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_not_panic() {
        let g = tiny_graph();
        let fp = Fingerprint {
            graph: 1,
            config: 2,
            seed: 3,
        };
        let path = std::env::temp_dir().join("octopus_persist_never_written.octa");
        assert!(matches!(load(&path, &fp, &g), Err(PersistError::Io(_))));
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let a = Fingerprint::compute(&g, &cfg);
        let b = Fingerprint::compute(&g, &cfg);
        assert_eq!(a, b, "identical inputs must key identically");
        let reseeded = Fingerprint::compute(
            &g,
            &OctopusConfig {
                seed: cfg.seed ^ 1,
                ..cfg.clone()
            },
        );
        assert_ne!(a.seed, reseeded.seed);
        let retuned = Fingerprint::compute(
            &g,
            &OctopusConfig {
                mia_theta: cfg.mia_theta * 0.5,
                ..cfg
            },
        );
        assert_ne!(a.config, retuned.config);
    }
}
