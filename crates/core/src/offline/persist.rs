//! Fingerprint-keyed on-disk persistence for [`OfflineArtifacts`] — the
//! cache that lets a process restart skip the offline pipeline, and (since
//! OCTA v2) lets a *changed* graph skip every stage whose inputs did not
//! change.
//!
//! ## Why per-stage keys
//!
//! OCTA v1 keyed the whole artifact file on one `(graph, config, seed)`
//! hash, so a single renamed user or nudged edge weight invalidated tables
//! that never read names or weights. v2 split the file into independently
//! keyed **sections**, one per pipeline stage, each hashing only the inputs
//! that stage actually reads. v5 splits the three weight-dependent stages
//! one level further, into one section per **topic**:
//!
//! | section | units | key hashes (per unit) | survives |
//! |---|---|---|---|
//! | `spread-cap` | one per topic | topic-`z` weight slice | renames, reseeds, foreign-topic deltas |
//! | `pb-bound` | one per topic | topic-`z` weight slice, `mia_theta`, `pb_safety`, enabled | renames, reseeds, foreign-topic deltas |
//! | `mis-tables` | one per topic | topic-`z` weight slice, `k_max`, `mis_rr_per_topic`, seed, enabled | renames, foreign-topic deltas |
//! | `topic-samples` | one | topology, weights, kim-variant, `k_max`, bounds params, seed | renames, `direct_eps` tuning |
//! | `piks-worlds` | one (worlds inside) | `(n, world seed)` + a per-world footprint | any delta outside a world's BFS footprint |
//! | `autocomplete` | one | names + out-degrees | weight nudges, reseeds |
//!
//! The topic-`z` weight slice hash is
//! [`octopus_graph::codec::hash_weights_topic`] (it also pins the node
//! universe and topic count); `topology`/`weights`/names are the
//! whole-graph [`octopus_graph::codec`] input-slice hashes. The PIKS
//! section goes one level deeper still: each stored world carries a
//! [`crate::piks::footprint_hash`] over the edge set its reverse BFS
//! touched, so a k-edge delta rebuilds only the worlds that actually saw
//! those edges — and a weight nudge confined to topic-`z` edges rebuilds
//! only topic `z`'s cap/PB/MIS units plus those worlds.
//!
//! ## File format (OCTA v5, little-endian)
//!
//! The normative byte-level specification lives in `ARCHITECTURE.md`
//! (§"The OCTA v5 artifact container") and is pinned against this codec by
//! the `octa_format` integration test. Summary:
//!
//! ```text
//! magic "OCTA" | version u16 = 5 | pad u16 = 0
//! graph_fp u64 | config_fp u64 | seed u64      ← combined key (file name / diagnostics)
//! write_seq u64                                ← per-directory write sequence (prune order)
//! section_count u32 | pad u32 = 0              ← count = 3·Z + 3
//! section table: count × { tag u32 | pad u32 = 0 | key u64 | off u64 | len u64 | checksum u64 }
//! section payloads at their table offsets, zero-padded so each starts
//! 8-aligned; file length = last off + last len
//! ```
//!
//! A section's `tag` encodes both its stage and (for the topic-granular
//! stages) its topic: `tag = base | (z << 8)` with the base in the low
//! byte ([`tag_base`]) and the topic index above it ([`tag_topic`]) —
//! singleton sections use their bare base tag, and topic 0 of a
//! topic-granular stage is byte-identical to the old bare tag. The
//! canonical section order is all cap units ascending by topic, then all
//! PB units, then all MIS units, then samples / PIKS / names
//! ([`section_order`]).
//!
//! The flat layout exists for the memory-mapped read path
//! ([`super::view`]): every section records its absolute offset, starts
//! 8-aligned, and uses flat fixed-width in-section layouts, so an open can
//! serve queries straight off the mapped bytes — `O(pages touched)`, not
//! `O(file)`. Every section still carries its own FNV-1a checksum, so
//! corruption, torn writes, and truncation are detected **per section**:
//! the damaged unit misses, the intact ones (including the other topics of
//! the same stage) are still reused. On the decode path checksums are
//! verified before decoding; the mapped path defers them per section to
//! first touch ([`wire::section_range`] frames without hashing). A v1–v4
//! file fails the version check and is migrated by rebuild — the v5 writer
//! then replaces it for the same inputs under the same cache-file name
//! scheme.
//!
//! ## Lookup
//!
//! [`lookup`] first tries the exact combined-fingerprint file name, then
//! scans the cache directory's other `.octa` files, merging matching
//! sections across files — so after a graph delta (new combined
//! fingerprint, hence new file name) the previous epoch's file still
//! donates every section whose stage inputs are unchanged. After each
//! write-back, [`prune`] bounds the directory to [`MAX_CACHE_FILES`],
//! evicting oldest-first by modification time with the header's
//! `write_seq` breaking ties (coarse-mtime filesystems would otherwise
//! order a burst of delta write-backs arbitrarily). Stage timings are
//! telemetry, not artifact state, and are never persisted.

#![warn(missing_docs)]

use super::{MisTopicGains, OfflineArtifacts, PbTopicRow, ReuseSlots};
use crate::autocomplete::Autocomplete;
use crate::engine::{KimEngineChoice, OctopusConfig};
use crate::kim::bounds::{spread_cap_topic_key, BoundKind, PrecompBound};
use crate::kim::topic_sample::TopicSample;
use crate::kim::MisKim;
use crate::piks::InfluencerIndex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use octopus_graph::wire::{self, Fnv64, SectionEntry, WireError};
use octopus_graph::{codec as graph_codec, NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use std::path::{Path, PathBuf};

pub(crate) const MAGIC: &[u8; 4] = b"OCTA";
pub(crate) const VERSION: u16 = 5;
/// Bytes before the section table: magic + version + pad + 3 fingerprint
/// words + write sequence + section count + pad. 8-aligned by design so
/// the table (40-byte entries) and the first payload stay 8-aligned.
pub(crate) const HEADER_LEN: usize = 4 + 2 + 2 + 8 * 3 + 8 + 4 + 4;

/// Base section tag: one per-topic arrival-cap unit (`f64`).
pub const SECTION_CAP: u32 = 1;
/// Base section tag: one per-topic PB σ̂ row unit.
pub const SECTION_PB: u32 = 2;
/// Base section tag: one per-topic MIS gains-table unit.
pub const SECTION_MIS: u32 = 3;
/// Section tag: precomputed topic samples.
pub const SECTION_SAMPLES: u32 = 4;
/// Section tag: PIKS influencer-index worlds.
pub const SECTION_PIKS: u32 = 5;
/// Section tag: the autocomplete trie.
pub const SECTION_NAMES: u32 = 6;

/// The tag of one topic-granular section unit: base tag in the low byte,
/// topic index above it. Topic 0's tag equals the bare base tag.
pub const fn topic_tag(base: u32, z: usize) -> u32 {
    base | ((z as u32) << 8)
}

/// The stage a section tag belongs to (its low byte).
pub const fn tag_base(tag: u32) -> u32 {
    tag & 0xFF
}

/// The topic index a section tag carries (0 for singleton sections).
pub const fn tag_topic(tag: u32) -> usize {
    (tag >> 8) as usize
}

/// Section tags in canonical write order for a `num_topics`-topic graph:
/// every cap unit ascending by topic, then every PB unit, then every MIS
/// unit, then the three singleton sections (mirroring the stage DAG order
/// of [`super::STAGE_ORDER`]). `3·Z + 3` entries.
pub fn section_order(num_topics: usize) -> Vec<u32> {
    let mut order = Vec::with_capacity(3 * num_topics + 3);
    for base in [SECTION_CAP, SECTION_PB, SECTION_MIS] {
        for z in 0..num_topics {
            order.push(topic_tag(base, z));
        }
    }
    order.extend([SECTION_SAMPLES, SECTION_PIKS, SECTION_NAMES]);
    order
}

/// Synthetic stage name for reading cache files into memory (or mapping
/// them) on a full artifact hit.
pub const STAGE_ARTIFACT_MAP: &str = "artifact-map";
/// Synthetic stage name for header/table/checksum validation on a full
/// artifact hit.
pub const STAGE_ARTIFACT_VALIDATE: &str = "artifact-validate";
/// Synthetic stage name for decoding section payloads into their owned
/// forms on a full artifact hit (zero in mapped mode for the lazy
/// sections — that is the point of the mapped path).
pub const STAGE_ARTIFACT_DECODE: &str = "artifact-decode";
/// Synthetic stage name reported for writing a build to cache.
pub const STAGE_ARTIFACT_STORE: &str = "artifact-store";

/// Errors from artifact (de)serialization and cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The container framing is damaged (bad magic, unreadable table).
    /// Individual section damage is *not* an error — the section misses.
    Corrupt(String),
    /// The file was written by an incompatible codec version (v1 files land
    /// here and are migrated by rebuild).
    Version(u16),
    /// The file could not be read at all.
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Corrupt(m) => write!(f, "corrupt artifact container: {m}"),
            PersistError::Version(v) => write!(f, "unsupported artifact version {v}"),
            PersistError::Io(m) => write!(f, "artifact io error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        PersistError::Corrupt(e.0)
    }
}

/// The combined cache key of one offline build: `(graph, config, seed)`.
///
/// Since v2 this no longer gates reuse (the per-stage [`StageKeys`] do); it
/// names the cache file — one file per exact input triple — and stamps the
/// header for diagnostics. Any perturbation of the graph, of any config
/// field, or of the seed produces a different fingerprint — pinned by the
/// `proptest_persist` sensitivity suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Hash of the canonical graph encoding (topology + weights + names).
    pub graph: u64,
    /// Hash of every artifact-relevant config field except the seed.
    pub config: u64,
    /// The master RNG seed, verbatim.
    pub seed: u64,
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x}-{:016x}-{:016x}",
            self.graph, self.config, self.seed
        )
    }
}

impl Fingerprint {
    /// Compute the combined cache key for building `graph` under `config`.
    ///
    /// The graph component streams the canonical encoding through the
    /// hasher ([`graph_codec::hash`]) rather than materializing the byte
    /// buffer — `compute` runs on every [`open_or_build`], including the
    /// fast cache-hit path, and must not transiently copy a large graph.
    ///
    /// [`open_or_build`]: crate::engine::Octopus::open_or_build
    pub fn compute(graph: &TopicGraph, config: &OctopusConfig) -> Self {
        Fingerprint {
            graph: graph_codec::hash(graph),
            config: config_fingerprint(config),
            seed: config.seed,
        }
    }

    /// The cache file name for this key.
    pub fn file_name(&self) -> String {
        format!("octopus-artifacts-{self}.octa")
    }

    /// The cache file path under `cache_dir`.
    pub fn cache_path(&self, cache_dir: &Path) -> PathBuf {
        cache_dir.join(self.file_name())
    }
}

/// Hash every config field except the seed, each by exact bit pattern.
///
/// Online-only fields (query cache, path count, PIKS thresholds) are
/// deliberately included: a conservative key can only cause a spurious
/// rebuild, never a stale artifact — and it keeps the sensitivity contract
/// simple ("any config change changes the key"). The per-stage keys in
/// [`StageKeys`] are the precise ones; this combined key only names files.
fn config_fingerprint(config: &OctopusConfig) -> u64 {
    let mut h = Fnv64::new();
    match config.kim {
        KimEngineChoice::Naive => {
            h.write_u32(0);
        }
        KimEngineChoice::Mis => {
            h.write_u32(1);
        }
        KimEngineChoice::BestEffort(bound) => {
            h.write_u32(2).write_u32(bound_tag(bound));
        }
        KimEngineChoice::TopicSample {
            bound,
            extra_samples,
            direct_eps,
        } => {
            h.write_u32(3)
                .write_u32(bound_tag(bound))
                .write_u64(extra_samples as u64)
                .write_f64(direct_eps);
        }
    }
    h.write_f64(config.mia_theta)
        .write_u64(config.k_max as u64)
        .write_u64(config.mis_rr_per_topic as u64)
        .write_u64(config.piks_index_size as u64)
        .write_f64(config.pb_safety)
        .write_u32(config.lg_depth)
        .write_f64(config.lg_safety)
        .write_f64(config.piks.min_posterior_consistency)
        .write_f64(config.piks.min_pairwise_consistency)
        .write_u64(config.top_paths as u64)
        .write_u64(config.cache_capacity as u64)
        .write_f64(config.cache_tolerance);
    h.finish()
}

fn bound_tag(b: BoundKind) -> u32 {
    match b {
        BoundKind::Precomputation => 0,
        BoundKind::LocalGraph => 1,
        BoundKind::Neighborhood => 2,
        BoundKind::Trivial => 3,
    }
}

/// The per-unit cache keys of one offline build — the heart of the
/// incremental-rebuild machinery.
///
/// Each key hashes exactly the inputs its work unit reads (see the module
/// docs' table and each component's `input_key_topic`/`section_key`
/// documentation); the weight-dependent stages carry one key **per topic**
/// over that topic's weight slice. The invariants the `delta_invalidation`
/// tests pin:
///
/// * a node **rename** moves only `names`;
/// * a **weight nudge confined to topic-`z` edges** moves exactly index
///   `z` of `cap`/`pb`/`mis` (plus `samples`, which reads all weights) —
///   never `names`, the other topics' units, or the `piks` *section* key
///   (world-level footprints decide PIKS reuse);
/// * a **reseed** moves only `mis`/`samples`/`piks` (the randomized stages);
/// * an **edge insert** moves the units of the topics its probability
///   payload carries, `samples`, and — via per-world footprints over the
///   shifted edge ids — exactly the PIKS worlds that saw the change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageKeys {
    /// `spread-cap` per-topic unit keys.
    pub cap: Vec<u64>,
    /// `pb-bound` per-topic unit keys.
    pub pb: Vec<u64>,
    /// `mis-tables` per-topic unit keys.
    pub mis: Vec<u64>,
    /// `topic-samples` key.
    pub samples: u64,
    /// `piks-worlds` *section* key (derivation inputs; per-world footprints
    /// gate the content).
    pub piks: u64,
    /// `autocomplete` key.
    pub names: u64,
}

impl StageKeys {
    /// Compute every unit key for building `graph` under `config`.
    pub fn compute(graph: &TopicGraph, config: &OctopusConfig) -> Self {
        let topology = graph_codec::hash_topology(graph);
        let weights = graph_codec::hash_weights(graph);
        let weights_topic: Vec<u64> = (0..graph.num_topics())
            .map(|z| graph_codec::hash_weights_topic(graph, z))
            .collect();
        StageKeys {
            cap: weights_topic
                .iter()
                .map(|&w| spread_cap_topic_key(w))
                .collect(),
            pb: weights_topic
                .iter()
                .map(|&w| {
                    PrecompBound::input_key_topic(
                        w,
                        config.mia_theta,
                        config.pb_safety,
                        super::needs_pb(config),
                    )
                })
                .collect(),
            mis: weights_topic
                .iter()
                .map(|&w| {
                    MisKim::input_key_topic(
                        w,
                        config.k_max,
                        config.mis_rr_per_topic,
                        config.seed,
                        super::needs_mis(config),
                    )
                })
                .collect(),
            samples: topic_samples_key(topology, weights, config),
            piks: InfluencerIndex::section_key(
                graph.node_count(),
                config.seed ^ super::PIKS_WORLD_SEED_XOR,
            ),
            names: Autocomplete::input_key(graph),
        }
    }

    /// The expected key for a section tag (`None` for unknown tags or
    /// topic indices beyond this build's topic count).
    pub fn for_tag(&self, tag: u32) -> Option<u64> {
        let z = tag_topic(tag);
        match tag_base(tag) {
            SECTION_CAP => self.cap.get(z).copied(),
            SECTION_PB => self.pb.get(z).copied(),
            SECTION_MIS => self.mis.get(z).copied(),
            SECTION_SAMPLES if z == 0 => Some(self.samples),
            SECTION_PIKS if z == 0 => Some(self.piks),
            SECTION_NAMES if z == 0 => Some(self.names),
            _ => None,
        }
    }
}

/// The incremental-rebuild cache key of the `topic-samples` offline stage.
///
/// The stage samples query distributions (from `config.seed` and
/// `extra_samples`) and solves each with the configured best-effort engine,
/// reading topology, weights, the bound choice and its parameters, `k_max`,
/// and `mia_theta`. `direct_eps` is **deliberately excluded**: it only
/// tunes the online direct-answer radius, so retuning it reuses the cached
/// samples. When the engine is not `TopicSample`, the stage output is
/// empty and the key collapses to a shared "disabled" value.
fn topic_samples_key(topology: u64, weights: u64, config: &OctopusConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"octa:topic-samples");
    if let KimEngineChoice::TopicSample {
        bound,
        extra_samples,
        ..
    } = config.kim
    {
        h.write_u8(1)
            .write_u64(topology)
            .write_u64(weights)
            .write_u32(bound_tag(bound))
            .write_u64(extra_samples as u64)
            .write_u64(config.seed)
            .write_u64(config.k_max as u64)
            .write_f64(config.mia_theta)
            .write_f64(config.pb_safety)
            .write_u32(config.lg_depth)
            .write_f64(config.lg_safety);
    } else {
        h.write_u8(0);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serialize `artifacts` as an OCTA v5 sectioned container stamped with the
/// combined key `fp`, the per-unit `keys`, and the cache directory's
/// `write_seq` (see [`prune`]; callers outside a cache directory may pass
/// any value — the sequence never gates reuse).
///
/// Sections are laid out in [`section_order`] at ascending 8-aligned
/// offsets recorded in the table, with zero padding *before* any section
/// whose predecessor ends unaligned; checksums and lengths cover the
/// payload bytes only, never the padding.
pub fn encode(
    artifacts: &OfflineArtifacts,
    fp: &Fingerprint,
    keys: &StageKeys,
    write_seq: u64,
) -> Bytes {
    let z_count = artifacts.topic_caps.len();
    debug_assert_eq!(keys.cap.len(), z_count, "keys and artifacts agree on Z");
    let mut sections: Vec<(u32, u64, BytesMut)> = Vec::with_capacity(3 * z_count + 3);
    for z in 0..z_count {
        let mut payload = BytesMut::with_capacity(8);
        payload.put_f64_le(artifacts.topic_caps[z]);
        sections.push((topic_tag(SECTION_CAP, z), keys.cap[z], payload));
    }
    for z in 0..z_count {
        sections.push((
            topic_tag(SECTION_PB, z),
            keys.pb[z],
            encode_pb_topic(artifacts, z),
        ));
    }
    for z in 0..z_count {
        sections.push((
            topic_tag(SECTION_MIS, z),
            keys.mis[z],
            encode_mis_topic(artifacts, z),
        ));
    }
    sections.push((SECTION_SAMPLES, keys.samples, encode_samples(artifacts)));
    sections.push((SECTION_PIKS, keys.piks, encode_piks(artifacts)));
    sections.push((SECTION_NAMES, keys.names, encode_names(artifacts)));
    let table_len = sections.len() * wire::SECTION_ENTRY_LEN;
    let payload_len: usize = sections.iter().map(|(_, _, p)| wire::align8(p.len())).sum();
    let mut buf = BytesMut::with_capacity(HEADER_LEN + table_len + payload_len);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0);
    buf.put_u64_le(fp.graph);
    buf.put_u64_le(fp.config);
    buf.put_u64_le(fp.seed);
    buf.put_u64_le(write_seq);
    buf.put_u32_le(sections.len() as u32);
    buf.put_u32_le(0);
    debug_assert_eq!(buf.len(), HEADER_LEN);
    let mut off = (HEADER_LEN + table_len) as u64;
    for (tag, key, payload) in &sections {
        off = wire::align8(off as usize) as u64;
        wire::put_section_entry(
            &mut buf,
            &SectionEntry {
                tag: *tag,
                key: *key,
                off,
                len: payload.len() as u64,
                checksum: wire::fnv1a(payload),
            },
        );
        off += payload.len() as u64;
    }
    for (_, _, payload) in sections {
        buf.put_bytes(0, wire::pad8(buf.len()));
        buf.put_slice(&payload);
    }
    buf.freeze()
}

/// Encode one topic's PB unit. Reserves exactly: σ̂ rows are N×8 bytes at
/// production scale, so a large encode must not crawl through doubling
/// reallocations.
fn encode_pb_topic(artifacts: &OfflineArtifacts, z: usize) -> BytesMut {
    let parts = artifacts.pb.as_ref().map(|pb| pb.parts());
    let row = parts.map(|(sigma, _)| sigma[z].as_slice());
    let safety = parts.map_or(0.0, |(_, s)| s);
    let mut payload = BytesMut::with_capacity(row.map_or(8, |r| 24 + r.len() * 8));
    crate::kim::bounds::encode_pb_topic_section(row, safety, &mut payload);
    payload
}

/// Encode one topic's MIS unit.
fn encode_mis_topic(artifacts: &OfflineArtifacts, z: usize) -> BytesMut {
    let table = artifacts.mis.as_ref().map(|m| &m.gains()[z]);
    let cap = table.map_or(8, |t| 24 + t.len() * 12 + 8);
    let mut payload = BytesMut::with_capacity(cap);
    crate::kim::mis::encode_mis_topic_section(table, &mut payload);
    payload
}

fn encode_samples(artifacts: &OfflineArtifacts) -> BytesMut {
    let cap: usize = 4 + artifacts
        .samples
        .iter()
        .map(|s| 16 + s.gamma.num_topics() * 8 + s.seeds.len() * 4)
        .sum::<usize>();
    let mut payload = BytesMut::with_capacity(cap);
    payload.put_u32_le(artifacts.samples.len() as u32);
    for s in &artifacts.samples {
        payload.put_u32_le(s.gamma.num_topics() as u32);
        for &g in s.gamma.as_slice() {
            payload.put_f64_le(g);
        }
        payload.put_u32_le(s.seeds.len() as u32);
        for &u in &s.seeds {
            payload.put_u32_le(u.0);
        }
        payload.put_f64_le(s.spread);
    }
    payload
}

fn encode_piks(artifacts: &OfflineArtifacts) -> BytesMut {
    let piks = artifacts.piks_index.stats();
    let cap = 8 + artifacts.piks_index.len() * 40 + piks.stored_nodes * 8 + piks.stored_edges * 8;
    let mut payload = BytesMut::with_capacity(cap);
    artifacts.piks_index.encode_into(&mut payload);
    payload
}

fn encode_names(artifacts: &OfflineArtifacts) -> BytesMut {
    let mut payload = BytesMut::with_capacity(8 + artifacts.names.len() * 64);
    artifacts.names.encode_into(&mut payload);
    payload
}

// ---------------------------------------------------------------------------
// Decoding / lookup
// ---------------------------------------------------------------------------

/// Read the combined fingerprint stamped in a container header
/// (diagnostics; reuse is decided by section keys, not by this).
pub fn read_fingerprint(raw: &[u8]) -> Result<Fingerprint, PersistError> {
    let mut buf = raw;
    wire::need(&buf, HEADER_LEN, "artifact header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::Corrupt(
            "bad magic (not an OCTA container)".into(),
        ));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(PersistError::Version(version));
    }
    if buf.get_u16_le() != 0 {
        return Err(PersistError::Corrupt("header pad word nonzero".into()));
    }
    Ok(Fingerprint {
        graph: buf.get_u64_le(),
        config: buf.get_u64_le(),
        seed: buf.get_u64_le(),
    })
}

/// Read the per-directory write sequence stamped in a container header
/// (the [`prune`] tie-break; never consulted for reuse).
pub fn read_write_seq(raw: &[u8]) -> Result<u64, PersistError> {
    read_fingerprint(raw)?; // validates length, magic, version
    let mut buf = &raw[32..];
    Ok(buf.get_u64_le())
}

/// Read the section count stamped in a container header.
pub(crate) fn read_section_count(raw: &[u8]) -> Result<usize, PersistError> {
    read_fingerprint(raw)?;
    let mut buf = &raw[40..];
    let count = buf.get_u32_le() as usize;
    if buf.get_u32_le() != 0 {
        return Err(PersistError::Corrupt(
            "header count pad word nonzero".into(),
        ));
    }
    Ok(count)
}

/// Salvage every reusable stage output from one encoded container.
///
/// Fails only on container-level damage (bad magic, stale version, an
/// unreadable section table): those mean nothing in the file can be
/// trusted. Section-level problems — key mismatch, checksum failure,
/// payload truncation, content that fails validation against the live
/// graph — are not errors; the affected section's slot stays empty and its
/// stage rebuilds. A slot is populated only when the section's stored key
/// equals the expected [`StageKeys`] entry **and** the payload decodes and
/// validates, so a populated slot is safe to hand to
/// [`super::build_with_reuse`] verbatim.
pub fn load_sections(
    raw: &[u8],
    keys: &StageKeys,
    graph: &TopicGraph,
    config: &OctopusConfig,
) -> Result<ReuseSlots, PersistError> {
    let mut slots = ReuseSlots::default();
    load_sections_into(
        raw,
        keys,
        graph,
        config,
        &mut slots,
        &mut LoadTimings::default(),
    )?;
    Ok(slots)
}

/// [`load_sections`], but accumulating into `slots` and decoding **only
/// still-needed sections** — a scalar slot already filled by an earlier
/// donor file is not re-decoded (nor even checksummed), and the PIKS
/// section is skipped once every world up to `piks_index_size` is covered.
/// PIKS donors union world-by-world ([`PiksReuse::merge_from`]), so two
/// deltas that invalidated disjoint world sets in different epoch files
/// reassemble full coverage. Returns whether anything new was salvaged.
fn load_sections_into(
    raw: &[u8],
    keys: &StageKeys,
    graph: &TopicGraph,
    config: &OctopusConfig,
    slots: &mut ReuseSlots,
    timings: &mut LoadTimings,
) -> Result<bool, PersistError> {
    let t_validate = std::time::Instant::now();
    let section_count = read_section_count(raw)?; // validates magic + version
    let table_len = section_count.saturating_mul(wire::SECTION_ENTRY_LEN);
    let mut table = &raw[HEADER_LEN..];
    wire::need(&table, table_len, "section table").map_err(PersistError::from)?;
    timings.validate += t_validate.elapsed();

    let r = config.piks_index_size;
    let z_count = graph.num_topics();
    let mut salvaged = false;
    for _ in 0..section_count {
        let t_validate = std::time::Instant::now();
        let entry = wire::read_section_entry(&mut table, "section entry")?;
        timings.validate += t_validate.elapsed();
        if keys.for_tag(entry.tag) != Some(entry.key) {
            continue; // stale inputs or unknown tag: the unit rebuilds
        }
        // the key matched, so a topic-granular tag's index is < z_count
        // (for_tag bounds it against this build's key vectors)
        let z = tag_topic(entry.tag);
        let needed = match tag_base(entry.tag) {
            SECTION_CAP => ensure_topics(&mut slots.cap, z_count)[z].is_none(),
            SECTION_PB => ensure_topics(&mut slots.pb, z_count)[z].is_none(),
            SECTION_MIS => ensure_topics(&mut slots.mis, z_count)[z].is_none(),
            SECTION_SAMPLES => slots.samples.is_none(),
            SECTION_PIKS => slots.piks.as_ref().is_none_or(|p| p.available_in(r) < r),
            SECTION_NAMES => slots.names.is_none(),
            _ => false,
        };
        if !needed {
            continue; // an earlier donor already supplied this unit
        }
        let t_validate = std::time::Instant::now();
        let payload = wire::section_payload(raw, &entry);
        timings.validate += t_validate.elapsed();
        let Ok(payload) = payload else {
            continue; // truncated or corrupted in place: the unit rebuilds
        };
        let t_decode = std::time::Instant::now();
        match tag_base(entry.tag) {
            SECTION_CAP => {
                if let Ok(cap) = decode_cap(payload) {
                    slots.cap[z] = Some(cap);
                    salvaged = true;
                }
            }
            SECTION_PB => {
                if let Ok(row) = decode_pb_topic(payload, graph, config) {
                    slots.pb[z] = Some(row);
                    salvaged = true;
                }
            }
            SECTION_MIS => {
                if let Ok(gains) = decode_mis_topic(payload, graph, config) {
                    slots.mis[z] = Some(gains);
                    salvaged = true;
                }
            }
            SECTION_SAMPLES => {
                if let Ok(samples) = decode_samples(payload, graph) {
                    slots.samples = Some(samples);
                    salvaged = true;
                }
            }
            SECTION_PIKS => {
                if let Ok(reuse) = InfluencerIndex::load_reusable(payload, graph) {
                    if reuse.available() > 0 {
                        match &mut slots.piks {
                            Some(have) => salvaged |= have.merge_from(reuse) > 0,
                            none => {
                                *none = Some(reuse);
                                salvaged = true;
                            }
                        }
                    }
                }
            }
            SECTION_NAMES => {
                if let Ok(names) = Autocomplete::decode_from(payload, graph.node_count()) {
                    slots.names = Some(names);
                    salvaged = true;
                }
            }
            _ => unreachable!("needed is false for unknown tags"),
        }
        timings.decode += t_decode.elapsed();
    }
    Ok(salvaged)
}

/// Size a per-topic slot vector to the live topic count (idempotent).
fn ensure_topics<T>(v: &mut Vec<Option<T>>, z_count: usize) -> &mut Vec<Option<T>> {
    if v.len() < z_count {
        v.resize_with(z_count, || None);
    }
    v
}

pub(crate) fn decode_cap(raw: &[u8]) -> Result<f64, WireError> {
    if raw.len() != 8 {
        return Err(WireError(format!(
            "cap section is {} bytes, not 8",
            raw.len()
        )));
    }
    let mut buf = raw;
    Ok(buf.get_f64_le())
}

/// Decode one topic's PB unit via its zero-copy parser
/// ([`crate::kim::bounds::PbTableView::parse_topic`] does all structural
/// validation, so the writer, the mapped reader, and this owned decode can
/// never disagree about the byte format). Presence must match whether the
/// configured engine needs the tables, and a present unit's stored safety
/// must equal the live config's bitwise.
fn decode_pb_topic(
    raw: &[u8],
    graph: &TopicGraph,
    config: &OctopusConfig,
) -> Result<PbTopicRow, WireError> {
    let parsed = crate::kim::bounds::PbTableView::parse_topic(raw, graph.node_count())?;
    if parsed.is_some() != super::needs_pb(config) {
        return Err(WireError(
            "pb unit presence disagrees with the configured engine".into(),
        ));
    }
    parsed
        .map(|(safety, row)| {
            if safety.to_bits() != config.pb_safety.to_bits() {
                return Err(WireError(format!(
                    "pb unit safety {safety} disagrees with config {}",
                    config.pb_safety
                )));
            }
            Ok(row
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect())
        })
        .transpose()
}

/// Decode one topic's MIS unit (same single-format guarantee as
/// [`decode_pb_topic`]).
fn decode_mis_topic(
    raw: &[u8],
    graph: &TopicGraph,
    config: &OctopusConfig,
) -> Result<MisTopicGains, WireError> {
    let gains = crate::kim::mis::MisView::decode_topic(raw, graph.node_count())?;
    if gains.is_some() != super::needs_mis(config) {
        return Err(WireError(
            "mis unit presence disagrees with the configured engine".into(),
        ));
    }
    Ok(gains)
}

pub(crate) fn decode_samples(
    raw: &[u8],
    graph: &TopicGraph,
) -> Result<Vec<TopicSample>, WireError> {
    let num_topics = graph.num_topics();
    let node_count = graph.node_count();
    let mut buf = raw;
    wire::need(&buf, 4, "sample count")?;
    let sample_count = buf.get_u32_le() as usize;
    let mut samples = Vec::with_capacity(sample_count.min(1 << 16));
    for _ in 0..sample_count {
        wire::need(&buf, 4, "sample gamma size")?;
        let z = buf.get_u32_le() as usize;
        if z != num_topics {
            return Err(WireError(format!(
                "topic sample has {z} topics, graph has {num_topics}"
            )));
        }
        wire::need(&buf, z.saturating_mul(8), "sample gamma")?;
        let mut gamma = Vec::with_capacity(z);
        for _ in 0..z {
            gamma.push(buf.get_f64_le());
        }
        let gamma = TopicDistribution::from_normalized(gamma)
            .map_err(|e| WireError(format!("sample gamma invalid: {e}")))?;
        wire::need(&buf, 4, "sample seed count")?;
        let k = buf.get_u32_le() as usize;
        wire::need(&buf, k.saturating_mul(4) + 8, "sample seeds")?;
        let mut seeds = Vec::with_capacity(k);
        for _ in 0..k {
            let u = NodeId(buf.get_u32_le());
            if u.index() >= node_count {
                return Err(WireError(format!(
                    "topic sample seeds node {u} outside the graph ({node_count} nodes)"
                )));
            }
            seeds.push(u);
        }
        let spread = buf.get_f64_le();
        samples.push(TopicSample {
            gamma,
            seeds,
            spread,
        });
    }
    expect_drained(&buf, "samples section")?;
    Ok(samples)
}

fn expect_drained(buf: &&[u8], what: &str) -> Result<(), WireError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(WireError(format!(
            "{} trailing bytes after {what}",
            buf.len()
        )))
    }
}

/// Wall-clock breakdown of a cache [`lookup`], split the way the engine
/// reports a full artifact hit: reading bytes ([`STAGE_ARTIFACT_MAP`]),
/// header/table/checksum verification ([`STAGE_ARTIFACT_VALIDATE`]), and
/// payload decoding ([`STAGE_ARTIFACT_DECODE`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadTimings {
    /// Time spent reading (or mapping) cache files.
    pub map: std::time::Duration,
    /// Time spent on header, table, and checksum validation.
    pub validate: std::time::Duration,
    /// Time spent decoding section payloads into owned stage outputs.
    pub decode: std::time::Duration,
}

/// The result of a cache-directory [`lookup`]: merged reuse slots plus the
/// files that contributed them.
#[derive(Debug, Default)]
pub struct CacheLookup {
    /// Stage outputs salvaged from the cache, ready for
    /// [`super::build_with_reuse`].
    pub slots: ReuseSlots,
    /// Cache files at least one slot came from (exact-fingerprint file
    /// first when it contributed).
    pub sources: Vec<PathBuf>,
    /// Where the lookup's wall-clock went (telemetry for
    /// [`crate::engine::SystemReport`]).
    pub timings: LoadTimings,
}

/// Gather every reusable stage output available under `cache_dir` for the
/// given inputs.
///
/// The exact combined-fingerprint file is consulted first (on an unchanged
/// restart it satisfies everything by itself); then the directory's other
/// `.octa` files are scanned in name order, each donating any still-missing
/// section whose key matches — this is the path a graph delta takes, since
/// a delta changes the combined fingerprint and therefore the file name.
/// Slots already satisfied by an earlier file are skipped without decoding;
/// PIKS world slots **union** across donors (two deltas that invalidated
/// disjoint world sets in different epoch files reassemble full coverage).
/// Unreadable, foreign, stale-version, or corrupt files are simply
/// skipped: lookup degrades, it never fails.
pub fn lookup(
    cache_dir: &Path,
    fp: &Fingerprint,
    keys: &StageKeys,
    graph: &TopicGraph,
    config: &OctopusConfig,
) -> CacheLookup {
    let exact = fp.cache_path(cache_dir);
    let mut candidates = vec![exact.clone()];
    if let Ok(entries) = std::fs::read_dir(cache_dir) {
        let mut others: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "octa") && *p != exact)
            .collect();
        others.sort();
        candidates.extend(others);
    }
    let mut out = CacheLookup::default();
    for path in candidates {
        if complete(&out.slots, graph, config) {
            break;
        }
        let t_map = std::time::Instant::now();
        let raw = std::fs::read(&path);
        out.timings.map += t_map.elapsed();
        let Ok(raw) = raw else {
            continue;
        };
        // accumulate directly: already-filled slots are skipped without
        // re-decoding, and PIKS world slots union across donor files
        if let Ok(true) =
            load_sections_into(&raw, keys, graph, config, &mut out.slots, &mut out.timings)
        {
            out.sources.push(path);
        }
    }
    out
}

/// Whether `slots` already satisfies every work unit for `config` (lookup
/// can stop scanning).
fn complete(slots: &ReuseSlots, graph: &TopicGraph, config: &OctopusConfig) -> bool {
    fn all_topics<T>(v: &[Option<T>], z_count: usize) -> bool {
        v.len() >= z_count && v.iter().take(z_count).all(Option::is_some)
    }
    let z_count = graph.num_topics();
    let piks_done = graph.node_count() == 0
        || slots
            .piks
            .as_ref()
            .is_some_and(|p| p.available_in(config.piks_index_size) >= config.piks_index_size);
    all_topics(&slots.cap, z_count)
        && all_topics(&slots.pb, z_count)
        && all_topics(&slots.mis, z_count)
        && slots.samples.is_some()
        && slots.names.is_some()
        && piks_done
}

/// Write `artifacts` to `path` atomically (write to a sibling temp file,
/// then rename) so a crash mid-write never leaves a torn cache file under
/// the final name. The temp name embeds the process id **and** a per-call
/// counter, so neither two replicas on a shared cache directory nor two
/// threads of one process (engines are built concurrently in multi-tenant
/// services) ever interleave writes into the same temp file — last rename
/// wins, and every renamed file is whole. A failed write or rename removes
/// its temp file rather than leaking it into the cache directory.
pub fn save(
    artifacts: &OfflineArtifacts,
    fp: &Fingerprint,
    keys: &StageKeys,
    path: &Path,
) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let write_seq = path.parent().map_or(1, next_write_seq);
    let tmp = path.with_extension(format!(
        "octa.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = std::fs::write(&tmp, encode(artifacts, fp, keys, write_seq))
        .and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// The write sequence a new file in `dir` should carry: one past the
/// largest sequence already present (headers are read, not whole files).
/// Unreadable or foreign-version files count as sequence 0, so a directory
/// of migrated v2 files simply restarts the ordering.
fn next_write_seq(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 1;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "octa"))
        .map(|e| file_write_seq(&e.path()))
        .max()
        .map_or(1, |m| m.saturating_add(1))
}

/// Best-effort read of one file's header write sequence (0 on any failure:
/// a file prune cannot order is treated as oldest).
fn file_write_seq(path: &Path) -> u64 {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else {
        return 0;
    };
    let mut header = [0u8; HEADER_LEN];
    if f.read_exact(&mut header).is_err() {
        return 0;
    }
    read_write_seq(&header).unwrap_or(0)
}

/// How many `.octa` files [`prune`] retains per cache directory.
///
/// Every graph delta mints a new combined fingerprint and therefore a new
/// file, while older epochs stay behind as section donors for future
/// deltas. A handful of epochs is genuinely useful (different configs
/// sharing a directory, reverted deltas); unbounded growth is not — disk
/// and [`lookup`] scan time would grow linearly with deployment age (the
/// nightly `fit_warm` refit story). Sixteen balances donor coverage
/// against scan cost; deleting a cache file is always safe (worst case a
/// future open rebuilds).
pub const MAX_CACHE_FILES: usize = 16;

/// Bound the cache directory to [`MAX_CACHE_FILES`] `.octa` files by
/// deleting the oldest ones, never touching any path in `keep` — the files
/// the caller (or its co-tenants) just wrote. The keep-set matters the
/// moment more than one engine shares a cache directory: a sharded service
/// writes one artifact per shard, and a prune run by shard A that only
/// protected A's own file could evict shard B's newest artifact, forcing B
/// into a full rebuild on its next open. Each keep path occupies one
/// retained slot whether or not it exists yet. "Oldest" is modification
/// time, with ties broken by the header's write sequence and then by path:
/// on coarse-mtime filesystems a burst of delta write-backs lands with one
/// shared timestamp, and a lexicographic-only tie-break could evict the
/// newest donor epoch while keeping the oldest — the sequence restores
/// write order, and the path keeps the order total (deterministic) even
/// among files prune cannot parse. A file currently memory-mapped by this
/// process ([`super::view::is_mapped`]) is never a candidate: unlinking it
/// would not fault the live mapping on unix, but the cache directory would
/// silently stop containing the bytes a running replica is serving from —
/// the file is skipped and becomes evictable once its last view drops.
/// Errors are ignored — pruning is best-effort hygiene, not correctness.
pub fn prune(cache_dir: &Path, keep: &[&Path]) {
    let Ok(entries) = std::fs::read_dir(cache_dir) else {
        return;
    };
    let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let path = e.path();
            if path.extension().is_some_and(|x| x == "octa")
                && !keep.iter().any(|k| path == **k)
                && !super::view::is_mapped(&path)
            {
                let mtime = e.metadata().and_then(|m| m.modified()).ok()?;
                Some((mtime, file_write_seq(&path), path))
            } else {
                None
            }
        })
        .collect();
    // every keep path occupies one retained slot
    let excess = (files.len() + keep.len()).saturating_sub(MAX_CACHE_FILES);
    if excess == 0 {
        return;
    }
    files.sort();
    for (_, _, path) in files.into_iter().take(excess) {
        std::fs::remove_file(path).ok();
    }
}

/// Load the reusable sections of a single cache file (see
/// [`load_sections`]; most callers want the directory-level [`lookup`]).
pub fn load_file(
    path: &Path,
    keys: &StageKeys,
    graph: &TopicGraph,
    config: &OctopusConfig,
) -> Result<ReuseSlots, PersistError> {
    let raw = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    load_sections(&raw, keys, graph, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline;
    use octopus_graph::{delta, GraphBuilder};

    /// Small 2-topic graph with names (so the autocomplete trie has content).
    fn tiny_graph() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..14 {
            b.add_node(format!("user-{i}"));
        }
        for v in 2..=7u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6)]).unwrap();
        }
        for v in 8..=13u32 {
            b.add_edge(NodeId(1), NodeId(v), &[(1, 0.6)]).unwrap();
        }
        for v in 2..=4u32 {
            b.add_edge(NodeId(v), NodeId(v + 6), &[(0, 0.2), (1, 0.15)])
                .unwrap();
        }
        b.build().unwrap()
    }

    fn config(kim: KimEngineChoice) -> OctopusConfig {
        OctopusConfig {
            kim,
            piks_index_size: 300,
            mis_rr_per_topic: 600,
            k_max: 4,
            seed: 0xCAFE,
            ..Default::default()
        }
    }

    /// Every engine flavour, so every optional artifact field is exercised.
    fn all_configs() -> Vec<OctopusConfig> {
        vec![
            config(KimEngineChoice::Mis),
            config(KimEngineChoice::BestEffort(BoundKind::Precomputation)),
            config(KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 3,
                direct_eps: 0.05,
            }),
            config(KimEngineChoice::Naive),
        ]
    }

    /// Field-by-field equality of everything that is artifact state (the
    /// timings and reuse counters are telemetry and are not persisted).
    fn assert_artifacts_equal(a: &OfflineArtifacts, b: &OfflineArtifacts, what: &str) {
        assert_eq!(a.topic_caps, b.topic_caps, "{what}: per-topic caps");
        assert_eq!(a.cap, b.cap, "{what}: cap");
        assert_eq!(a.pb, b.pb, "{what}: pb tables");
        assert_eq!(a.mis, b.mis, "{what}: mis tables");
        assert_eq!(a.samples, b.samples, "{what}: topic samples");
        assert_eq!(a.piks_index, b.piks_index, "{what}: piks worlds");
        assert_eq!(a.names, b.names, "{what}: autocomplete trie");
    }

    /// Encode, reload, and reassemble through the same path the engine uses.
    fn round_trip(art: &OfflineArtifacts, g: &TopicGraph, cfg: &OctopusConfig) -> OfflineArtifacts {
        let fp = Fingerprint::compute(g, cfg);
        let keys = StageKeys::compute(g, cfg);
        let raw = encode(art, &fp, &keys, 1);
        let slots = load_sections(&raw, &keys, g, cfg).expect("container intact");
        offline::build_with_reuse(g, cfg, slots)
    }

    #[test]
    fn round_trip_every_field_every_engine() {
        let g = tiny_graph();
        for cfg in all_configs() {
            let art = offline::build(&g, &cfg);
            let back = round_trip(&art, &g, &cfg);
            assert!(
                back.fully_reused(),
                "unchanged inputs must reuse every stage under {:?}: {:?}",
                cfg.kim,
                back.reuse
            );
            assert!(
                back.timings.is_empty(),
                "fully reused stages report no build timings"
            );
            assert_artifacts_equal(&art, &back, &format!("{:?}", cfg.kim));
        }
    }

    #[test]
    fn loaded_artifacts_answer_queries_identically() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let art = offline::build(&g, &cfg);
        let back = round_trip(&art, &g, &cfg);
        use crate::kim::KimAlgorithm;
        let gamma = TopicDistribution::uniform(2);
        let a = art.mis.as_ref().unwrap().select(&gamma, 3);
        let b = back.mis.as_ref().unwrap().select(&gamma, 3);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.spread, b.spread);
        // PIKS sessions over the reloaded index agree bit-for-bit
        let mut sa = art.piks_index.session(&g, &gamma);
        let mut sb = back.piks_index.session(&g, &gamma);
        assert_eq!(sa.spread_of(NodeId(0)), sb.spread_of(NodeId(0)));
        // the trie still resolves names
        assert_eq!(back.names.lookup("user-3"), Some(NodeId(3)));
    }

    #[test]
    fn rejects_bad_magic() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let mut raw = encode(&offline::build(&g, &cfg), &fp, &keys, 1).to_vec();
        raw[0] = b'X';
        assert!(matches!(
            load_sections(&raw, &keys, &g, &cfg),
            Err(PersistError::Corrupt(m)) if m.contains("magic")
        ));
    }

    #[test]
    fn rejects_stale_version_for_migration_by_rebuild() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let mut raw = encode(&offline::build(&g, &cfg), &fp, &keys, 1).to_vec();
        // a v1 file (or any other version) must be refused wholesale
        raw[4] = 0x01;
        raw[5] = 0x00;
        assert!(matches!(
            load_sections(&raw, &keys, &g, &cfg),
            Err(PersistError::Version(1))
        ));
        // v3 (the pre-mmap sectioned format) is likewise migrated by
        // rebuild, not parsed: its section table has no offset column
        raw[4] = 0x03;
        assert!(matches!(
            load_sections(&raw, &keys, &g, &cfg),
            Err(PersistError::Version(3))
        ));
        // v4 (stage-granular cap/PB/MIS sections) frames per-stage, not
        // per-topic, so it too migrates by rebuild
        raw[4] = 0x04;
        assert!(matches!(
            load_sections(&raw, &keys, &g, &cfg),
            Err(PersistError::Version(4))
        ));
    }

    #[test]
    fn truncation_salvages_only_intact_sections() {
        // every strict prefix must decode without panicking, reuse nothing
        // corrupted, and anything it does salvage must equal the original
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::TopicSample {
            bound: BoundKind::Precomputation,
            extra_samples: 2,
            direct_eps: 0.05,
        });
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let art = offline::build(&g, &cfg);
        let raw = encode(&art, &fp, &keys, 1);
        let mut salvaged_caps = 0usize;
        for cut in 0..raw.len() {
            let Ok(slots) = load_sections(&raw[..cut], &keys, &g, &cfg) else {
                continue; // header/table damage: clean error, nothing reused
            };
            // the last section (names) can never survive a strict prefix
            assert!(slots.names.is_none(), "cut at {cut} salvaged a cut trie");
            for (z, cap) in slots.cap.iter().enumerate() {
                if let Some(cap) = cap {
                    assert_eq!(
                        *cap, art.topic_caps[z],
                        "cut at {cut}: salvaged cap[{z}] differs"
                    );
                    salvaged_caps += 1;
                }
            }
            let (sigma, _) = art.pb.as_ref().expect("pb enabled").parts();
            for (z, slot) in slots.pb.iter().enumerate() {
                if let Some(row) = slot {
                    assert_eq!(
                        row.as_deref(),
                        Some(sigma[z].as_slice()),
                        "cut at {cut}: salvaged pb[{z}] differs"
                    );
                }
            }
            if let Some(samples) = &slots.samples {
                assert_eq!(samples, &art.samples, "cut at {cut}");
            }
        }
        assert!(salvaged_caps > 0, "long prefixes must salvage cap units");
    }

    #[test]
    fn single_byte_corruption_is_contained_to_its_section() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let art = offline::build(&g, &cfg);
        let clean = encode(&art, &fp, &keys, 1).to_vec();
        // the bytes actually covered by a section's `len`/checksum — a flip
        // in inter-section alignment padding is invisible by design, so the
        // probe positions must land inside real payloads
        let section_count = section_order(g.num_topics()).len();
        let covered: Vec<std::ops::Range<usize>> = {
            let mut table = &clean[HEADER_LEN..];
            (0..section_count)
                .map(|_| {
                    let e = wire::read_section_entry(&mut table, "test entry").unwrap();
                    e.off as usize..(e.off + e.len) as usize
                })
                .collect()
        };
        let payload_start = HEADER_LEN + section_count * wire::SECTION_ENTRY_LEN;
        for frac in [0.0, 0.25, 0.5, 0.75, 0.999] {
            let mut raw = clean.clone();
            let mut pos = payload_start + ((raw.len() - payload_start - 1) as f64 * frac) as usize;
            while !covered.iter().any(|r| r.contains(&pos)) {
                pos += 1; // step out of padding into the next payload
            }
            raw[pos] ^= 0x40;
            let slots = load_sections(&raw, &keys, &g, &cfg).expect("framing intact");
            let rebuilt = offline::build_with_reuse(&g, &cfg, slots);
            assert!(
                !rebuilt.fully_reused(),
                "flip at {pos} must invalidate its covering section"
            );
            // whatever was reused, the result is still exactly right
            assert_artifacts_equal(&art, &rebuilt, &format!("flip at {pos}"));
        }
    }

    #[test]
    fn foreign_graph_reuses_nothing_even_with_forged_keys() {
        // a writer can stamp any keys it likes into the table, so passing
        // the key check proves nothing about the content: decoding must
        // validate every dimension and id against the live graph
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let art = offline::build(&g, &cfg);

        // a graph with a different node count, stamped with ITS OWN keys so
        // every section-key comparison passes
        let small = {
            let mut b = GraphBuilder::new(2);
            for i in 0..4 {
                b.add_node(format!("s-{i}"));
            }
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5)]).unwrap();
            b.build().unwrap()
        };
        let forged_fp = Fingerprint::compute(&small, &cfg);
        let forged_keys = StageKeys::compute(&small, &cfg);
        let stamped = encode(&art, &forged_fp, &forged_keys, 1);
        let mut slots =
            load_sections(&stamped, &forged_keys, &small, &cfg).expect("framing intact");
        // PB is disabled under the Mis engine, so the only thing that may
        // cross graphs is the graph-independent absent marker
        assert!(
            slots.pb.iter().flatten().all(Option::is_none),
            "a present foreign PB row must not load"
        );
        assert!(
            slots.mis.iter().all(Option::is_none),
            "foreign MIS units must not load (their seed ids overflow)"
        );
        assert!(
            slots.piks.as_ref().map_or(0, |p| p.available()) == 0,
            "foreign worlds must fail footprint validation"
        );
        assert!(slots.names.is_none(), "foreign trie ids must not load");
        // a cap unit is a bare f64 with no graph-validatable structure, so a
        // *deliberately* forged key can misreport it (exactly as in v1,
        // where the cap was equally unvalidatable); honest keys never match
        // foreign inputs, which is what the StageKeys sensitivity tests pin
        slots.cap = Vec::new();
        let rebuilt = offline::build_with_reuse(&small, &cfg, slots);
        assert_artifacts_equal(
            &offline::build(&small, &cfg),
            &rebuilt,
            "rebuild after rejecting forged content",
        );
    }

    #[test]
    fn file_save_load_round_trip() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let art = offline::build(&g, &cfg);
        let dir = std::env::temp_dir().join("octopus_persist_test_v2");
        std::fs::remove_dir_all(&dir).ok();
        let path = fp.cache_path(&dir);
        save(&art, &fp, &keys, &path).unwrap();
        assert_eq!(
            read_fingerprint(&std::fs::read(&path).unwrap()).unwrap(),
            fp
        );
        let slots = load_file(&path, &keys, &g, &cfg).unwrap();
        let back = offline::build_with_reuse(&g, &cfg, slots);
        assert!(back.fully_reused());
        assert_artifacts_equal(&art, &back, "file round trip");
        // the directory-level lookup finds the same file
        let found = lookup(&dir, &fp, &keys, &g, &cfg);
        assert_eq!(found.sources, vec![path.clone()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_not_panic() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let keys = StageKeys::compute(&g, &cfg);
        let path = std::env::temp_dir().join("octopus_persist_never_written.octa");
        assert!(matches!(
            load_file(&path, &keys, &g, &cfg),
            Err(PersistError::Io(_))
        ));
        // lookup on a nonexistent directory degrades to an empty result
        let fp = Fingerprint::compute(&g, &cfg);
        let found = lookup(
            &std::env::temp_dir().join("octopus_no_such_cache_dir"),
            &fp,
            &keys,
            &g,
            &cfg,
        );
        assert!(found.sources.is_empty());
        assert!(!offline::build_with_reuse(&g, &cfg, found.slots).fully_reused());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let a = Fingerprint::compute(&g, &cfg);
        let b = Fingerprint::compute(&g, &cfg);
        assert_eq!(a, b, "identical inputs must key identically");
        let reseeded = Fingerprint::compute(
            &g,
            &OctopusConfig {
                seed: cfg.seed ^ 1,
                ..cfg.clone()
            },
        );
        assert_ne!(a.seed, reseeded.seed);
        let retuned = Fingerprint::compute(
            &g,
            &OctopusConfig {
                mia_theta: cfg.mia_theta * 0.5,
                ..cfg
            },
        );
        assert_ne!(a.config, retuned.config);
    }

    #[test]
    fn stage_keys_isolate_their_input_slices() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let base = StageKeys::compute(&g, &cfg);

        // rename: only the autocomplete stage is invalidated
        let renamed = delta::rename_node(&g, NodeId(3), "renamed-user").unwrap();
        let keys = StageKeys::compute(&renamed, &cfg);
        assert_eq!(keys.cap, base.cap);
        assert_eq!(keys.pb, base.pb);
        assert_eq!(keys.mis, base.mis);
        assert_eq!(keys.samples, base.samples);
        assert_eq!(keys.piks, base.piks);
        assert_ne!(keys.names, base.names);

        // weight nudge on EdgeId(0) — the hub edge 0→2, carrying topic 0
        // only: exactly topic 0's cap and MIS units are invalidated; topic
        // 1's units, names, and the piks derivation are not (worlds
        // re-screen by footprint instead)
        let nudged = delta::nudge_weights(&g, &[octopus_graph::EdgeId(0)], 0.05).unwrap();
        let keys = StageKeys::compute(&nudged, &cfg);
        assert_ne!(keys.cap[0], base.cap[0]);
        assert_eq!(keys.cap[1], base.cap[1], "foreign-topic cap unit moved");
        assert_ne!(keys.mis[0], base.mis[0]);
        assert_eq!(keys.mis[1], base.mis[1], "foreign-topic MIS unit moved");
        // pb/samples are disabled under the Mis engine, so their "absent"
        // markers survive the nudge (the enabled case is pinned below)
        assert_eq!(keys.pb, base.pb);
        assert_eq!(keys.samples, base.samples);
        assert_eq!(keys.names, base.names);
        assert_eq!(keys.piks, base.piks);

        // a nudge on EdgeId(12) — 2→8, carrying both topics — moves both
        let wide = delta::nudge_weights(&g, &[octopus_graph::EdgeId(12)], 0.05).unwrap();
        let keys = StageKeys::compute(&wide, &cfg);
        assert_ne!(keys.cap[0], base.cap[0]);
        assert_ne!(keys.cap[1], base.cap[1]);

        // reseed: only the randomized stages are invalidated, and every
        // MIS unit draws from a per-topic stream of the new seed
        let reseeded = OctopusConfig {
            seed: cfg.seed ^ 0xBEEF,
            ..cfg.clone()
        };
        let keys = StageKeys::compute(&g, &reseeded);
        assert_eq!(keys.cap, base.cap);
        assert_eq!(keys.pb, base.pb);
        assert_ne!(keys.mis[0], base.mis[0]);
        assert_ne!(keys.mis[1], base.mis[1]);
        assert_ne!(keys.piks, base.piks);
        assert_eq!(keys.names, base.names);

        // topic-0 units of every stage plus the singletons are pairwise
        // distinct (domain tags work) ...
        let all = [
            base.cap[0],
            base.pb[0],
            base.mis[0],
            base.samples,
            base.piks,
            base.names,
        ];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "keys {i} and {j} collide");
            }
        }
        // ... an enabled stage keys each topic's input slice separately ...
        assert_ne!(base.cap[0], base.cap[1]);
        assert_ne!(base.mis[0], base.mis[1]);
        // ... and a disabled stage's units share one absent-marker key, so
        // a single donor section can confirm absence for every topic
        assert_eq!(base.pb[0], base.pb[1]);
    }

    #[test]
    fn pb_key_nudge_only_moves_when_enabled() {
        let g = tiny_graph();
        let nudged = delta::nudge_weights(&g, &[octopus_graph::EdgeId(0)], 0.05).unwrap();
        // disabled PB (Mis engine): the pb section stores "absent" and its
        // key ignores the graph — a weight nudge reuses the absence marker
        let mis_cfg = config(KimEngineChoice::Mis);
        assert_eq!(
            StageKeys::compute(&g, &mis_cfg).pb,
            StageKeys::compute(&nudged, &mis_cfg).pb
        );
        // enabled PB: the nudge invalidates exactly the nudged topic's row
        // (EdgeId(0) carries topic 0 only)
        let pb_cfg = config(KimEngineChoice::BestEffort(BoundKind::Precomputation));
        let before = StageKeys::compute(&g, &pb_cfg).pb;
        let after = StageKeys::compute(&nudged, &pb_cfg).pb;
        assert_ne!(after[0], before[0]);
        assert_eq!(after[1], before[1], "foreign-topic PB unit must survive");
        // and enabled vs disabled never share a key
        assert_ne!(StageKeys::compute(&g, &mis_cfg).pb, before);
    }

    #[test]
    fn lookup_unions_piks_worlds_across_donor_epochs() {
        // two past epochs nudged different edges; for the live graph each
        // donor's valid worlds are the ones whose footprint missed its
        // nudge — lookup must union them, not keep the single best donor
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let dir = std::env::temp_dir().join("octopus_persist_union_epochs");
        std::fs::remove_dir_all(&dir).ok();
        let e_a = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let e_b = g.find_edge(NodeId(1), NodeId(8)).unwrap();
        for victim in [e_a, e_b] {
            let epoch = delta::nudge_weights(&g, &[victim], 0.07).unwrap();
            let fp = Fingerprint::compute(&epoch, &cfg);
            let keys = StageKeys::compute(&epoch, &cfg);
            save(
                &offline::build(&epoch, &cfg),
                &fp,
                &keys,
                &fp.cache_path(&dir),
            )
            .unwrap();
        }
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let found = lookup(&dir, &fp, &keys, &g, &cfg);
        assert_eq!(found.sources.len(), 2, "both epochs must donate");
        let reference = InfluencerIndex::build(
            &g,
            cfg.piks_index_size,
            cfg.seed ^ super::super::PIKS_WORLD_SEED_XOR,
        );
        // a world survives via donor A unless it reached node 2 (edge e_a's
        // target), via donor B unless it reached node 8 — the union covers
        // every world that avoided at least one of the two nudges
        let expected = (0..reference.len())
            .filter(|&j| {
                let nodes = reference.world_nodes(j);
                !nodes.contains(&2) || !nodes.contains(&8)
            })
            .count();
        let piks = found.slots.piks.as_ref().expect("worlds salvaged");
        assert_eq!(piks.available_in(cfg.piks_index_size), expected);
        assert!(
            expected
                > (0..reference.len())
                    .filter(|&j| !reference.world_nodes(j).contains(&2))
                    .count(),
            "the union must beat the best single donor"
        );
        // and the merged slots still reassemble bit-identically
        let rebuilt = offline::build_with_reuse(&g, &cfg, found.slots);
        assert_eq!(rebuilt.piks_index, reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_unions_topic_units_across_donor_epochs() {
        // two past epochs nudged edges confined to *different* topics; for
        // the live graph each donor's foreign-topic cap/PB/MIS units are
        // still bit-valid, so lookup must reassemble full per-topic
        // coverage from the pair even though neither donor alone covers
        // both topics
        let g = tiny_graph();
        let e_topic0 = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let e_topic1 = g.find_edge(NodeId(1), NodeId(8)).unwrap();
        let configs = [
            config(KimEngineChoice::Mis),
            config(KimEngineChoice::BestEffort(BoundKind::Precomputation)),
        ];
        for (i, cfg) in configs.into_iter().enumerate() {
            let dir = std::env::temp_dir().join(format!("octopus_persist_topic_union_{i}"));
            std::fs::remove_dir_all(&dir).ok();
            for victim in [e_topic0, e_topic1] {
                let epoch = delta::nudge_weights(&g, &[victim], 0.07).unwrap();
                let fp = Fingerprint::compute(&epoch, &cfg);
                let keys = StageKeys::compute(&epoch, &cfg);
                save(
                    &offline::build(&epoch, &cfg),
                    &fp,
                    &keys,
                    &fp.cache_path(&dir),
                )
                .unwrap();
            }
            let fp = Fingerprint::compute(&g, &cfg);
            let keys = StageKeys::compute(&g, &cfg);
            let found = lookup(&dir, &fp, &keys, &g, &cfg);
            assert_eq!(found.sources.len(), 2, "both epochs must donate");
            let rebuilt = offline::build_with_reuse(&g, &cfg, found.slots);
            for r in &rebuilt.reuse {
                if matches!(r.stage, "spread-cap" | "pb-bound" | "mis-tables") {
                    assert!(
                        r.is_full(),
                        "stage {} must union to full coverage: {r:?}",
                        r.stage
                    );
                }
            }
            assert_artifacts_equal(&offline::build(&g, &cfg), &rebuilt, "per-topic donor union");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn prune_bounds_the_directory_and_never_deletes_keep() {
        let dir = std::env::temp_dir().join("octopus_persist_prune_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let keep = dir.join("octopus-artifacts-keep.octa");
        for i in 0..MAX_CACHE_FILES + 5 {
            let p = dir.join(format!("octopus-artifacts-{i:02}.octa"));
            std::fs::write(&p, vec![i as u8; 4]).unwrap();
            // mtime resolution can be coarse: space the writes out so the
            // oldest-first eviction order is well-defined
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        std::fs::write(&keep, b"kept").unwrap();
        prune(&dir, &[&keep]);
        let remaining: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "octa"))
            .collect();
        assert_eq!(remaining.len(), MAX_CACHE_FILES, "bounded to the cap");
        assert!(remaining.contains(&keep), "the kept file must survive");
        assert!(
            !remaining.contains(&dir.join("octopus-artifacts-00.octa")),
            "the oldest epoch must be the one evicted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keep_set_protects_every_co_tenant_writer() {
        // two engines (shards) share one cache directory; writer A prunes
        // after its own save, and writer B's newest artifact — the OLDEST
        // candidate by mtime, since B wrote before the flood — must survive
        // because A passed it in the keep-set
        let dir = std::env::temp_dir().join("octopus_persist_prune_two_writers");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let keep_b = dir.join("octopus-artifacts-writer-b.octa");
        std::fs::write(&keep_b, b"writer b").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        for i in 0..MAX_CACHE_FILES + 5 {
            let p = dir.join(format!("octopus-artifacts-{i:02}.octa"));
            std::fs::write(&p, vec![i as u8; 4]).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let keep_a = dir.join("octopus-artifacts-writer-a.octa");
        std::fs::write(&keep_a, b"writer a").unwrap();
        prune(&dir, &[&keep_a, &keep_b]);
        let remaining: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "octa"))
            .collect();
        assert_eq!(remaining.len(), MAX_CACHE_FILES, "bounded to the cap");
        assert!(remaining.contains(&keep_a), "writer a's file must survive");
        assert!(
            remaining.contains(&keep_b),
            "writer b's newest artifact must survive a's prune"
        );
        // with both keeps occupying slots, the 7 oldest flood files go
        assert!(!remaining.contains(&dir.join("octopus-artifacts-00.octa")));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A header-only v5 container carrying `write_seq` (zero sections —
    /// structurally valid, enough for the prune ordering to read).
    fn write_header_only(path: &Path, write_seq: u64) {
        let mut raw = Vec::with_capacity(HEADER_LEN);
        raw.extend_from_slice(MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        raw.extend_from_slice(&0u16.to_le_bytes());
        for w in [1u64, 2, 3] {
            raw.extend_from_slice(&w.to_le_bytes());
        }
        raw.extend_from_slice(&write_seq.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(raw.len(), HEADER_LEN);
        std::fs::write(path, raw).unwrap();
    }

    #[test]
    fn prune_equal_mtime_burst_evicts_by_write_sequence() {
        // a burst of delta write-backs on a coarse-mtime filesystem: every
        // file shares one mtime, and the newest epochs get the
        // lexicographically SMALLEST names, so a path-only tie-break would
        // evict exactly the wrong files; the header write sequence must
        // restore write order
        let dir = std::env::temp_dir().join("octopus_persist_prune_burst");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let total = MAX_CACHE_FILES + 4;
        let name_for = |seq: usize| {
            // seq 1 (oldest) → largest name, seq `total` (newest) → smallest
            dir.join(format!("octopus-artifacts-{:02}.octa", total - seq))
        };
        let paths: Vec<PathBuf> = (1..=total).map(name_for).collect();
        for (i, p) in paths.iter().enumerate() {
            write_header_only(p, (i + 1) as u64);
        }
        let keep = dir.join("octopus-artifacts-keep.octa");
        write_header_only(&keep, (total + 1) as u64);
        // collapse every mtime onto one timestamp, as a burst within the
        // filesystem's granularity would
        let stamp =
            std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_700_000_000);
        for p in paths.iter().chain([&keep]) {
            std::fs::File::options()
                .write(true)
                .open(p)
                .unwrap()
                .set_modified(stamp)
                .unwrap();
        }
        prune(&dir, &[&keep]);
        let remaining: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "octa"))
            .collect();
        assert_eq!(remaining.len(), MAX_CACHE_FILES, "bounded to the cap");
        assert!(remaining.contains(&keep), "the kept file must survive");
        // keep occupies one slot, so the 5 oldest write sequences go
        for seq in 1..=total - (MAX_CACHE_FILES - 1) {
            assert!(
                !remaining.contains(&name_for(seq)),
                "oldest epoch seq {seq} must be evicted"
            );
        }
        for seq in total - (MAX_CACHE_FILES - 1) + 1..=total {
            assert!(
                remaining.contains(&name_for(seq)),
                "newest epoch seq {seq} must survive the burst"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_stamps_an_increasing_write_sequence() {
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let dir = std::env::temp_dir().join("octopus_persist_write_seq");
        std::fs::remove_dir_all(&dir).ok();
        let art = offline::build(&g, &cfg);
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let first = dir.join("octopus-artifacts-first.octa");
        save(&art, &fp, &keys, &first).unwrap();
        let seq1 = read_write_seq(&std::fs::read(&first).unwrap()).unwrap();
        let second = dir.join("octopus-artifacts-second.octa");
        save(&art, &fp, &keys, &second).unwrap();
        let seq2 = read_write_seq(&std::fs::read(&second).unwrap()).unwrap();
        assert!(seq2 > seq1, "later writes must order after earlier ones");
        // overwriting an existing name still advances past every file
        save(&art, &fp, &keys, &first).unwrap();
        let seq3 = read_write_seq(&std::fs::read(&first).unwrap()).unwrap();
        assert!(seq3 > seq2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_file_merge_reuses_sections_from_an_older_epoch() {
        // the delta story end to end at the persist layer: epoch 1 is
        // cached; the graph is renamed (epoch 2); lookup must salvage every
        // non-name section from epoch 1's differently-named file
        let g = tiny_graph();
        let cfg = config(KimEngineChoice::Mis);
        let dir = std::env::temp_dir().join("octopus_persist_cross_epoch");
        std::fs::remove_dir_all(&dir).ok();
        let fp1 = Fingerprint::compute(&g, &cfg);
        let keys1 = StageKeys::compute(&g, &cfg);
        let art = offline::build(&g, &cfg);
        save(&art, &fp1, &keys1, &fp1.cache_path(&dir)).unwrap();

        let renamed = delta::rename_node(&g, NodeId(0), "the-new-hub").unwrap();
        let fp2 = Fingerprint::compute(&renamed, &cfg);
        assert_ne!(fp1, fp2, "rename must change the combined fingerprint");
        let keys2 = StageKeys::compute(&renamed, &cfg);
        let found = lookup(&dir, &fp2, &keys2, &renamed, &cfg);
        assert_eq!(found.sources, vec![fp1.cache_path(&dir)]);
        let rebuilt = offline::build_with_reuse(&renamed, &cfg, found.slots);
        assert!(!rebuilt.fully_reused(), "the trie must rebuild");
        for r in &rebuilt.reuse {
            match r.stage {
                "autocomplete" => assert_eq!(r.reused, 0, "renamed trie reused"),
                _ => assert!(r.is_full(), "stage {} should be reused: {r:?}", r.stage),
            }
        }
        assert_artifacts_equal(
            &offline::build(&renamed, &cfg),
            &rebuilt,
            "partial rebuild after rename",
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
