//! Zero-copy mapped artifacts: serve queries straight off a memory-mapped
//! OCTA v5 file instead of decoding it into owned structures.
//!
//! ## Why
//!
//! The owned open path ([`super::persist::lookup`] +
//! [`super::build_with_reuse`]) reads the whole cache file and decodes
//! every section into heap structures before the first query — `O(file)`
//! startup cost and a private copy of the tables in every serving replica.
//! The v5 layout was designed so neither is necessary: sections are flat,
//! fixed-width, 8-aligned, and offset-indexed, so [`open`] merely maps the
//! file, validates the header and section table, and eagerly touches only
//! the sections that are small or structurally cheap to walk. Startup is
//! `O(pages touched)`, and replicas mapping the same file share its page
//! cache.
//!
//! ## Validation strategy
//!
//! At open, always:
//!
//! * header + section table: magic, version, exact combined fingerprint,
//!   canonical section order, per-unit key equality, 8-aligned in-bounds
//!   monotone offsets, exact file length;
//! * `cap` units + `samples`: checksum and full decode (tiny, and eagerly
//!   needed — the per-topic caps combine into the global cap at open);
//! * `names`: checksum + full structural walk (per-query lookups then run
//!   `O(|name|)` via `TrieView::assume_checked`);
//! * `pb` / `mis`: structural parse of every topic unit (header
//!   arithmetic, offset tables) — **checksums deferred**, per unit;
//! * `piks`: `O(R)` world framing walk — per-world payloads untouched,
//!   checksum deferred.
//!
//! The deferred checksums are verified **once, at first operator touch**
//! ([`MappedArtifacts::pb_view`] / [`MappedArtifacts::mis_view`] /
//! [`MappedArtifacts::piks_view`]), recorded in a sticky per-section state:
//! a section that fails verification fails every subsequent touch with
//! [`CoreError::Artifact`] — the engine fails closed rather than serving
//! from damaged bytes. Opening with `paranoid = true` verifies every
//! checksum up front instead (the `--paranoid` flag of `exp_runner`).
//!
//! A mapped open serves only a **complete, exact** artifact: same combined
//! fingerprint, every stage key equal. Partial reuse (donor sections from
//! older epochs) stays an owned-path feature — merging sections across
//! files requires decoding anyway.
//!
//! ## Prune integration
//!
//! Every live mapping registers its canonical path in a process-global
//! registry; [`is_mapped`] is consulted by [`super::persist::prune`] so the
//! cache janitor never unlinks a file a running engine is serving from.
//! The registration drops with the last [`MappedArtifacts`] clone.

#![warn(missing_docs)]

use super::persist::{self, Fingerprint, PersistError, StageKeys};
use super::{needs_mis, needs_pb, StageReuse, StageTiming, STAGE_ORDER};
use crate::autocomplete::TrieView;
use crate::engine::OctopusConfig;
use crate::error::CoreError;
use crate::kim::bounds::PbTableView;
use crate::kim::mis::MisView;
use crate::kim::topic_sample::TopicSample;
use crate::piks::PiksWorldsView;
use mmap::Mmap;
use octopus_graph::{wire, TopicGraph};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Section indices within the canonical table (mirror
/// [`persist::section_order`]): cap units occupy `0..Z`, PB units
/// `Z..2Z`, MIS units `2Z..3Z`, then the three singletons.
const fn i_cap(_z_count: usize, z: usize) -> usize {
    z
}
const fn i_pb(z_count: usize, z: usize) -> usize {
    z_count + z
}
const fn i_mis(z_count: usize, z: usize) -> usize {
    2 * z_count + z
}
const fn i_samples(z_count: usize) -> usize {
    3 * z_count
}
const fn i_piks(z_count: usize) -> usize {
    3 * z_count + 1
}
const fn i_names(z_count: usize) -> usize {
    3 * z_count + 2
}

/// Lazy-checksum states (sticky; see the module docs).
const UNVERIFIED: u8 = 0;
const VERIFIED: u8 = 1;
const DAMAGED: u8 = 2;

/// One validated section-table entry plus its sticky verification state.
struct SectionMeta {
    entry: wire::SectionEntry,
    state: AtomicU8,
}

/// The shared innards of a mapped artifact (one per [`open`]; reference
/// counted so engine clones share the mapping and the registry entry).
struct MapInner {
    map: Mmap,
    reg_key: PathBuf,
    sections: Vec<SectionMeta>,
    // graph dimensions the views re-validate against on reconstruction
    num_topics: usize,
    node_count: usize,
    // eagerly decoded small sections
    topic_caps: Vec<f64>,
    cap: f64,
    samples: Vec<TopicSample>,
    // counts captured at open for reporting
    piks_total: usize,
    piks_stored_nodes: usize,
    piks_stored_edges: usize,
    names_len: usize,
    // synthetic open telemetry (map / validate / decode)
    timings: Vec<StageTiming>,
    reuse: Vec<StageReuse>,
    open_total: Duration,
}

impl Drop for MapInner {
    fn drop(&mut self) {
        deregister(&self.reg_key);
    }
}

/// A complete OCTA v5 artifact served zero-copy off a memory mapping.
///
/// Construction is [`open`]; the engine holds one of these in mapped mode
/// and reconstructs per-query views through the accessors. Cloning shares
/// the mapping (cheap `Arc` clone).
#[derive(Clone)]
pub struct MappedArtifacts {
    inner: Arc<MapInner>,
}

impl std::fmt::Debug for MappedArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedArtifacts")
            .field("path", &self.inner.reg_key)
            .field("bytes", &self.inner.map.len())
            .field("piks_total", &self.inner.piks_total)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The live-mapping registry (prune integration)
// ---------------------------------------------------------------------------

fn registry() -> &'static Mutex<HashMap<PathBuf, usize>> {
    static REG: OnceLock<Mutex<HashMap<PathBuf, usize>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Canonical registry key for a path (symlink/relative-path robust; falls
/// back to the verbatim path when canonicalization fails).
fn canon(path: &Path) -> PathBuf {
    path.canonicalize().unwrap_or_else(|_| path.to_path_buf())
}

fn register(path: &Path) -> PathBuf {
    let key = canon(path);
    if let Ok(mut reg) = registry().lock() {
        *reg.entry(key.clone()).or_insert(0) += 1;
    }
    key
}

fn deregister(key: &Path) {
    if let Ok(mut reg) = registry().lock() {
        if let Some(n) = reg.get_mut(key) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                reg.remove(key);
            }
        }
    }
}

/// Whether any live [`MappedArtifacts`] in this process is currently
/// serving from `path` ([`persist::prune`] skips such files).
pub fn is_mapped(path: &Path) -> bool {
    registry()
        .lock()
        .map(|reg| reg.contains_key(&canon(path)))
        .unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------------

/// Map `path` and validate it as a complete OCTA v5 artifact for exactly
/// these inputs (see the module docs for what "validate" touches; with
/// `paranoid` every section checksum is verified up front).
///
/// Any mismatch — foreign fingerprint, stale stage key, non-canonical
/// layout, damaged eager section — is an error; the caller falls back to
/// the owned path (which can still salvage matching sections).
pub fn open(
    path: &Path,
    fp: &Fingerprint,
    keys: &StageKeys,
    graph: &TopicGraph,
    config: &OctopusConfig,
    paranoid: bool,
) -> Result<MappedArtifacts, PersistError> {
    let t0 = Instant::now();
    let map = Mmap::map_file(path).map_err(|e| PersistError::Io(e.to_string()))?;
    let t_map = t0.elapsed();

    // -- validate: header, table, canonical layout ------------------------
    let t1 = Instant::now();
    let raw: &[u8] = &map;
    let stamped = persist::read_fingerprint(raw)?;
    if stamped != *fp {
        return Err(PersistError::Corrupt(format!(
            "artifact keyed {stamped}, engine inputs key {fp}"
        )));
    }
    let z_count = graph.num_topics();
    let order = persist::section_order(z_count);
    let count = persist::read_section_count(raw)?;
    if count != order.len() {
        return Err(PersistError::Corrupt(format!(
            "expected {} sections, found {count}",
            order.len()
        )));
    }
    let table_end = persist::HEADER_LEN + count * wire::SECTION_ENTRY_LEN;
    let mut table = &raw[persist::HEADER_LEN..];
    wire::need(&table, count * wire::SECTION_ENTRY_LEN, "section table")?;
    let mut sections = Vec::with_capacity(count);
    let mut prev_end = table_end;
    for &tag in &order {
        let entry = wire::read_section_entry(&mut table, "section entry")?;
        if entry.tag != tag {
            return Err(PersistError::Corrupt(format!(
                "section tag {} out of canonical order (expected {tag})",
                entry.tag
            )));
        }
        if keys.for_tag(tag) != Some(entry.key) {
            // a stale stage key means this exact file cannot serve mapped;
            // the owned path may still salvage its other sections
            return Err(PersistError::Corrupt(format!(
                "section tag {tag} carries a stale stage key"
            )));
        }
        wire::section_range(raw.len(), &entry)?;
        if entry.off as usize != wire::align8(prev_end) {
            return Err(PersistError::Corrupt(format!(
                "section tag {tag} at offset {} breaks the canonical layout",
                entry.off
            )));
        }
        prev_end = (entry.off + entry.len) as usize;
        sections.push(SectionMeta {
            entry,
            state: AtomicU8::new(UNVERIFIED),
        });
    }
    if prev_end != raw.len() {
        return Err(PersistError::Corrupt(format!(
            "file length {} does not end at the last section ({prev_end})",
            raw.len()
        )));
    }
    let t_validate = t1.elapsed();

    // -- decode: eager sections + structural parses -----------------------
    let t2 = Instant::now();
    // checksum + full decode of the small eager sections; the per-topic
    // caps combine into the global cap exactly as a fresh build would
    let mut topic_caps = Vec::with_capacity(z_count);
    for z in 0..z_count {
        let i = i_cap(z_count, z);
        topic_caps.push(persist::decode_cap(checked_payload(raw, &sections[i])?)?);
        sections[i].state.store(VERIFIED, Ordering::Release);
    }
    let cap = crate::kim::bounds::combine_topic_caps(&topic_caps);
    let samples =
        persist::decode_samples(checked_payload(raw, &sections[i_samples(z_count)])?, graph)?;
    sections[i_samples(z_count)]
        .state
        .store(VERIFIED, Ordering::Release);
    let names_len = TrieView::parse(
        checked_payload(raw, &sections[i_names(z_count)])?,
        graph.node_count(),
    )?
    .len();
    sections[i_names(z_count)]
        .state
        .store(VERIFIED, Ordering::Release);

    // structural parses of the lazily-checksummed per-topic unit groups
    let pb_slices: Vec<&[u8]> = (0..z_count)
        .map(|z| raw_payload(raw, &sections[i_pb(z_count, z)]))
        .collect();
    let pb = PbTableView::parse(&pb_slices, graph.node_count())?;
    if pb.is_some() != needs_pb(config) {
        return Err(PersistError::Corrupt(
            "pb section group presence disagrees with the configured engine".into(),
        ));
    }
    let mis_slices: Vec<&[u8]> = (0..z_count)
        .map(|z| raw_payload(raw, &sections[i_mis(z_count, z)]))
        .collect();
    let mis = MisView::parse(&mis_slices, graph.node_count())?;
    if mis.is_some() != needs_mis(config) {
        return Err(PersistError::Corrupt(
            "mis section group presence disagrees with the configured engine".into(),
        ));
    }
    let piks = PiksWorldsView::parse(raw_payload(raw, &sections[i_piks(z_count)]))?;
    if piks.n() != graph.node_count() {
        return Err(PersistError::Corrupt(format!(
            "piks worlds cover {} nodes, graph has {}",
            piks.n(),
            graph.node_count()
        )));
    }
    let expected_worlds = if graph.node_count() == 0 {
        0
    } else {
        config.piks_index_size
    };
    if piks.len() != expected_worlds {
        return Err(PersistError::Corrupt(format!(
            "piks section stores {} worlds, config wants {expected_worlds}",
            piks.len()
        )));
    }
    let (piks_total, piks_stored_nodes, piks_stored_edges) =
        (piks.len(), piks.stored_nodes(), piks.stored_edges());
    if paranoid {
        for i in (0..z_count)
            .map(|z| i_pb(z_count, z))
            .chain((0..z_count).map(|z| i_mis(z_count, z)))
            .chain([i_piks(z_count)])
        {
            checked_payload(raw, &sections[i])?;
            sections[i].state.store(VERIFIED, Ordering::Release);
        }
    }
    let t_decode = t2.elapsed();

    let timings = vec![
        StageTiming {
            stage: persist::STAGE_ARTIFACT_MAP,
            duration: t_map,
        },
        StageTiming {
            stage: persist::STAGE_ARTIFACT_VALIDATE,
            duration: t_validate,
        },
        StageTiming {
            stage: persist::STAGE_ARTIFACT_DECODE,
            duration: t_decode,
        },
    ];
    let reuse = STAGE_ORDER
        .iter()
        .map(|&stage| {
            let units = match stage {
                "piks-worlds" => piks_total,
                "spread-cap" | "pb-bound" | "mis-tables" => z_count,
                _ => 1,
            };
            StageReuse {
                stage,
                reused: units,
                total: units,
            }
        })
        .collect();

    Ok(MappedArtifacts {
        inner: Arc::new(MapInner {
            reg_key: register(path),
            map,
            sections,
            num_topics: graph.num_topics(),
            node_count: graph.node_count(),
            topic_caps,
            cap,
            samples,
            piks_total,
            piks_stored_nodes,
            piks_stored_edges,
            names_len,
            timings,
            reuse,
            open_total: t0.elapsed(),
        }),
    })
}

/// Checksum-verified payload of a section (range was validated earlier).
fn checked_payload<'a>(raw: &'a [u8], meta: &SectionMeta) -> Result<&'a [u8], PersistError> {
    Ok(wire::section_payload(raw, &meta.entry)?)
}

/// Payload bytes of a section without checksum work (range was validated).
fn raw_payload<'a>(raw: &'a [u8], meta: &SectionMeta) -> &'a [u8] {
    let (off, len) = (meta.entry.off as usize, meta.entry.len as usize);
    &raw[off..off + len]
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

impl MappedArtifacts {
    /// The canonical path of the mapped file (the registry key).
    pub fn path(&self) -> &Path {
        &self.inner.reg_key
    }

    /// Raw payload of section `i` (structure was validated at open).
    fn section(&self, i: usize) -> &[u8] {
        let entry = &self.inner.sections[i].entry;
        &self.inner.map[entry.off as usize..(entry.off + entry.len) as usize]
    }

    /// Sticky lazy checksum verification of section `i` (see module docs).
    fn verified_section(&self, i: usize) -> Result<&[u8], CoreError> {
        let meta = &self.inner.sections[i];
        match meta.state.load(Ordering::Acquire) {
            VERIFIED => Ok(self.section(i)),
            DAMAGED => Err(CoreError::Artifact(format!(
                "section tag {} failed its checksum (sticky)",
                meta.entry.tag
            ))),
            _ => match wire::section_payload(&self.inner.map, &meta.entry) {
                Ok(payload) => {
                    meta.state.store(VERIFIED, Ordering::Release);
                    Ok(payload)
                }
                Err(e) => {
                    meta.state.store(DAMAGED, Ordering::Release);
                    Err(CoreError::Artifact(format!(
                        "section tag {} failed verification: {}",
                        meta.entry.tag, e.0
                    )))
                }
            },
        }
    }

    /// The global spread cap (combined from the per-topic units at open).
    pub fn cap(&self) -> f64 {
        self.inner.cap
    }

    /// The per-topic arrival-mass caps (eagerly decoded at open).
    pub fn topic_caps(&self) -> &[f64] {
        &self.inner.topic_caps
    }

    /// The precomputed topic samples (eagerly decoded at open).
    pub fn samples(&self) -> &[TopicSample] {
        &self.inner.samples
    }

    /// The PB bound tables, zero-copy (`None` when the engine needs none).
    /// First call verifies each topic unit's checksum (per-unit sticky).
    pub fn pb_view(&self) -> Result<Option<PbTableView<'_>>, CoreError> {
        let zc = self.inner.num_topics;
        let slices: Vec<&[u8]> = (0..zc)
            .map(|z| self.verified_section(i_pb(zc, z)))
            .collect::<Result<_, _>>()?;
        PbTableView::parse(&slices, self.inner.node_count)
            .map_err(|e| CoreError::Artifact(format!("pb section group: {}", e.0)))
    }

    /// The MIS seed tables, zero-copy (`None` when the engine needs none).
    /// First call verifies each topic unit's checksum (per-unit sticky).
    pub fn mis_view(&self) -> Result<Option<MisView<'_>>, CoreError> {
        let zc = self.inner.num_topics;
        let slices: Vec<&[u8]> = (0..zc)
            .map(|z| self.verified_section(i_mis(zc, z)))
            .collect::<Result<_, _>>()?;
        MisView::parse(&slices, self.inner.node_count)
            .map_err(|e| CoreError::Artifact(format!("mis section group: {}", e.0)))
    }

    /// The PIKS possible-worlds index, zero-copy. First call verifies the
    /// section checksum.
    pub fn piks_view(&self) -> Result<PiksWorldsView<'_>, CoreError> {
        let payload = self.verified_section(i_piks(self.inner.num_topics))?;
        PiksWorldsView::parse(payload)
            .map_err(|e| CoreError::Artifact(format!("piks section: {}", e.0)))
    }

    /// The autocomplete trie, zero-copy (checksum and structure were
    /// verified eagerly at open, so reconstruction is `O(1)`).
    pub fn trie_view(&self) -> TrieView<'_> {
        TrieView::assume_checked(self.section(i_names(self.inner.num_topics)))
    }

    /// World count of the mapped PIKS index.
    pub fn piks_len(&self) -> usize {
        self.inner.piks_total
    }

    /// Total nodes stored across all mapped PIKS worlds.
    pub fn piks_stored_nodes(&self) -> usize {
        self.inner.piks_stored_nodes
    }

    /// Total reverse edges stored across all mapped PIKS worlds.
    pub fn piks_stored_edges(&self) -> usize {
        self.inner.piks_stored_edges
    }

    /// Stored name count of the mapped autocomplete trie.
    pub fn names_len(&self) -> usize {
        self.inner.names_len
    }

    /// Synthetic open telemetry: the three artifact stages (map, validate,
    /// decode), mirroring what a full owned cache hit reports.
    pub fn timings(&self) -> &[StageTiming] {
        &self.inner.timings
    }

    /// Per-stage reuse counters (every stage fully reused — a mapped open
    /// is by definition a complete artifact hit).
    pub fn reuse(&self) -> &[StageReuse] {
        &self.inner.reuse
    }

    /// Wall-clock duration of the whole [`open`].
    pub fn open_total(&self) -> Duration {
        self.inner.open_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::KimEngineChoice;
    use crate::offline;
    use octopus_graph::{GraphBuilder, NodeId};
    use octopus_topics::TopicDistribution;

    fn tiny_graph() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..14 {
            b.add_node(format!("user-{i}"));
        }
        for v in 2..=7u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.6)]).unwrap();
        }
        for v in 8..=13u32 {
            b.add_edge(NodeId(1), NodeId(v), &[(1, 0.6)]).unwrap();
        }
        b.build().unwrap()
    }

    fn config() -> OctopusConfig {
        OctopusConfig {
            kim: KimEngineChoice::Mis,
            piks_index_size: 200,
            mis_rr_per_topic: 400,
            k_max: 3,
            seed: 0xFEED,
            ..Default::default()
        }
    }

    /// Build, save, and return (dir, path, fp, keys, graph, config, art).
    fn saved_artifact(
        dir_name: &str,
    ) -> (
        PathBuf,
        PathBuf,
        Fingerprint,
        StageKeys,
        TopicGraph,
        OctopusConfig,
        offline::OfflineArtifacts,
    ) {
        let g = tiny_graph();
        let cfg = config();
        let fp = Fingerprint::compute(&g, &cfg);
        let keys = StageKeys::compute(&g, &cfg);
        let art = offline::build(&g, &cfg);
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::remove_dir_all(&dir).ok();
        let path = fp.cache_path(&dir);
        persist::save(&art, &fp, &keys, &path).unwrap();
        (dir, path, fp, keys, g, cfg, art)
    }

    #[test]
    fn open_serves_every_section_bit_identically() {
        let (dir, path, fp, keys, g, cfg, art) = saved_artifact("octopus_view_open_test");
        for paranoid in [false, true] {
            let mapped = open(&path, &fp, &keys, &g, &cfg, paranoid).expect("mapped open");
            assert_eq!(mapped.cap().to_bits(), art.cap.to_bits());
            assert_eq!(mapped.topic_caps().len(), art.topic_caps.len());
            for (a, b) in mapped.topic_caps().iter().zip(&art.topic_caps) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(mapped.samples(), &art.samples[..]);
            assert_eq!(mapped.piks_len(), art.piks_index.len());
            assert_eq!(mapped.names_len(), art.names.len());
            // MIS selection off the view matches the owned tables
            let gamma = TopicDistribution::uniform(2);
            let view = mapped.mis_view().unwrap().expect("mis present");
            use crate::kim::KimAlgorithm;
            let a = art.mis.as_ref().unwrap().select(&gamma, 3);
            let b = view.select(&gamma, 3);
            assert_eq!(a.seeds, b.seeds);
            assert_eq!(a.spread.to_bits(), b.spread.to_bits());
            // PIKS spreads match bit-for-bit
            let piks = mapped.piks_view().unwrap();
            let mut owned = art.piks_index.session(&g, &gamma);
            let mut viewed = piks.session(&g, &gamma);
            for u in [0u32, 1, 5, 9] {
                assert_eq!(
                    owned.spread_of(NodeId(u)).to_bits(),
                    viewed.spread_of(NodeId(u)).to_bits()
                );
            }
            // trie answers match
            assert_eq!(mapped.trie_view().lookup("user-3"), Some(NodeId(3)));
            assert_eq!(
                mapped.trie_view().complete("user-1", 4),
                art.names.complete("user-1", 4)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_tracks_live_mappings_and_prune_skips_them() {
        let (dir, path, fp, keys, g, cfg, _) = saved_artifact("octopus_view_registry_test");
        assert!(!is_mapped(&path));
        let a = open(&path, &fp, &keys, &g, &cfg, false).unwrap();
        let b = a.clone();
        assert!(is_mapped(&path), "open must register the mapping");
        drop(a);
        assert!(is_mapped(&path), "clones keep the registration alive");

        // flood the directory past the cap; the mapped file is among the
        // prune candidates (write_seq 0 would make dummies newer? no —
        // dummies are unparseable = seq 0, the real file has seq >= 1, but
        // mtime ordering dominates and the real file is OLDEST) and must
        // survive anyway
        std::thread::sleep(std::time::Duration::from_millis(5));
        for i in 0..persist::MAX_CACHE_FILES + 3 {
            std::fs::write(dir.join(format!("dummy-{i:02}.octa")), [i as u8; 4]).unwrap();
        }
        let keep = dir.join("dummy-00.octa");
        persist::prune(&dir, &[&keep]);
        assert!(path.exists(), "prune must never evict a mapped file");

        drop(b);
        assert!(!is_mapped(&path), "last drop must deregister");
        persist::prune(&dir, &[&keep]);
        assert!(!path.exists(), "unmapped, the file is evictable again");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_fingerprint_and_stale_keys_are_refused() {
        let (dir, path, fp, keys, g, cfg, _) = saved_artifact("octopus_view_foreign_test");
        let other_cfg = OctopusConfig {
            seed: cfg.seed ^ 1,
            ..cfg.clone()
        };
        let other_fp = Fingerprint::compute(&g, &other_cfg);
        let other_keys = StageKeys::compute(&g, &other_cfg);
        // wrong combined fingerprint: refused before the table is read
        assert!(matches!(
            open(&path, &other_fp, &keys, &g, &cfg, false),
            Err(PersistError::Corrupt(m)) if m.contains("keyed")
        ));
        // right fingerprint file name but stale stage keys (reseed): refused
        assert!(matches!(
            open(&path, &fp, &other_keys, &g, &other_cfg, false),
            Err(PersistError::Corrupt(m)) if m.contains("stale stage key")
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_sections_fail_closed_and_sticky_on_first_touch() {
        let (dir, path, fp, keys, g, cfg, _) = saved_artifact("octopus_view_lazy_test");
        // flip one byte inside topic 0's MIS unit payload (lazily
        // checksummed)
        let mut raw = std::fs::read(&path).unwrap();
        let mut table = &raw[persist::HEADER_LEN..];
        let mut mis_entry = None;
        for _ in 0..persist::section_order(g.num_topics()).len() {
            let e = wire::read_section_entry(&mut table, "t").unwrap();
            if e.tag == persist::topic_tag(persist::SECTION_MIS, 0) {
                mis_entry = Some(e);
            }
        }
        let e = mis_entry.unwrap();
        // flip inside the gains array — gains are never examined by the
        // structural parse (only scored), so the open must still succeed
        // and only the deferred checksum can catch the damage
        let payload = &raw[e.off as usize..(e.off + e.len) as usize];
        assert_eq!(u64::from_le_bytes(payload[0..8].try_into().unwrap()), 1);
        let count = u64::from_le_bytes(payload[8..16].try_into().unwrap()) as usize;
        assert!(count > 0, "mis unit must not be empty in this fixture");
        let gains_off = wire::align8(16 + 4 * count);
        raw[e.off as usize + gains_off + 1] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();

        let mapped = open(&path, &fp, &keys, &g, &cfg, false)
            .expect("structural damage in a lazy payload must not fail the open");
        let first = mapped.mis_view();
        assert!(
            matches!(first, Err(CoreError::Artifact(ref m)) if m.contains("verification")),
            "first touch must fail closed: {first:?}"
        );
        assert!(
            matches!(mapped.mis_view(), Err(CoreError::Artifact(ref m)) if m.contains("sticky")),
            "the failure must be sticky"
        );
        // other sections still serve
        assert_eq!(mapped.trie_view().lookup("user-3"), Some(NodeId(3)));
        assert!(mapped.piks_view().is_ok());

        // paranoid open refuses the same file outright
        assert!(open(&path, &fp, &keys, &g, &cfg, true).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
