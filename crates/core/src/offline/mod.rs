//! The staged offline-build pipeline behind [`crate::engine::Octopus`].
//!
//! OCTOPUS's whole bet (and that of preprocessing-based topic-aware IM in
//! general) is that heavy work moves *offline* so online keyword queries
//! stay interactive — which makes the offline phase the scalability
//! bottleneck worth engineering. This module extracts every offline phase
//! out of the engine constructor into an explicit, instrumented, parallel
//! pipeline producing an [`OfflineArtifacts`] value.
//!
//! ## Stage DAG
//!
//! ```text
//!        ┌──────────────┐
//!        │  spread-cap  │  per-topic arrival caps cap_z, combined into C
//!        └──────┬───────┘
//!               │                ┌───────────┐   ┌──────────────┐   ┌──────────────┐
//!        ┌──────▼───────┐        │ mis-tables│   │  piks-worlds │   │ autocomplete │
//!        │   pb-bound   │        │ (per-topic│   │  (per-world  │   │ (name trie)  │
//!        └──────┬───────┘        │   CELF)   │   │ reverse BFS) │   └──────────────┘
//!               │                └───────────┘   └──────────────┘
//!        ┌──────▼───────┐
//!        │topic-samples │  per-gamma best-effort seed sets
//!        └──────────────┘
//! ```
//!
//! The `spread-cap`, `pb-bound`, and `mis-tables` stages decompose into
//! one work unit per topic (their rebuild/reuse granularity — see
//! *Persistence* below); `piks-worlds` into one unit per world.
//!
//! The left chain is sequential (`spread-cap → pb-bound → topic-samples`:
//! the samples warm-start from the PB table and NB bound, both of which
//! need the cap), while `mis-tables`, `piks-worlds`, and `autocomplete`
//! are independent of it and of each other — the pipeline runs all four
//! branches concurrently via nested [`rayon::join`], and the heavy stages
//! are additionally parallel *internally* (per-topic CELF runs, per-gamma
//! best-effort runs, per-world reverse BFS, per-set RR sampling).
//!
//! Per-unit costs inside those stages are heavily skewed — a PIKS world
//! rooted at a hub traverses orders of magnitude more edges than one
//! rooted at a leaf, and a delta rebuild interleaves expensive rebuilt
//! worlds between no-op reused slots — so the stand-in `rayon` executes
//! every fan-out on a persistent worker pool with dynamic chunk-claiming:
//! threads repeatedly claim small index ranges off a shared cursor
//! instead of receiving one static chunk each, so a thread stuck on a hub
//! world never strands the units behind it. The four `join` branches and
//! all nested parallelism share that one pool.
//!
//! ## Determinism
//!
//! Every randomized work unit draws from its own RNG stream derived as
//! [`octopus_cascade::stream_seed`]`(stage_seed, unit_index)` — never from
//! a shared sequential RNG — and every parallel combinator assembles
//! results in unit order: each unit writes its own output slot, whatever
//! thread claims it. Consequently the artifacts are **bit-identical**
//! for a fixed [`crate::engine::OctopusConfig::seed`] whether the build
//! runs on one thread or many (`RAYON_NUM_THREADS=1` vs default), and
//! regardless of how the work-claiming executor happens to schedule the
//! units — which the `build_determinism` integration tests and the
//! executor's own stress suite pin down.
//!
//! ## Telemetry
//!
//! Each stage records wall-clock duration in a [`StageTiming`]; the engine
//! surfaces them through [`crate::engine::SystemReport::stage_timings`].
//! Because branches run concurrently, stage durations can sum to more than
//! [`OfflineArtifacts::build_total`].
//!
//! ## Persistence and incremental rebuilds
//!
//! Determinism (above) is what makes the artifacts *cacheable*: each stage
//! is a pure function of the inputs it reads, so [`persist`] serializes
//! [`OfflineArtifacts`] into an **OCTA v5 sectioned container** — one
//! independently keyed, independently checksummed section per work unit,
//! each unit's [`persist::StageKeys`] entry hashing only that unit's input
//! slice. The three weight-dependent stages are **topic-granular**: the
//! cap, PB, and MIS payloads are split into one sub-section per topic,
//! keyed on [`octopus_graph::codec::hash_weights_topic`] (MIS ignores
//! names; autocomplete ignores weights; each PIKS world is keyed on the
//! edge set its reverse BFS touched), so a delta confined to topic-`z`
//! edges invalidates exactly topic `z`'s cap/PB/MIS units. The byte-level
//! format is specified normatively in `ARCHITECTURE.md` and summarized in
//! the [`persist`] module docs. Stage timings are telemetry, not artifact
//! state, and are never persisted.
//!
//! [`crate::engine::Octopus::open_or_build`] is the consumer: it gathers
//! every section in the cache directory whose key matches the live inputs
//! ([`persist::lookup`]), hands them to [`build_with_reuse`] as
//! [`ReuseSlots`], and rebuilds only the invalidated stages along the DAG.
//! A full hit reports the three synthetic artifact timings
//! ([`persist::STAGE_ARTIFACT_MAP`] / [`persist::STAGE_ARTIFACT_VALIDATE`]
//! / [`persist::STAGE_ARTIFACT_DECODE`]) and `cache_hit = true` (zero
//! build stages run); a partial hit reports exactly the rebuilt stages
//! plus per-unit counters in
//! [`crate::engine::SystemReport::stage_reuse`] — `reused/total` topics
//! for cap/PB/MIS, worlds for PIKS. Reused or rebuilt, the resulting
//! engine is bit-identical to a fresh build — pinned by
//! `tests/build_determinism.rs`, `tests/delta_invalidation.rs`, and the
//! end-to-end restart tests.
//!
//! The v5 layout additionally supports a **mapped** open ([`view`]): the
//! same file is memory-mapped and served zero-copy, skipping this
//! pipeline (and most of the decode work) entirely.

#![warn(missing_docs)]

pub mod persist;
pub mod view;

use crate::autocomplete::Autocomplete;
use crate::engine::{KimEngineChoice, OctopusConfig};
use crate::kim::bounds::{
    combine_topic_caps, topic_arrival_cap, BoundKind, LocalGraphBound, NeighborhoodBound,
    PrecompBound, TrivialBound,
};
use crate::kim::topic_sample::{TopicSample, TopicSampleKim};
use crate::kim::{BestEffortKim, KimResult, MisKim};
use crate::piks::{InfluencerIndex, PiksReuse};
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::TopicDistribution;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// XOR applied to [`OctopusConfig::seed`] to derive the PIKS world-sampling
/// seed — decorrelates the influencer index's randomness from the MIS and
/// topic-sample streams. Part of the persistence contract: the `piks-worlds`
/// section key hashes the *derived* seed, so persist and build must agree
/// on the derivation.
pub const PIKS_WORLD_SEED_XOR: u64 = 0x1DE;

/// Pipeline stage names, in canonical (DAG topological) order.
pub const STAGE_ORDER: [&str; 6] = [
    "spread-cap",
    "pb-bound",
    "mis-tables",
    "topic-samples",
    "piks-worlds",
    "autocomplete",
];

/// Wall-clock telemetry of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (one of [`STAGE_ORDER`]).
    pub stage: &'static str,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Per-stage reuse telemetry of one pipeline run: how many of the stage's
/// work units were reloaded from a cached artifact section instead of
/// rebuilt. Scalar stages have one unit; `piks-worlds` has one per world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReuse {
    /// Stage name (one of [`STAGE_ORDER`]).
    pub stage: &'static str,
    /// Work units reloaded from cache.
    pub reused: usize,
    /// Total work units the stage comprises.
    pub total: usize,
}

impl StageReuse {
    /// Whether every unit of the stage was reused (a per-stage cache hit).
    pub fn is_full(&self) -> bool {
        self.reused == self.total
    }
}

/// One cached `pb-bound` topic unit: `Some(row)` is the topic's σ̂ row,
/// `None` is the cached **absent marker** ("this configuration needs no PB
/// tables" — keyed by the `enabled` flag in
/// [`PrecompBound::input_key_topic`], so a marker never satisfies a config
/// that needs the tables).
pub type PbTopicRow = Option<Vec<f64>>;

/// One cached `mis-tables` topic unit: `Some(gains)` is the topic's CELF
/// gains table, `None` the cached absent marker (same contract as
/// [`PbTopicRow`], keyed by [`MisKim::input_key_topic`]).
pub type MisTopicGains = Option<std::collections::HashMap<NodeId, f64>>;

/// Cached stage outputs handed to [`build_with_reuse`]: a populated slot
/// short-circuits its work unit, an empty slot rebuilds it. The three
/// weight-dependent stages are topic-granular — one slot per topic, so a
/// topic-confined delta hands back every foreign topic's unit and rebuilds
/// exactly the invalidated ones. Shorter-than-`Z` vectors are treated as
/// all-empty tails (the persist layer always sizes them to `Z`).
///
/// The *caller* (the persist layer) is responsible for only populating a
/// slot when the unit's input fingerprint matches the live inputs — see
/// `persist::StageKeys`. `build_with_reuse` trusts scalar and per-topic
/// slots outright; the PIKS slot is additionally screened world-by-world
/// against this build's coin derivation.
#[derive(Debug, Default)]
pub struct ReuseSlots {
    /// Per-topic cached arrival caps (`cap_z`).
    pub cap: Vec<Option<f64>>,
    /// Per-topic cached PB σ̂ rows (see [`PbTopicRow`]).
    pub pb: Vec<Option<PbTopicRow>>,
    /// Per-topic cached MIS gains tables (see [`MisTopicGains`]).
    pub mis: Vec<Option<MisTopicGains>>,
    /// Cached topic samples (empty vec when the engine precomputes none).
    pub samples: Option<Vec<TopicSample>>,
    /// Per-world PIKS reuse slots.
    pub piks: Option<PiksReuse>,
    /// Cached autocomplete trie.
    pub names: Option<Autocomplete>,
}

/// Everything the engine precomputes before serving its first query.
#[derive(Debug, Clone)]
pub struct OfflineArtifacts {
    /// Per-topic arrival caps `cap_z` (the per-topic rebuild units of the
    /// `spread-cap` stage), in topic order.
    pub topic_caps: Vec<f64>,
    /// Combined spread cap `C` (NB/LG bound constant) —
    /// [`combine_topic_caps`] over `topic_caps`.
    pub cap: f64,
    /// Per-topic PB bound tables (present iff the configured engine needs
    /// them).
    pub pb: Option<PrecompBound>,
    /// MIS per-topic seed tables (present iff the MIS engine is selected).
    pub mis: Option<MisKim>,
    /// Topic samples with precomputed seed sets (non-empty iff the
    /// topic-sample engine is selected).
    pub samples: Vec<TopicSample>,
    /// The PIKS influencer index (shared-coin possible worlds).
    pub piks_index: InfluencerIndex,
    /// Name auto-completion trie.
    pub names: Autocomplete,
    /// Per-stage wall-clock telemetry, in [`STAGE_ORDER`], covering only
    /// the stages that actually ran (a stage fully reloaded from cache
    /// reports no timing — it did no build work).
    pub timings: Vec<StageTiming>,
    /// Per-stage reuse counters, always all of [`STAGE_ORDER`].
    pub reuse: Vec<StageReuse>,
    /// Wall-clock duration of the whole pipeline (≤ the timing sum when
    /// branches overlap).
    pub build_total: Duration,
}

impl OfflineArtifacts {
    /// Whether every stage was fully reloaded from cache (zero build work).
    pub fn fully_reused(&self) -> bool {
        self.reuse.iter().all(StageReuse::is_full)
    }
}

/// Whether the configured engine needs PB bound tables (shared with the
/// persist layer's stage-key computation — the flag is part of the
/// `pb-bound` cache key).
pub fn needs_pb(config: &OctopusConfig) -> bool {
    matches!(
        config.kim,
        KimEngineChoice::BestEffort(BoundKind::Precomputation)
            | KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                ..
            }
    )
}

/// Whether the configured engine needs MIS seed tables.
pub fn needs_mis(config: &OctopusConfig) -> bool {
    matches!(config.kim, KimEngineChoice::Mis)
}

/// Run a topic-granular stage: unit `z` is reloaded from `slots[z]` when
/// populated and rebuilt via `f(z)` otherwise (rebuilds in parallel,
/// assembled in topic order). Returns the per-topic values, a timing only
/// when at least one unit rebuilt, and a `reused/total` counter over
/// topics.
fn stage_per_topic<T: Send>(
    name: &'static str,
    num_topics: usize,
    mut slots: Vec<Option<T>>,
    f: impl Fn(usize) -> T + Sync,
) -> (Vec<T>, Option<StageTiming>, StageReuse) {
    slots.resize_with(num_topics, || None);
    slots.truncate(num_topics);
    let reused = slots.iter().filter(|s| s.is_some()).count();
    let start = Instant::now();
    let missing: Vec<usize> = (0..num_topics).filter(|&z| slots[z].is_none()).collect();
    let rebuilt: Vec<T> = missing.par_iter().map(|&z| f(z)).collect();
    for (&z, value) in missing.iter().zip(rebuilt) {
        slots[z] = Some(value);
    }
    let values: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("every unit reused or rebuilt"))
        .collect();
    let timing = (reused < num_topics).then(|| StageTiming {
        stage: name,
        duration: start.elapsed(),
    });
    (
        values,
        timing,
        StageReuse {
            stage: name,
            reused,
            total: num_topics,
        },
    )
}

/// Run `f` as the named stage unless `slot` carries a cached value.
/// Returns the value, a timing only when the stage actually ran, and the
/// stage's reuse counter.
fn stage_or<T>(
    name: &'static str,
    slot: Option<T>,
    f: impl FnOnce() -> T,
) -> (T, Option<StageTiming>, StageReuse) {
    match slot {
        Some(value) => (
            value,
            None,
            StageReuse {
                stage: name,
                reused: 1,
                total: 1,
            },
        ),
        None => {
            let start = Instant::now();
            let value = f();
            (
                value,
                Some(StageTiming {
                    stage: name,
                    duration: start.elapsed(),
                }),
                StageReuse {
                    stage: name,
                    reused: 0,
                    total: 1,
                },
            )
        }
    }
}

/// Run the full offline pipeline for `graph` under `config`.
///
/// Branch layout (see the module docs for the DAG): the `cap → pb →
/// samples` chain, the MIS tables, the PIKS index, and the autocomplete
/// trie run concurrently via nested [`rayon::join`]; each heavy stage also
/// parallelizes internally. Timings are reported in [`STAGE_ORDER`]
/// regardless of execution interleaving.
pub fn build(graph: &TopicGraph, config: &OctopusConfig) -> OfflineArtifacts {
    build_with_reuse(graph, config, ReuseSlots::default())
}

/// Run the offline pipeline, short-circuiting every work unit whose slot
/// in `slots` carries a cached output and rebuilding only the rest along
/// the stage DAG (a reused `cap`/`pb` still feeds a rebuilt
/// `topic-samples`, and vice versa).
///
/// Correctness contract: a populated slot must hold exactly what its unit
/// would compute for `(graph, config)` — slots are keyed by per-unit input
/// fingerprints in [`persist::StageKeys`], so this holds whenever the slot's
/// key matches. Under that contract the result is **bit-identical** to
/// [`build`] with no slots, whatever subset was reused (pinned by the
/// `delta_invalidation` integration tests). The weight-dependent stages
/// reuse at **topic** granularity (each cap/PB/MIS unit is keyed on its
/// topic's weight slice, so a topic-`z` nudge rebuilds only topic `z`'s
/// units) and the PIKS stage at **world** granularity (each persisted
/// world carries a footprint key over the edge set its reverse BFS
/// touched, so a k-edge delta rebuilds only the worlds that saw those
/// edges).
pub fn build_with_reuse(
    graph: &TopicGraph,
    config: &OctopusConfig,
    slots: ReuseSlots,
) -> OfflineArtifacts {
    let start = Instant::now();
    let z_count = graph.num_topics();
    let ReuseSlots {
        cap: cap_slots,
        pb: pb_slots,
        mis: mis_slots,
        samples: samples_slot,
        piks: piks_slot,
        names: names_slot,
    } = slots;
    let ((left, mis_out), (piks_out, names_out)) = rayon::join(
        || {
            rayon::join(
                || {
                    // sequential chain: cap → pb → topic samples; cap and
                    // pb rebuild per topic
                    let (topic_caps, t_cap, r_cap) =
                        stage_per_topic("spread-cap", z_count, cap_slots, |z| {
                            topic_arrival_cap(graph, z)
                        });
                    let cap = combine_topic_caps(&topic_caps);
                    let (pb_rows, t_pb, r_pb) =
                        stage_per_topic("pb-bound", z_count, pb_slots, |z| {
                            needs_pb(config)
                                .then(|| PrecompBound::build_topic(graph, z, config.mia_theta))
                        });
                    let pb = needs_pb(config).then(|| {
                        let rows = pb_rows
                            .into_iter()
                            .map(|r| r.expect("pb units keyed on the enabled flag"))
                            .collect();
                        PrecompBound::from_parts(rows, config.pb_safety)
                    });
                    let (samples, t_samples, r_samples) =
                        stage_or("topic-samples", samples_slot, || {
                            build_topic_samples(graph, config, &pb, cap)
                        });
                    (
                        topic_caps, cap, pb, samples, t_cap, t_pb, t_samples, r_cap, r_pb,
                        r_samples,
                    )
                },
                || {
                    let (gains, t_mis, r_mis) =
                        stage_per_topic("mis-tables", z_count, mis_slots, |z| {
                            needs_mis(config).then(|| {
                                MisKim::build_topic(
                                    graph,
                                    z,
                                    config.k_max,
                                    config.mis_rr_per_topic,
                                    config.seed,
                                )
                            })
                        });
                    let mis = needs_mis(config).then(|| {
                        MisKim::from_parts(
                            gains
                                .into_iter()
                                .map(|g| g.expect("mis units keyed on the enabled flag"))
                                .collect(),
                        )
                    });
                    (mis, t_mis, r_mis)
                },
            )
        },
        || {
            rayon::join(
                || {
                    // world-granular reuse: only rebuilt worlds cost time
                    let t0 = Instant::now();
                    let reuse = piks_slot.unwrap_or_default();
                    let (index, reused) = InfluencerIndex::build_with_reuse(
                        graph,
                        config.piks_index_size,
                        config.seed ^ PIKS_WORLD_SEED_XOR,
                        &reuse,
                    );
                    let total = if graph.node_count() == 0 {
                        0
                    } else {
                        config.piks_index_size
                    };
                    let timing = (reused < total).then(|| StageTiming {
                        stage: "piks-worlds",
                        duration: t0.elapsed(),
                    });
                    let reuse = StageReuse {
                        stage: "piks-worlds",
                        reused,
                        total,
                    };
                    (index, timing, reuse)
                },
                || {
                    stage_or("autocomplete", names_slot, || {
                        Autocomplete::build(graph.nodes().filter_map(|u| {
                            graph.name(u).map(|n| (n, u, graph.out_degree(u) as f64))
                        }))
                    })
                },
            )
        },
    );
    let (topic_caps, cap, pb, samples, t_cap, t_pb, t_samples, r_cap, r_pb, r_samples) = left;
    let (mis, t_mis, r_mis) = mis_out;
    let (piks_index, t_piks, r_piks) = piks_out;
    let (names, t_names, r_names) = names_out;
    OfflineArtifacts {
        topic_caps,
        cap,
        pb,
        mis,
        samples,
        piks_index,
        names,
        timings: [t_cap, t_pb, t_mis, t_samples, t_piks, t_names]
            .into_iter()
            .flatten()
            .collect(),
        reuse: vec![r_cap, r_pb, r_mis, r_samples, r_piks, r_names],
        build_total: start.elapsed(),
    }
}

/// The topic-samples stage: sample the query distributions, then solve a
/// `k_max`-deep seed set for each with the same inner engine online queries
/// will use. Solving parallelizes per gamma.
fn build_topic_samples(
    graph: &TopicGraph,
    config: &OctopusConfig,
    pb: &Option<PrecompBound>,
    cap: f64,
) -> Vec<TopicSample> {
    let KimEngineChoice::TopicSample {
        bound,
        extra_samples,
        ..
    } = config.kim
    else {
        return Vec::new();
    };
    let gammas = TopicSampleKim::<NeighborhoodBound>::sample_gammas(
        graph.num_topics(),
        extra_samples,
        0.3,
        config.seed ^ 0x7A11,
    );
    gammas
        .par_iter()
        .map(|gamma| {
            let res = run_best_effort(
                graph,
                bound,
                PbSource::Owned(pb.as_ref()),
                cap,
                config,
                gamma,
                config.k_max,
                &[],
            );
            TopicSample {
                gamma: gamma.clone(),
                seeds: res.seeds,
                spread: res.spread,
            }
        })
        .collect()
}

/// Where a best-effort run gets its PB bound tables from: the owned decode
/// or a zero-copy view over a mapped artifact. Both implement
/// [`crate::kim::bounds::BoundEstimator`] identically, so the selection is
/// bit-identical either way.
#[derive(Clone)]
pub(crate) enum PbSource<'a> {
    /// Owned tables (fresh build or decoded cache hit).
    Owned(Option<&'a PrecompBound>),
    /// Zero-copy tables over a mapped OCTA v5 PB section group.
    View(Option<crate::kim::bounds::PbTableView<'a>>),
}

/// Run one best-effort selection with the configured bound estimator —
/// shared by the topic-samples stage and the engine's online query path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_best_effort(
    graph: &TopicGraph,
    bound: BoundKind,
    pb: PbSource<'_>,
    cap: f64,
    config: &OctopusConfig,
    gamma: &TopicDistribution,
    k: usize,
    warm: &[NodeId],
) -> KimResult {
    match bound {
        BoundKind::Precomputation => match pb {
            PbSource::Owned(table) => {
                let table = table.expect("PB table built at construction");
                BestEffortKim::new(graph, table, config.mia_theta).select_warm(gamma, k, warm)
            }
            PbSource::View(view) => {
                let view = view.expect("PB section present in mapped artifact");
                BestEffortKim::new(graph, view, config.mia_theta).select_warm(gamma, k, warm)
            }
        },
        BoundKind::Neighborhood => {
            BestEffortKim::new(graph, NeighborhoodBound::new(graph, cap), config.mia_theta)
                .select_warm(gamma, k, warm)
        }
        BoundKind::LocalGraph => BestEffortKim::new(
            graph,
            LocalGraphBound::new(graph, config.lg_depth, cap, config.lg_safety),
            config.mia_theta,
        )
        .select_warm(gamma, k, warm),
        BoundKind::Trivial => BestEffortKim::new(
            graph,
            TrivialBound::new(graph.node_count()),
            config.mia_theta,
        )
        .select_warm(gamma, k, warm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::GraphBuilder;

    fn two_hub_graph() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..12 {
            b.add_node(format!("user-{i}"));
        }
        for v in 2..=6u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.7)]).unwrap();
        }
        for v in 7..=11u32 {
            b.add_edge(NodeId(1), NodeId(v), &[(1, 0.7)]).unwrap();
        }
        b.build().unwrap()
    }

    fn config(kim: KimEngineChoice) -> OctopusConfig {
        OctopusConfig {
            kim,
            piks_index_size: 600,
            mis_rr_per_topic: 1200,
            k_max: 4,
            ..Default::default()
        }
    }

    #[test]
    fn stages_report_in_canonical_order() {
        let g = two_hub_graph();
        let art = build(&g, &config(KimEngineChoice::Mis));
        let names: Vec<&str> = art.timings.iter().map(|t| t.stage).collect();
        assert_eq!(names, STAGE_ORDER.to_vec());
        assert!(art.build_total > Duration::ZERO);
    }

    #[test]
    fn stages_build_only_what_the_config_needs() {
        let g = two_hub_graph();
        let mis = build(&g, &config(KimEngineChoice::Mis));
        assert!(mis.mis.is_some());
        assert!(mis.pb.is_none());
        assert!(mis.samples.is_empty());

        let pb = build(
            &g,
            &config(KimEngineChoice::BestEffort(BoundKind::Precomputation)),
        );
        assert!(pb.pb.is_some());
        assert!(pb.mis.is_none());

        let ts = build(
            &g,
            &config(KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 4,
                direct_eps: 0.05,
            }),
        );
        assert!(ts.pb.is_some(), "PB-bound topic samples need the PB table");
        assert!(ts.samples.len() >= 2, "Z corners at minimum");
    }

    #[test]
    fn artifacts_always_include_query_independent_structures() {
        let g = two_hub_graph();
        let art = build(&g, &config(KimEngineChoice::Naive));
        assert!(art.cap >= 1.0);
        assert_eq!(art.piks_index.len(), 600);
        assert!(!art.names.is_empty());
    }
}
